//! The DCDS `S = ⟨D, P⟩` and its static validation.

use crate::action::ActionId;
use crate::data_layer::DataLayer;
use crate::do_op::PlanCache;
use crate::process::ProcessLayer;
use crate::term::ETerm;
use dcds_reldata::{ConstantPool, Value};
use std::collections::BTreeSet;
use std::sync::OnceLock;

/// A data-centric dynamic system.
#[derive(Debug)]
pub struct Dcds {
    /// The data layer.
    pub data: DataLayer,
    /// The process layer.
    pub process: ProcessLayer,
    /// Compiled query plans for the effects and rule conditions, built
    /// lazily on first use and shared (behind `&self`) by every evaluation
    /// of this system — one compilation per DCDS, not per transition.
    plans: OnceLock<PlanCache>,
}

impl Clone for Dcds {
    fn clone(&self) -> Self {
        // The plan cache is derived state: a clone rebuilds it on demand.
        Dcds::from_parts(self.data.clone(), self.process.clone())
    }
}

/// Static well-formedness violations (Section 2.2's syntactic side
/// conditions, enforced up front so the semantics can assume them).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationError {
    /// The initial instance or constraints are broken.
    DataLayer(String),
    /// A rule's condition free variables differ from the action parameters.
    RuleParamMismatch {
        /// Index of the rule in `process.rules`.
        rule: usize,
        /// Explanation.
        detail: String,
    },
    /// An effect is malformed.
    Effect {
        /// Action name.
        action: String,
        /// Index of the effect within the action.
        effect: usize,
        /// Explanation.
        detail: String,
    },
}

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValidationError::DataLayer(s) => write!(f, "data layer: {s}"),
            ValidationError::RuleParamMismatch { rule, detail } => {
                write!(f, "rule #{rule}: {detail}")
            }
            ValidationError::Effect {
                action,
                effect,
                detail,
            } => write!(f, "action {action}, effect #{effect}: {detail}"),
        }
    }
}

impl std::error::Error for ValidationError {}

impl Dcds {
    /// Construct and validate.
    pub fn new(data: DataLayer, process: ProcessLayer) -> Result<Self, ValidationError> {
        let s = Dcds::from_parts(data, process);
        s.validate()?;
        Ok(s)
    }

    /// Assemble a system **without** validating it. For *analytic* objects
    /// (e.g. the positive approximate `S⁺`, whose stripped parameters can
    /// leave head variables unbound) that are inspected by the static
    /// analyses but never executed.
    pub fn from_parts(data: DataLayer, process: ProcessLayer) -> Self {
        Dcds {
            data,
            process,
            plans: OnceLock::new(),
        }
    }

    /// The compiled-plan cache for this system's effects and rule
    /// conditions, built on first use (thread-safe) and reused across the
    /// whole exploration.
    pub fn plans(&self) -> &PlanCache {
        self.plans.get_or_init(|| PlanCache::build(self))
    }

    /// Check every static side condition of Section 2:
    ///
    /// 1. `I₀` conforms to `R` and satisfies `E`;
    /// 2. for each rule `Q ↦ α`: `free(Q) = params(α)`;
    /// 3. for each effect `q⁺ ∧ Q⁻ ⇝ E`:
    ///    * `q⁺` is a valid UCQ over `R` (its terms may also mention the
    ///      action parameters, which we treat as free variables of `q⁺`'s
    ///      disjuncts for this check),
    ///    * `free(Q⁻) ⊆ free(q⁺) ∪ params`,
    ///    * every head term uses only constants, parameters, free variables
    ///      of `q⁺`, and service calls over those (constants mentioned in
    ///      the specification become *rigid*, applying the paper's
    ///      footnote-2 w.l.o.g. that they appear in `I₀`);
    /// 4. service calls respect the declared arities.
    pub fn validate(&self) -> Result<(), ValidationError> {
        self.data.validate().map_err(ValidationError::DataLayer)?;

        for (ix, rule) in self.process.rules.iter().enumerate() {
            let action = self.process.action(rule.action);
            let cond_free = rule.condition.free_vars();
            let params: BTreeSet<_> = action.params.iter().cloned().collect();
            if cond_free != params {
                return Err(ValidationError::RuleParamMismatch {
                    rule: ix,
                    detail: format!(
                        "condition free variables {:?} must equal the parameters {:?} of action {}",
                        cond_free.iter().map(|v| v.name()).collect::<Vec<_>>(),
                        params.iter().map(|v| v.name()).collect::<Vec<_>>(),
                        action.name
                    ),
                });
            }
            rule.condition
                .check_arities(&self.data.schema)
                .map_err(|e| ValidationError::RuleParamMismatch {
                    rule: ix,
                    detail: e.to_string(),
                })?;
        }

        for action in &self.process.actions {
            let params: BTreeSet<_> = action.params.iter().cloned().collect();
            for (eix, effect) in action.effects.iter().enumerate() {
                // q+ validity. Action parameters may occur in q+'s atoms; the
                // UCQ validator requires head vars to occur in atoms, so we
                // check disjunct arities directly and head-variable coverage
                // modulo parameters.
                for cq in &effect.qplus.disjuncts {
                    for (rel, terms) in &cq.atoms {
                        let expected = self.data.schema.arity(*rel);
                        if terms.len() != expected {
                            return Err(ValidationError::Effect {
                                action: action.name.clone(),
                                effect: eix,
                                detail: format!(
                                    "atom over {} has {} arguments, arity is {}",
                                    self.data.schema.name(*rel),
                                    terms.len(),
                                    expected
                                ),
                            });
                        }
                    }
                    let avars = cq.atom_vars();
                    for v in &cq.head {
                        if !avars.contains(v) && !params.contains(v) {
                            return Err(ValidationError::Effect {
                                action: action.name.clone(),
                                effect: eix,
                                detail: format!(
                                    "head variable {} of q+ occurs in no atom and is not a parameter",
                                    v.name()
                                ),
                            });
                        }
                    }
                }
                // free(Q-) ⊆ free(q+) ∪ params.
                let body_vars = effect.body_vars();
                for v in effect.qminus.free_vars() {
                    if !body_vars.contains(&v) && !params.contains(&v) {
                        return Err(ValidationError::Effect {
                            action: action.name.clone(),
                            effect: eix,
                            detail: format!(
                                "Q- free variable {} is not among the free variables of q+",
                                v.name()
                            ),
                        });
                    }
                }
                effect
                    .qminus
                    .check_arities(&self.data.schema)
                    .map_err(|e| ValidationError::Effect {
                        action: action.name.clone(),
                        effect: eix,
                        detail: e.to_string(),
                    })?;
                // Head facts.
                for (rel, terms) in &effect.head {
                    let expected = self.data.schema.arity(*rel);
                    if terms.len() != expected {
                        return Err(ValidationError::Effect {
                            action: action.name.clone(),
                            effect: eix,
                            detail: format!(
                                "head fact over {} has {} terms, arity is {}",
                                self.data.schema.name(*rel),
                                terms.len(),
                                expected
                            ),
                        });
                    }
                    for t in terms {
                        for v in t.vars() {
                            if !body_vars.contains(v) && !params.contains(v) {
                                return Err(ValidationError::Effect {
                                    action: action.name.clone(),
                                    effect: eix,
                                    detail: format!(
                                        "head variable {} is neither a q+ variable nor a parameter",
                                        v.name()
                                    ),
                                });
                            }
                        }
                        if let ETerm::Call(fid, args) = t {
                            let expected = self.process.services.arity(*fid);
                            if args.len() != expected {
                                return Err(ValidationError::Effect {
                                    action: action.name.clone(),
                                    effect: eix,
                                    detail: format!(
                                        "service {} has arity {}, call has {} arguments",
                                        self.process.services.name(*fid),
                                        expected,
                                        args.len()
                                    ),
                                });
                            }
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Convenience: look up an action id by name.
    pub fn action_id(&self, name: &str) -> Option<ActionId> {
        self.process.action_id(name)
    }

    /// A working copy of the constant pool for an exploration run. Every
    /// engine starts from the spec's pool and mints fresh values into its
    /// own copy; this is the one place that copy is made.
    pub fn working_pool(&self) -> ConstantPool {
        self.data.pool.clone()
    }

    /// The *rigid* constants: `ADOM(I₀)` plus every constant mentioned in
    /// rules, effects, and constraints. The paper assumes w.l.o.g.
    /// (footnote 2) that the latter appear in `I₀`; collecting them here
    /// applies that assumption without forcing specs to pad the initial
    /// instance. Isomorphisms and bisimulations fix these pointwise.
    pub fn rigid_constants(&self) -> BTreeSet<Value> {
        let mut rigid = self.data.rigid_constants();
        for c in &self.data.constraints {
            rigid.extend(c.query.constants());
            for (t1, t2) in &c.equalities {
                for t in [t1, t2] {
                    if let dcds_folang::QTerm::Const(v) = t {
                        rigid.insert(*v);
                    }
                }
            }
        }
        for c in &self.data.fo_constraints {
            rigid.extend(c.sentence.constants());
        }
        for rule in &self.process.rules {
            rigid.extend(rule.condition.constants());
        }
        for action in &self.process.actions {
            for effect in &action.effects {
                rigid.extend(effect.qminus.constants());
                for cq in &effect.qplus.disjuncts {
                    for (_, terms) in &cq.atoms {
                        for t in terms {
                            if let dcds_folang::QTerm::Const(v) = t {
                                rigid.insert(*v);
                            }
                        }
                    }
                    for (t1, t2) in &cq.equalities {
                        for t in [t1, t2] {
                            if let dcds_folang::QTerm::Const(v) = t {
                                rigid.insert(*v);
                            }
                        }
                    }
                }
                for (_, terms) in &effect.head {
                    for t in terms {
                        rigid.extend(t.constants());
                    }
                }
            }
        }
        rigid
    }

    /// True when every service is deterministic (Section 4 applies).
    pub fn is_deterministic(&self) -> bool {
        self.process.services.all_deterministic()
    }

    /// True when every service is nondeterministic (Section 5 applies).
    pub fn is_nondeterministic(&self) -> bool {
        self.process.services.all_nondeterministic()
    }
}
