//! Actions and effect specifications.
//!
//! An action (Section 2.2) is
//!
//! ```text
//!     α(p₁, ..., pₙ) : { e₁, ..., eₘ }       eᵢ = qᵢ⁺ ∧ Qᵢ⁻ ⇝ Eᵢ
//! ```
//!
//! where `qᵢ⁺` is a UCQ over the schema (terms: variables, action
//! parameters, constants of `ADOM(I₀)`), `Qᵢ⁻` is an arbitrary FO filter
//! whose free variables are among those of `qᵢ⁺` (and the parameters), and
//! `Eᵢ` is a set of facts whose terms may additionally be service calls.
//! All effects take place simultaneously (their results are unioned).

use crate::term::ETerm;
use dcds_folang::{Formula, Ucq, Var};
use dcds_reldata::RelId;
use std::collections::BTreeSet;

/// Identifier of an action inside a process layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ActionId(u32);

impl ActionId {
    /// Raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Rebuild from a raw index.
    #[inline]
    pub fn from_index(ix: usize) -> Self {
        ActionId(u32::try_from(ix).expect("action table overflow"))
    }
}

/// One effect specification `q⁺ ∧ Q⁻ ⇝ E`.
#[derive(Debug, Clone, PartialEq)]
pub struct Effect {
    /// The positive UCQ selecting instantiations. Its head variables are the
    /// effect's free variables.
    pub qplus: Ucq,
    /// The FO filter; free variables must be included in the head of
    /// `qplus` plus the action parameters. `Formula::True` when absent.
    pub qminus: Formula,
    /// The facts to produce, one per `(relation, head terms)` pair.
    pub head: Vec<(RelId, Vec<ETerm>)>,
}

impl Effect {
    /// An unconditional effect `true ⇝ E`.
    pub fn unconditional(head: Vec<(RelId, Vec<ETerm>)>) -> Self {
        Effect {
            qplus: Ucq::truth(),
            qminus: Formula::True,
            head,
        }
    }

    /// Free variables of the effect body (head variables of `q+`).
    pub fn body_vars(&self) -> BTreeSet<Var> {
        self.qplus.head().iter().cloned().collect()
    }

    /// Variables used in the head facts.
    pub fn head_vars(&self) -> BTreeSet<Var> {
        let mut out = BTreeSet::new();
        for (_, terms) in &self.head {
            for t in terms {
                out.extend(t.vars().into_iter().cloned());
            }
        }
        out
    }

    /// Service functions called by the head.
    pub fn called_functions(&self) -> BTreeSet<crate::service::FuncId> {
        let mut out = BTreeSet::new();
        for (_, terms) in &self.head {
            for t in terms {
                if let ETerm::Call(f, _) = t {
                    out.insert(*f);
                }
            }
        }
        out
    }
}

/// An action `α(p₁...pₙ) : {e₁...eₘ}`.
#[derive(Debug, Clone, PartialEq)]
pub struct Action {
    /// Action name.
    pub name: String,
    /// Input parameters (substituted by the legal parameter assignment σ).
    pub params: Vec<Var>,
    /// Effect specifications, applied simultaneously.
    pub effects: Vec<Effect>,
}

impl Action {
    /// Build an action.
    pub fn new(name: &str, params: Vec<Var>, effects: Vec<Effect>) -> Self {
        Action {
            name: name.to_owned(),
            params,
            effects,
        }
    }

    /// All service functions this action may call.
    pub fn called_functions(&self) -> BTreeSet<crate::service::FuncId> {
        self.effects
            .iter()
            .flat_map(|e| e.called_functions())
            .collect()
    }

    /// Relations written by this action (appearing in some effect head).
    pub fn written_relations(&self) -> BTreeSet<RelId> {
        self.effects
            .iter()
            .flat_map(|e| e.head.iter().map(|(r, _)| *r))
            .collect()
    }

    /// Relations read by this action (appearing in some effect body).
    pub fn read_relations(&self) -> BTreeSet<RelId> {
        let mut out = BTreeSet::new();
        for e in &self.effects {
            for cq in &e.qplus.disjuncts {
                out.extend(cq.atoms.iter().map(|(r, _)| *r));
            }
            out.extend(e.qminus.relations());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::{ServiceCatalog, ServiceKind};
    use crate::term::BaseTerm;
    use dcds_folang::{ConjunctiveQuery, QTerm};
    use dcds_reldata::Schema;

    fn example_action() -> (Schema, ServiceCatalog, Action) {
        // Example 4.1: α : { Q(a,a) ∧ P(x) ⇝ R(x),  P(x) ⇝ P(x), Q(f(x), g(x)) }
        let mut schema = Schema::new();
        let q = schema.add_relation("Q", 2).unwrap();
        let p = schema.add_relation("P", 1).unwrap();
        let r = schema.add_relation("R", 1).unwrap();
        let mut cat = ServiceCatalog::new();
        let f = cat.add("f", 1, ServiceKind::Deterministic).unwrap();
        let g = cat.add("g", 1, ServiceKind::Deterministic).unwrap();
        let mut pool = dcds_reldata::ConstantPool::new();
        let a = pool.intern("a");
        let e1 = Effect {
            qplus: Ucq::single(ConjunctiveQuery {
                head: vec![Var::new("X")],
                atoms: vec![
                    (q, vec![QTerm::Const(a), QTerm::Const(a)]),
                    (p, vec![QTerm::var("X")]),
                ],
                equalities: vec![],
            }),
            qminus: Formula::True,
            head: vec![(r, vec![ETerm::var("X")])],
        };
        let e2 = Effect {
            qplus: Ucq::single(ConjunctiveQuery {
                head: vec![Var::new("X")],
                atoms: vec![(p, vec![QTerm::var("X")])],
                equalities: vec![],
            }),
            qminus: Formula::True,
            head: vec![
                (p, vec![ETerm::var("X")]),
                (
                    q,
                    vec![
                        ETerm::call(f, vec![BaseTerm::var("X")]),
                        ETerm::call(g, vec![BaseTerm::var("X")]),
                    ],
                ),
            ],
        };
        let action = Action::new("alpha", vec![], vec![e1, e2]);
        (schema, cat, action)
    }

    #[test]
    fn called_functions_collected() {
        let (_, cat, action) = example_action();
        let fs = action.called_functions();
        assert_eq!(fs.len(), 2);
        for f in fs {
            assert!(cat.arity(f) == 1);
        }
    }

    #[test]
    fn read_write_relations() {
        let (schema, _, action) = example_action();
        let p = schema.rel_id("P").unwrap();
        let q = schema.rel_id("Q").unwrap();
        let r = schema.rel_id("R").unwrap();
        assert_eq!(action.read_relations(), [p, q].into_iter().collect());
        assert_eq!(action.written_relations(), [p, q, r].into_iter().collect());
    }

    #[test]
    fn effect_var_sets() {
        let (_, _, action) = example_action();
        let e2 = &action.effects[1];
        assert_eq!(e2.body_vars(), [Var::new("X")].into_iter().collect());
        assert_eq!(e2.head_vars(), [Var::new("X")].into_iter().collect());
    }

    #[test]
    fn unconditional_effect_is_truth_guarded() {
        let e = Effect::unconditional(vec![]);
        assert!(e.body_vars().is_empty());
        assert_eq!(e.qminus, Formula::True);
    }
}
