//! The `DO` operator and legal parameter assignments.
//!
//! `DO(I, ασ)` (Section 4.1) unions, over every effect `q⁺ ∧ Q⁻ ⇝ E` of α
//! and every answer θ of `(q⁺ ∧ Q⁻)σ` over `I`, the grounded head facts
//! `Eσθ`. The result is a *pre-instance*: a set of facts whose terms are
//! values or ground service calls awaiting resolution (deterministic
//! resolution in [`crate::det`], nondeterministic in [`crate::nondet`]).

use crate::action::ActionId;
use crate::dcds::Dcds;
use crate::term::{GTerm, ServiceCall};
use dcds_folang::ast::QTerm;
use dcds_folang::{
    eval_ucq, holds, Assignment, CompiledPlan, ConjunctiveQuery, EvalCtx, PlanStats, Ucq, Var,
};
use dcds_reldata::{AccessPath, Instance, InstanceIndex, RelId, Tuple};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::Ordering;

/// A set of facts over ground terms (values and unresolved service calls).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PreInstance {
    facts: BTreeSet<(RelId, Vec<GTerm>)>,
}

impl PreInstance {
    /// Empty pre-instance.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert a fact.
    pub fn insert(&mut self, rel: RelId, terms: Vec<GTerm>) -> bool {
        self.facts.insert((rel, terms))
    }

    /// Iterate over facts.
    pub fn facts(&self) -> impl Iterator<Item = (RelId, &[GTerm])> {
        self.facts.iter().map(|(r, ts)| (*r, ts.as_slice()))
    }

    /// Number of facts.
    pub fn len(&self) -> usize {
        self.facts.len()
    }

    /// True when no facts are present.
    pub fn is_empty(&self) -> bool {
        self.facts.is_empty()
    }

    /// `CALLS(·)`: the set of ground service calls occurring in the facts.
    pub fn calls(&self) -> BTreeSet<ServiceCall> {
        let mut out = BTreeSet::new();
        for (_, terms) in self.facts() {
            for t in terms {
                if let GTerm::Call(c) = t {
                    out.insert(c.clone());
                }
            }
        }
        out
    }

    /// Resolve every call through `lookup`, producing a relational instance.
    /// Returns `None` if some call is not covered.
    pub fn resolve(
        &self,
        lookup: &dyn Fn(&ServiceCall) -> Option<dcds_reldata::Value>,
    ) -> Option<Instance> {
        let mut out = Instance::new();
        for (rel, terms) in self.facts() {
            let mut vals = Vec::with_capacity(terms.len());
            for t in terms {
                match t {
                    GTerm::Val(v) => vals.push(*v),
                    GTerm::Call(c) => vals.push(lookup(c)?),
                }
            }
            out.insert(rel, Tuple::from(vals));
        }
        Some(out)
    }
}

/// Compiled query plans for a DCDS: one [`CompiledPlan`] per effect `q⁺`
/// (with the action parameters as pre-bound inputs) and one per rule
/// condition that is recognisably a UCQ. Built once per system — see
/// [`Dcds::plans`] — and shared across the whole exploration; queries
/// outside the compilable fragment keep `None` and evaluation falls back to
/// the legacy evaluators, so behaviour is bit-identical either way.
#[derive(Debug, Default)]
pub struct PlanCache {
    /// `effect_plans[action][effect]`.
    effect_plans: Vec<Vec<Option<CompiledPlan>>>,
    /// One optional plan per condition–action rule.
    rule_plans: Vec<Option<CompiledPlan>>,
    /// Union of the access paths every compiled plan probes — what a
    /// per-state [`InstanceIndex`] must cover.
    paths: Vec<AccessPath>,
    /// Evaluation counters (plan evals, index probes vs scans, fallbacks).
    pub stats: PlanStats,
}

impl PlanCache {
    /// Compile every effect `q⁺` and every UCQ-shaped rule condition.
    pub fn build(dcds: &Dcds) -> PlanCache {
        let mut paths: BTreeSet<AccessPath> = BTreeSet::new();
        let mut effect_plans = Vec::with_capacity(dcds.process.actions.len());
        for action in &dcds.process.actions {
            let params: BTreeSet<Var> = action.params.iter().cloned().collect();
            let mut per_effect = Vec::with_capacity(action.effects.len());
            for effect in &action.effects {
                let plan = CompiledPlan::compile(&effect.qplus, &params).ok();
                if let Some(p) = &plan {
                    paths.extend(p.access_paths());
                }
                per_effect.push(plan);
            }
            effect_plans.push(per_effect);
        }
        let mut rule_plans = Vec::with_capacity(dcds.process.rules.len());
        for rule in &dcds.process.rules {
            let plan = Ucq::from_formula(&rule.condition)
                .and_then(|ucq| CompiledPlan::compile(&ucq, &BTreeSet::new()).ok());
            if let Some(p) = &plan {
                paths.extend(p.access_paths());
            }
            rule_plans.push(plan);
        }
        PlanCache {
            effect_plans,
            rule_plans,
            paths: paths.into_iter().collect(),
            stats: PlanStats::default(),
        }
    }

    /// The plan for one effect of one action, if it compiled.
    pub fn effect_plan(&self, action: ActionId, effect: usize) -> Option<&CompiledPlan> {
        self.effect_plans.get(action.index())?.get(effect)?.as_ref()
    }

    /// The plan for a rule condition, if it compiled.
    pub fn rule_plan(&self, rule: usize) -> Option<&CompiledPlan> {
        self.rule_plans.get(rule)?.as_ref()
    }

    /// The access paths a per-state index should cover.
    pub fn access_paths(&self) -> &[AccessPath] {
        &self.paths
    }

    /// How many effects (resp. rules) compiled, out of how many.
    pub fn coverage(&self) -> ((usize, usize), (usize, usize)) {
        let effects: Vec<&Option<CompiledPlan>> = self.effect_plans.iter().flatten().collect();
        (
            (
                effects.iter().filter(|p| p.is_some()).count(),
                effects.len(),
            ),
            (
                self.rule_plans.iter().filter(|p| p.is_some()).count(),
                self.rule_plans.len(),
            ),
        )
    }
}

/// Build the per-state hash index covering every access path the system's
/// compiled plans probe. Engines build one per frontier state and reuse it
/// across all actions, parameter assignments, and effects evaluated there.
pub fn state_index(dcds: &Dcds, inst: &Instance) -> InstanceIndex {
    InstanceIndex::build(inst, dcds.plans().access_paths().iter().cloned())
}

/// Snapshot of the plan-cache counters, for delta publication around a run.
pub fn query_stats_snapshot(dcds: &Dcds) -> [(&'static str, u64); 4] {
    dcds.plans().stats.snapshot()
}

/// Publish the growth of the plan-cache counters since `before` into the
/// observability registry under `query.*`. The totals depend only on the
/// work performed, not on the thread count, and this is called from serial
/// engine code — so the registry stays bit-identical at every thread count.
pub fn publish_query_stats_delta(
    dcds: &Dcds,
    obs: &dcds_obs::Obs,
    before: &[(&'static str, u64); 4],
) {
    if !obs.is_enabled() {
        return;
    }
    for ((name, after), (_, b)) in dcds.plans().stats.snapshot().iter().zip(before) {
        obs.counter_add(format!("query.{name}"), after.saturating_sub(*b));
    }
}

/// Substitute an assignment into a UCQ: parameters bound by σ become
/// constants (and are dropped from the head, their values being supplied by
/// σ at grounding time).
fn substitute_ucq(ucq: &Ucq, sigma: &Assignment) -> Ucq {
    let disjuncts = ucq
        .disjuncts
        .iter()
        .map(|cq| ConjunctiveQuery {
            head: cq
                .head
                .iter()
                .filter(|v| !sigma.contains_key(*v))
                .cloned()
                .collect(),
            atoms: cq
                .atoms
                .iter()
                .map(|(rel, terms)| (*rel, terms.iter().map(|t| subst_qterm(t, sigma)).collect()))
                .collect(),
            equalities: cq
                .equalities
                .iter()
                .map(|(t1, t2)| (subst_qterm(t1, sigma), subst_qterm(t2, sigma)))
                .collect(),
        })
        .collect();
    Ucq { disjuncts }
}

fn subst_qterm(t: &QTerm, sigma: &Assignment) -> QTerm {
    match t {
        QTerm::Var(v) => sigma
            .get(v)
            .map(|&c| QTerm::Const(c))
            .unwrap_or_else(|| t.clone()),
        QTerm::Const(_) => t.clone(),
    }
}

/// `DO(I, ασ)`: apply the action under the parameter assignment, producing
/// the pre-instance of grounded effect heads.
pub fn do_action(
    dcds: &Dcds,
    inst: &Instance,
    action: ActionId,
    sigma: &Assignment,
) -> PreInstance {
    do_action_indexed(dcds, inst, action, sigma, None)
}

/// [`do_action`] evaluating `q⁺` through the cached compiled plans, probing
/// `index` when one is supplied (see [`state_index`]). Effects whose query
/// did not compile — or a σ that is not exactly the action's parameter
/// assignment — take the legacy substitute-and-join path; the result is
/// bit-identical in every case.
pub fn do_action_indexed(
    dcds: &Dcds,
    inst: &Instance,
    action: ActionId,
    sigma: &Assignment,
    index: Option<&InstanceIndex>,
) -> PreInstance {
    let cache = dcds.plans();
    let action_id = action;
    let action = dcds.process.action(action);
    // The plans were compiled with exactly `params(α)` as input slots; any
    // other σ domain (possible through this public API) changes which
    // variables substitution eliminates, so it must use the legacy path.
    let sigma_is_params =
        sigma.len() == action.params.len() && action.params.iter().all(|p| sigma.contains_key(p));
    let mut out = PreInstance::new();
    for (eix, effect) in action.effects.iter().enumerate() {
        let plan = if sigma_is_params {
            cache.effect_plan(action_id, eix)
        } else {
            None
        };
        let thetas: BTreeSet<Assignment> = match plan {
            Some(plan) => {
                let mut ctx = match index {
                    Some(ix) => EvalCtx::with_index(inst, ix),
                    None => EvalCtx::scan(inst),
                };
                ctx = ctx.stats(&cache.stats);
                plan.eval(&ctx, sigma)
            }
            None => {
                cache.stats.fallback_evals.fetch_add(1, Ordering::Relaxed);
                eval_ucq(&substitute_ucq(&effect.qplus, sigma), inst)
            }
        };
        let qminus = effect.qminus.apply(sigma);
        for theta in thetas {
            // θ covers the (remaining) head variables of q+; the filter Q-
            // may mention them and the parameters (already substituted).
            let mut full: Assignment = theta.clone();
            for (p, v) in sigma {
                full.insert(p.clone(), *v);
            }
            let pass = if qminus == dcds_folang::Formula::True {
                true
            } else {
                // Restrict to the filter's free variables (all bound).
                holds(&qminus, inst, &full).unwrap_or(false)
            };
            if !pass {
                continue;
            }
            for (rel, terms) in &effect.head {
                let grounded: Option<Vec<GTerm>> = terms.iter().map(|t| t.ground(&full)).collect();
                if let Some(g) = grounded {
                    out.insert(*rel, g);
                }
            }
        }
    }
    out
}

/// Legal parameter assignments: for each rule `Q ↦ α`, every answer of `Q`
/// over the instance provides a legal σ for α (Section 4.1). Returns
/// deterministic, deduplicated `(action, σ)` pairs.
pub fn legal_assignments(dcds: &Dcds, inst: &Instance) -> Vec<(ActionId, Assignment)> {
    legal_assignments_indexed(dcds, inst, None)
}

/// [`legal_assignments`] answering UCQ-shaped rule conditions through their
/// compiled plans (probing `index` when supplied); conditions outside the
/// fragment — negation, universal quantification, non-range-restricted
/// equalities — keep the reference active-domain evaluator. Identical
/// output either way: compiled plans are gated on the range restriction
/// under which the two semantics coincide.
pub fn legal_assignments_indexed(
    dcds: &Dcds,
    inst: &Instance,
    index: Option<&InstanceIndex>,
) -> Vec<(ActionId, Assignment)> {
    let cache = dcds.plans();
    let mut seen: BTreeSet<(ActionId, Vec<(Var, dcds_reldata::Value)>)> = BTreeSet::new();
    let mut out = Vec::new();
    for (rix, rule) in dcds.process.rules.iter().enumerate() {
        let answers: BTreeSet<Assignment> = match cache.rule_plan(rix) {
            Some(plan) => {
                let mut ctx = match index {
                    Some(ix) => EvalCtx::with_index(inst, ix),
                    None => EvalCtx::scan(inst),
                };
                ctx = ctx.stats(&cache.stats);
                plan.eval(&ctx, &Assignment::new())
            }
            None => {
                cache.stats.fallback_evals.fetch_add(1, Ordering::Relaxed);
                dcds_folang::answers(&rule.condition, inst)
            }
        };
        for sigma in answers {
            let key: Vec<_> = sigma.iter().map(|(v, c)| (v.clone(), *c)).collect();
            if seen.insert((rule.action, key)) {
                out.push((rule.action, sigma));
            }
        }
    }
    out
}

/// Overwrite semantics helper used by both service semantics: the successor
/// instance is *exactly* the resolved `DO` result — facts not re-asserted by
/// some effect are forgotten (the paper's transition semantics).
pub fn resolve_with_map(
    pre: &PreInstance,
    map: &BTreeMap<ServiceCall, dcds_reldata::Value>,
) -> Option<Instance> {
    pre.resolve(&|c| map.get(c).copied())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DcdsBuilder;
    use crate::service::ServiceKind;

    /// Example 4.1 from the paper.
    fn example_4_1() -> Dcds {
        DcdsBuilder::new()
            .relation("Q", 2)
            .relation("P", 1)
            .relation("R", 1)
            .service("f", 1, ServiceKind::Deterministic)
            .service("g", 1, ServiceKind::Deterministic)
            .init_fact("P", &["a"])
            .init_fact("Q", &["a", "a"])
            .action("alpha", &[], |a| {
                a.effect("Q(a,a) & P(X)", "R(X)");
                a.effect("P(X)", "P(X), Q(f(X), g(X))");
            })
            .rule("true", "alpha")
            .build()
            .expect("example 4.1 is well-formed")
    }

    #[test]
    fn do_produces_calls_and_values() {
        let dcds = example_4_1();
        let alpha = dcds.action_id("alpha").unwrap();
        let pre = do_action(&dcds, &dcds.data.initial, alpha, &Assignment::new());
        // Facts: R(a), P(a), Q(f(a), g(a)).
        assert_eq!(pre.len(), 3);
        let calls = pre.calls();
        assert_eq!(calls.len(), 2);
        let names: BTreeSet<String> = calls
            .iter()
            .map(|c| c.display(&dcds.process.services, &dcds.data.pool))
            .collect();
        assert_eq!(
            names,
            ["f(a)".to_owned(), "g(a)".to_owned()].into_iter().collect()
        );
    }

    #[test]
    fn resolve_builds_instance() {
        let dcds = example_4_1();
        let alpha = dcds.action_id("alpha").unwrap();
        let pre = do_action(&dcds, &dcds.data.initial, alpha, &Assignment::new());
        let a = dcds.data.pool.get("a").unwrap();
        let map: BTreeMap<ServiceCall, _> = pre.calls().into_iter().map(|c| (c, a)).collect();
        let inst = resolve_with_map(&pre, &map).unwrap();
        // R(a), P(a), Q(a,a).
        assert_eq!(inst.len(), 3);
        let q = dcds.data.schema.rel_id("Q").unwrap();
        assert!(inst.contains(q, &Tuple::from([a, a])));
    }

    #[test]
    fn legal_assignments_from_true_rule() {
        let dcds = example_4_1();
        let legal = legal_assignments(&dcds, &dcds.data.initial);
        assert_eq!(legal.len(), 1);
        assert!(legal[0].1.is_empty());
    }

    #[test]
    fn unresolved_calls_fail_resolution() {
        let dcds = example_4_1();
        let alpha = dcds.action_id("alpha").unwrap();
        let pre = do_action(&dcds, &dcds.data.initial, alpha, &Assignment::new());
        assert!(resolve_with_map(&pre, &BTreeMap::new()).is_none());
    }

    #[test]
    fn parameterised_action_and_guard() {
        // ρ = { P(X) ↦ alpha(X) }, alpha(p): true ⇝ R(p).
        let dcds = DcdsBuilder::new()
            .relation("P", 1)
            .relation("R", 1)
            .init_fact("P", &["a"])
            .init_fact("P", &["b"])
            .action("alpha", &["X"], |a| {
                a.effect("true", "R(X)");
            })
            .rule("P(X)", "alpha")
            .build()
            .unwrap();
        let legal = legal_assignments(&dcds, &dcds.data.initial);
        assert_eq!(legal.len(), 2);
        let alpha = dcds.action_id("alpha").unwrap();
        for (act, sigma) in legal {
            assert_eq!(act, alpha);
            let pre = do_action(&dcds, &dcds.data.initial, act, &sigma);
            assert_eq!(pre.len(), 1);
        }
    }

    #[test]
    fn negative_filter_blocks_instantiations() {
        // e: P(X) ∧ ¬R(X) ⇝ R(X) — only copies P-values not yet in R.
        let dcds = DcdsBuilder::new()
            .relation("P", 1)
            .relation("R", 1)
            .init_fact("P", &["a"])
            .init_fact("P", &["b"])
            .init_fact("R", &["a"])
            .action("alpha", &[], |a| {
                a.effect("P(X) & !R(X)", "R(X)");
            })
            .rule("true", "alpha")
            .build()
            .unwrap();
        let alpha = dcds.action_id("alpha").unwrap();
        let pre = do_action(&dcds, &dcds.data.initial, alpha, &Assignment::new());
        // Only R(b).
        assert_eq!(pre.len(), 1);
        let b = dcds.data.pool.get("b").unwrap();
        let r = dcds.data.schema.rel_id("R").unwrap();
        let inst = pre.resolve(&|_| None).unwrap();
        assert!(inst.contains(r, &Tuple::from([b])));
    }
}
