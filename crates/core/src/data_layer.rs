//! The data layer `D = ⟨C, R, E, I₀⟩`.

use dcds_folang::{EqualityConstraint, FoConstraint};
use dcds_reldata::{ConstantPool, Instance, Schema, Value};
use std::collections::BTreeSet;

/// The data layer of a DCDS (Section 2.1): constants, schema, equality
/// constraints and an initial instance. Arbitrary FO integrity constraints
/// (Section 6) are supported natively alongside equality constraints;
/// `dcds-reductions::fo_constraints` implements the paper's encoding of the
/// former into the latter for cross-validation.
#[derive(Debug, Clone)]
pub struct DataLayer {
    /// The constant domain `C` (finitely materialised, unboundedly mintable).
    pub pool: ConstantPool,
    /// The database schema `R`.
    pub schema: Schema,
    /// Equality constraints `E`.
    pub constraints: Vec<EqualityConstraint>,
    /// FO integrity constraints (active-domain semantics).
    pub fo_constraints: Vec<FoConstraint>,
    /// The initial instance `I₀`.
    pub initial: Instance,
}

impl DataLayer {
    /// A data layer with no constraints.
    pub fn new(pool: ConstantPool, schema: Schema, initial: Instance) -> Self {
        DataLayer {
            pool,
            schema,
            constraints: Vec::new(),
            fo_constraints: Vec::new(),
            initial,
        }
    }

    /// `ADOM(I₀)` — the *rigid* constants fixed pointwise by every
    /// isomorphism/bisimulation in the framework. Constants mentioned in
    /// formulas are assumed (w.l.o.g., footnote 2) to appear in `I₀`.
    pub fn rigid_constants(&self) -> BTreeSet<Value> {
        self.initial.active_domain()
    }

    /// Does an instance satisfy every constraint of the layer?
    pub fn satisfies_constraints(&self, inst: &Instance) -> bool {
        self.constraints.iter().all(|c| c.satisfied(inst))
            && self.fo_constraints.iter().all(|c| c.satisfied(inst))
    }

    /// Validate the layer itself: `I₀` conforms to the schema and satisfies
    /// the constraints.
    pub fn validate(&self) -> Result<(), String> {
        self.initial
            .check_schema(&self.schema)
            .map_err(|e| e.to_string())?;
        if !self.satisfies_constraints(&self.initial) {
            return Err("initial instance violates the data-layer constraints".to_owned());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcds_folang::ast::QTerm;
    use dcds_folang::parse_formula;
    use dcds_reldata::Tuple;

    #[test]
    fn validate_checks_schema_and_constraints() {
        let mut pool = ConstantPool::new();
        let mut schema = Schema::new();
        let p = schema.add_relation("P", 1).unwrap();
        let q = schema.add_relation("Q", 2).unwrap();
        let a = pool.intern("a");
        let b = pool.intern("b");
        let premise = parse_formula("P(X) & Q(Y, Z)", &mut schema, &mut pool).unwrap();
        let ec =
            EqualityConstraint::new(premise, vec![(QTerm::var("X"), QTerm::var("Y"))]).unwrap();

        let good = Instance::from_facts([(p, Tuple::from([a])), (q, Tuple::from([a, a]))]);
        let mut layer = DataLayer::new(pool.clone(), schema.clone(), good);
        layer.constraints.push(ec.clone());
        assert!(layer.validate().is_ok());

        let bad = Instance::from_facts([(p, Tuple::from([a])), (q, Tuple::from([b, a]))]);
        let mut layer2 = DataLayer::new(pool, schema, bad);
        layer2.constraints.push(ec);
        assert!(layer2.validate().is_err());
    }

    #[test]
    fn rigid_constants_are_initial_adom() {
        let mut pool = ConstantPool::new();
        let mut schema = Schema::new();
        let p = schema.add_relation("P", 1).unwrap();
        let a = pool.intern("a");
        let _b = pool.intern("b");
        let layer = DataLayer::new(pool, schema, Instance::from_facts([(p, Tuple::from([a]))]));
        assert_eq!(layer.rigid_constants(), [a].into_iter().collect());
    }
}
