//! External service interfaces.
//!
//! The process layer carries a finite set `F` of functions, "each
//! representing the interface to an external service" (Section 2.2). The
//! DCDS never knows how a service computes its results; the semantics only
//! distinguishes
//!
//! * [`ServiceKind::Deterministic`] — same arguments ⇒ same result for the
//!   whole run (Section 4), and
//! * [`ServiceKind::Nondeterministic`] — same-argument calls may return
//!   different values at different moments (Section 5).
//!
//! Mixed catalogs are permitted (Section 6, "Mixed semantics"); the
//! reduction of Theorem 6.1 in `dcds-reductions` rewrites them to purely
//! nondeterministic ones.

use std::collections::HashMap;

/// Identifier of a service function inside a [`ServiceCatalog`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FuncId(u32);

impl FuncId {
    /// Raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Rebuild from a raw index.
    #[inline]
    pub fn from_index(ix: usize) -> Self {
        FuncId(u32::try_from(ix).expect("service catalog overflow"))
    }
}

/// How a service behaves across a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ServiceKind {
    /// Same-argument calls return the same value across the whole run
    /// (models stateless services; Section 4).
    Deterministic,
    /// Same-argument calls may return distinct values at distinct moments
    /// (models human operators, random processes, stateful servers;
    /// Section 5).
    Nondeterministic,
}

/// A single service interface `f/n`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceDecl {
    name: String,
    arity: usize,
    kind: ServiceKind,
}

impl ServiceDecl {
    /// Function name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of arguments.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Deterministic or nondeterministic.
    pub fn kind(&self) -> ServiceKind {
        self.kind
    }
}

/// The finite set `F` of service interfaces.
#[derive(Debug, Clone, Default)]
pub struct ServiceCatalog {
    funcs: Vec<ServiceDecl>,
    index: HashMap<String, FuncId>,
}

impl ServiceCatalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declare a service `name/arity` with the given kind. Errors (as a
    /// string message) on duplicates.
    pub fn add(&mut self, name: &str, arity: usize, kind: ServiceKind) -> Result<FuncId, String> {
        if self.index.contains_key(name) {
            return Err(format!("duplicate service {name}"));
        }
        let id = FuncId::from_index(self.funcs.len());
        self.funcs.push(ServiceDecl {
            name: name.to_owned(),
            arity,
            kind,
        });
        self.index.insert(name.to_owned(), id);
        Ok(id)
    }

    /// Look up by name.
    pub fn func_id(&self, name: &str) -> Option<FuncId> {
        self.index.get(name).copied()
    }

    /// Declaration of a function.
    pub fn decl(&self, id: FuncId) -> &ServiceDecl {
        &self.funcs[id.index()]
    }

    /// Name of a function.
    pub fn name(&self, id: FuncId) -> &str {
        &self.funcs[id.index()].name
    }

    /// Arity of a function.
    pub fn arity(&self, id: FuncId) -> usize {
        self.funcs[id.index()].arity
    }

    /// Kind of a function.
    pub fn kind(&self, id: FuncId) -> ServiceKind {
        self.funcs[id.index()].kind
    }

    /// Number of declared services.
    pub fn len(&self) -> usize {
        self.funcs.len()
    }

    /// True if no services are declared.
    pub fn is_empty(&self) -> bool {
        self.funcs.is_empty()
    }

    /// Iterate over `(id, decl)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (FuncId, &ServiceDecl)> {
        self.funcs
            .iter()
            .enumerate()
            .map(|(ix, d)| (FuncId::from_index(ix), d))
    }

    /// True when every service is deterministic.
    pub fn all_deterministic(&self) -> bool {
        self.funcs
            .iter()
            .all(|d| d.kind == ServiceKind::Deterministic)
    }

    /// True when every service is nondeterministic.
    pub fn all_nondeterministic(&self) -> bool {
        self.funcs
            .iter()
            .all(|d| d.kind == ServiceKind::Nondeterministic)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_lookup() {
        let mut cat = ServiceCatalog::new();
        let f = cat.add("f", 1, ServiceKind::Deterministic).unwrap();
        assert_eq!(cat.func_id("f"), Some(f));
        assert_eq!(cat.arity(f), 1);
        assert_eq!(cat.kind(f), ServiceKind::Deterministic);
        assert_eq!(cat.name(f), "f");
    }

    #[test]
    fn duplicates_rejected() {
        let mut cat = ServiceCatalog::new();
        cat.add("f", 1, ServiceKind::Deterministic).unwrap();
        assert!(cat.add("f", 2, ServiceKind::Nondeterministic).is_err());
    }

    #[test]
    fn kind_queries() {
        let mut cat = ServiceCatalog::new();
        cat.add("f", 1, ServiceKind::Deterministic).unwrap();
        assert!(cat.all_deterministic());
        cat.add("g", 0, ServiceKind::Nondeterministic).unwrap();
        assert!(!cat.all_deterministic());
        assert!(!cat.all_nondeterministic());
    }

    #[test]
    fn nullary_services_allowed() {
        // The Theorem 5.2 reduction uses a nullary nondeterministic `f/0`.
        let mut cat = ServiceCatalog::new();
        let f = cat.add("f", 0, ServiceKind::Nondeterministic).unwrap();
        assert_eq!(cat.arity(f), 0);
    }
}
