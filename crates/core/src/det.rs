//! Deterministic service semantics (Section 4.1).
//!
//! States of the concrete transition system are pairs `⟨I, M⟩` of an
//! instance and a *service-call map* `M : SC → C` recording every result
//! returned so far; determinism is exactly the persistence of `M` across
//! steps. `EXECS` relates `⟨I, M⟩` to `⟨I', M'⟩` when some legal `ασ`
//! produces `M' = SERVICECALLS(I, ασ, M)` (old entries kept, new calls bound
//! to arbitrary values) and `I' = M'(DO(I, ασ))` satisfies the constraints.
//!
//! The successor space is infinite (new calls can return anything); this
//! module exposes (i) point successors under an explicit choice of values
//! ([`det_step`]) and (ii) the finitely many *commitment representatives*
//! ([`det_successors_by_commitment`]), which is what the abstract transition
//! system of Theorem 4.3 retains.

use crate::action::ActionId;
use crate::commitment::{enumerate_commitments, CommitTarget, Commitment};
use crate::dcds::Dcds;
use crate::do_op::{do_action, legal_assignments, resolve_with_map};
use crate::term::ServiceCall;
use dcds_folang::Assignment;
use dcds_reldata::{ConstantPool, Facts, Instance, Tuple, Value};
use std::collections::{BTreeMap, BTreeSet};

/// A state of the deterministic concrete transition system: `⟨I, M⟩`.
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DetState {
    /// The current database `I`.
    pub instance: Instance,
    /// The service-call map `M` accumulated so far.
    pub call_map: BTreeMap<ServiceCall, Value>,
}

impl DetState {
    /// The initial state `⟨I₀, ∅⟩`.
    pub fn initial(dcds: &Dcds) -> Self {
        DetState {
            instance: dcds.data.initial.clone(),
            call_map: BTreeMap::new(),
        }
    }

    /// All values the state *remembers*: the active domain plus every
    /// argument and result recorded in the call map.
    pub fn known_values(&self) -> BTreeSet<Value> {
        let mut out = self.instance.active_domain();
        for (call, result) in &self.call_map {
            out.extend(call.args.iter().copied());
            out.insert(*result);
        }
        out
    }

    /// Encode the full state (instance + call map) as a colored fact set for
    /// isomorphism checking / canonicalisation. Relation facts keep their
    /// relation index as color; the entry `f(v₁..vₙ) ↦ r` becomes a fact of
    /// color `num_rels + f` with tuple `(v₁..vₙ, r)`.
    pub fn to_facts(&self, num_rels: usize) -> Facts {
        let mut facts = Facts::from_instance(&self.instance);
        for (call, result) in &self.call_map {
            let mut t: Vec<Value> = call.args.clone();
            t.push(*result);
            facts.insert((num_rels + call.func.index()) as u32, Tuple::from(t));
        }
        facts
    }
}

/// One concrete execution step `⟨⟨I,M⟩, ασ, ⟨I',M'⟩⟩ ∈ EXECS` under an
/// explicit assignment of values to the *new* calls. Returns `None` when
/// the resulting instance violates the constraints (condition 4 of EXECS) or
/// when `choice` contradicts `M` / misses a call.
pub fn det_step(
    dcds: &Dcds,
    state: &DetState,
    action: ActionId,
    sigma: &Assignment,
    choice: &BTreeMap<ServiceCall, Value>,
) -> Option<DetState> {
    let pre = do_action(dcds, &state.instance, action, sigma);
    det_step_with_pre(dcds, state, &pre, choice)
}

/// [`det_step`] for a caller that has already computed `DO(I, ασ)`.
///
/// The parallel frontier expansion computes each `PreInstance` once per
/// legal `ασ` and then evaluates every commitment of that `ασ` against it,
/// instead of re-running `DO` (a full query-evaluation pass) per
/// commitment as the pointwise API does.
pub fn det_step_with_pre(
    dcds: &Dcds,
    state: &DetState,
    pre: &crate::do_op::PreInstance,
    choice: &BTreeMap<ServiceCall, Value>,
) -> Option<DetState> {
    let mut new_map = state.call_map.clone();
    for call in pre.calls() {
        if let Some(&v) = state.call_map.get(&call) {
            // Determinism: a previously-answered call must not be re-chosen
            // differently.
            if let Some(&w) = choice.get(&call) {
                if w != v {
                    return None;
                }
            }
            let _ = v;
        } else {
            let v = *choice.get(&call)?;
            new_map.insert(call, v);
        }
    }
    let inst = resolve_with_map(pre, &new_map)?;
    if !dcds.data.satisfies_constraints(&inst) {
        return None;
    }
    Some(DetState {
        instance: inst,
        call_map: new_map,
    })
}

/// The commitment-representative successors of a deterministic state: for
/// every legal `ασ` and every equality commitment of the new calls against
/// the state's known values (and `ADOM(I₀)`), one successor whose fresh
/// cells are instantiated with freshly minted constants.
///
/// Constraint-violating representatives are dropped (the paper's
/// "filtering it away if this is not the case").
pub fn det_successors_by_commitment(
    dcds: &Dcds,
    state: &DetState,
    pool: &mut ConstantPool,
) -> Vec<(ActionId, Assignment, Commitment, DetState)> {
    let mut out = Vec::new();
    let rigid = dcds.rigid_constants();
    for (action, sigma) in legal_assignments(dcds, &state.instance) {
        let pre = do_action(dcds, &state.instance, action, &sigma);
        let new_calls: Vec<ServiceCall> = pre
            .calls()
            .into_iter()
            .filter(|c| !state.call_map.contains_key(c))
            .collect();
        let mut known: BTreeSet<Value> = state.known_values();
        known.extend(rigid.iter().copied());
        let known: Vec<Value> = known.into_iter().collect();
        for commitment in enumerate_commitments(&new_calls, &known) {
            let cells = crate::commitment::fresh_cell_count(&commitment);
            let fresh: Vec<Value> = (0..cells).map(|_| pool.mint("v")).collect();
            let choice: BTreeMap<ServiceCall, Value> = commitment
                .iter()
                .map(|(c, t)| {
                    let v = match t {
                        CommitTarget::Known(v) => *v,
                        CommitTarget::Fresh(cell) => fresh[*cell],
                    };
                    (c.clone(), v)
                })
                .collect();
            if let Some(next) = det_step_with_pre(dcds, state, &pre, &choice) {
                out.push((action, sigma.clone(), commitment, next));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DcdsBuilder;
    use crate::service::ServiceKind;

    fn example_4_1() -> Dcds {
        DcdsBuilder::new()
            .relation("Q", 2)
            .relation("P", 1)
            .relation("R", 1)
            .service("f", 1, ServiceKind::Deterministic)
            .service("g", 1, ServiceKind::Deterministic)
            .init_fact("P", &["a"])
            .init_fact("Q", &["a", "a"])
            .action("alpha", &[], |a| {
                a.effect("Q(a,a) & P(X)", "R(X)");
                a.effect("P(X)", "P(X), Q(f(X), g(X))");
            })
            .rule("true", "alpha")
            .build()
            .unwrap()
    }

    fn example_4_2() -> Dcds {
        DcdsBuilder::new()
            .relation("Q", 2)
            .relation("P", 1)
            .relation("R", 1)
            .service("f", 1, ServiceKind::Deterministic)
            .service("g", 1, ServiceKind::Deterministic)
            .init_fact("P", &["a"])
            .init_fact("Q", &["a", "a"])
            .constraint("P(X) & Q(Y, Z) -> X = Y")
            .action("alpha", &[], |a| {
                a.effect("Q(a,a) & P(X)", "R(X)");
                a.effect("P(X)", "P(X), Q(f(X), g(X))");
            })
            .rule("true", "alpha")
            .build()
            .unwrap()
    }

    #[test]
    fn step_records_calls_deterministically() {
        let dcds = example_4_1();
        let alpha = dcds.action_id("alpha").unwrap();
        let mut pool = dcds.working_pool();
        let b = pool.mint("v");
        let s0 = DetState::initial(&dcds);
        let pre = do_action(&dcds, &s0.instance, alpha, &Assignment::new());
        let choice: BTreeMap<ServiceCall, Value> =
            pre.calls().into_iter().map(|c| (c, b)).collect();
        let s1 = det_step(&dcds, &s0, alpha, &Assignment::new(), &choice).unwrap();
        assert_eq!(s1.call_map.len(), 2);
        // Second step: P still holds only a, so the issued calls f(a), g(a)
        // are already answered by M — determinism means no new choices.
        let pre2 = do_action(&dcds, &s1.instance, alpha, &Assignment::new());
        let new: Vec<_> = pre2
            .calls()
            .into_iter()
            .filter(|c| !s1.call_map.contains_key(c))
            .collect();
        assert!(new.is_empty());
        // And the deterministic step is now unique: passing an empty choice
        // succeeds and reuses the recorded results. R(a) is dropped (its
        // guard Q(a,a) no longer holds), P(a) and Q(b,b) are reproduced.
        let s2 = det_step(&dcds, &s1, alpha, &Assignment::new(), &BTreeMap::new()).unwrap();
        let r = dcds.data.schema.rel_id("R").unwrap();
        assert_eq!(s2.instance.cardinality(r), 0);
        assert_eq!(s2.instance.len(), 2);
        assert_eq!(s2.call_map, s1.call_map);
    }

    #[test]
    fn contradicting_choice_rejected() {
        let dcds = example_4_1();
        let alpha = dcds.action_id("alpha").unwrap();
        let mut pool = dcds.working_pool();
        let b = pool.mint("v");
        let c = pool.mint("v");
        let s0 = DetState::initial(&dcds);
        let pre = do_action(&dcds, &s0.instance, alpha, &Assignment::new());
        let choice: BTreeMap<ServiceCall, Value> =
            pre.calls().into_iter().map(|cl| (cl, b)).collect();
        let s1 = det_step(&dcds, &s0, alpha, &Assignment::new(), &choice).unwrap();
        // Re-answering f(a) with a different value must be rejected.
        let bad: BTreeMap<ServiceCall, Value> = s1
            .call_map
            .keys()
            .cloned()
            .map(|k| (k, c))
            .chain(
                do_action(&dcds, &s1.instance, alpha, &Assignment::new())
                    .calls()
                    .into_iter()
                    .map(|k| (k, c)),
            )
            .collect();
        assert!(det_step(&dcds, &s1, alpha, &Assignment::new(), &bad).is_none());
    }

    #[test]
    fn commitment_successors_of_example_4_1() {
        // From I0 the two new calls f(a), g(a) against known {a} give
        // (K,K), (K,F0), (F0,K), (F0,F0), (F0,F1): 5 successors.
        let dcds = example_4_1();
        let mut pool = dcds.working_pool();
        let s0 = DetState::initial(&dcds);
        let succs = det_successors_by_commitment(&dcds, &s0, &mut pool);
        assert_eq!(succs.len(), 5);
    }

    #[test]
    fn equality_constraint_prunes_successors() {
        // Example 4.2: the constraint forces f(a) = a, so only commitments
        // with f(a) ↦ Known(a) survive: g(a) ∈ {a, fresh} → 2 successors.
        let dcds = example_4_2();
        let mut pool = dcds.working_pool();
        let s0 = DetState::initial(&dcds);
        let succs = det_successors_by_commitment(&dcds, &s0, &mut pool);
        assert_eq!(succs.len(), 2);
        let a = dcds.data.pool.get("a").unwrap();
        for (_, _, commitment, _) in &succs {
            let f_call = commitment
                .keys()
                .find(|c| dcds.process.services.name(c.func) == "f")
                .unwrap();
            assert_eq!(commitment[f_call], CommitTarget::Known(a));
        }
    }

    #[test]
    fn known_values_include_call_map() {
        let dcds = example_4_1();
        let alpha = dcds.action_id("alpha").unwrap();
        let mut pool = dcds.working_pool();
        let b = pool.mint("v");
        let s0 = DetState::initial(&dcds);
        let pre = do_action(&dcds, &s0.instance, alpha, &Assignment::new());
        let choice: BTreeMap<ServiceCall, Value> =
            pre.calls().into_iter().map(|c| (c, b)).collect();
        let s1 = det_step(&dcds, &s0, alpha, &Assignment::new(), &choice).unwrap();
        assert!(s1.known_values().contains(&b));
    }

    #[test]
    fn to_facts_distinguishes_call_maps() {
        let dcds = example_4_1();
        let n = dcds.data.schema.len();
        let s0 = DetState::initial(&dcds);
        let mut s0b = s0.clone();
        let a = dcds.data.pool.get("a").unwrap();
        s0b.call_map.insert(
            ServiceCall {
                func: crate::service::FuncId::from_index(0),
                args: vec![a],
            },
            a,
        );
        assert_ne!(s0.to_facts(n), s0b.to_facts(n));
    }
}
