//! Nondeterministic service semantics (Section 5.1).
//!
//! States are plain instances. A step picks a legal `ασ`, evaluates
//! `DO(I, ασ)`, and replaces the service calls by values chosen
//! nondeterministically — *without* any cross-step consistency requirement
//! (within one step, all occurrences of the same ground call coincide,
//! because calls are resolved call-by-call, not occurrence-by-occurrence).
//!
//! As with the deterministic case, the successor space is infinite;
//! exposed here are point steps ([`nondet_step`]), commitment
//! representatives ([`nondet_successors_by_commitment`]), and the
//! `EVALS_F`-style enumeration over an explicit finite value set
//! ([`evals_over`], used by Algorithm RCYCL).

use crate::action::ActionId;
use crate::commitment::{enumerate_commitments, CommitTarget, Commitment};
use crate::dcds::Dcds;
use crate::do_op::{do_action, legal_assignments, resolve_with_map};
use crate::term::ServiceCall;
use dcds_folang::Assignment;
use dcds_reldata::{ConstantPool, Instance, Value};
use std::collections::{BTreeMap, BTreeSet};

/// One concrete execution step `⟨I, ασθ, I'⟩ ∈ N-EXECS` under an explicit
/// evaluation θ of the calls. Returns `None` if θ misses a call or the
/// successor violates the constraints.
pub fn nondet_step(
    dcds: &Dcds,
    inst: &Instance,
    action: ActionId,
    sigma: &Assignment,
    theta: &BTreeMap<ServiceCall, Value>,
) -> Option<Instance> {
    let pre = do_action(dcds, inst, action, sigma);
    nondet_step_with_pre(dcds, &pre, theta)
}

/// [`nondet_step`] for a caller that has already computed `DO(I, ασ)`.
///
/// RCYCL evaluates up to `|F|^n` evaluations θ against the *same*
/// pre-instance; computing `DO` once per `ασ` instead of once per θ
/// removes a full query-evaluation pass from the innermost loop.
pub fn nondet_step_with_pre(
    dcds: &Dcds,
    pre: &crate::do_op::PreInstance,
    theta: &BTreeMap<ServiceCall, Value>,
) -> Option<Instance> {
    let next = resolve_with_map(pre, theta)?;
    if !dcds.data.satisfies_constraints(&next) {
        return None;
    }
    Some(next)
}

/// All evaluations `θ : calls → values` (the set `EVALS_F(I, α, σ)` for a
/// finite `F`). The count is `|values|^|calls|`; callers bound both.
pub fn evals_over(
    calls: &BTreeSet<ServiceCall>,
    values: &BTreeSet<Value>,
) -> Vec<BTreeMap<ServiceCall, Value>> {
    let calls: Vec<&ServiceCall> = calls.iter().collect();
    let values: Vec<Value> = values.iter().copied().collect();
    if calls.is_empty() {
        return vec![BTreeMap::new()];
    }
    if values.is_empty() {
        return Vec::new();
    }
    let mut out = Vec::with_capacity(values.len().pow(calls.len() as u32));
    let mut acc: Vec<Value> = Vec::with_capacity(calls.len());
    fn rec(
        calls: &[&ServiceCall],
        values: &[Value],
        ix: usize,
        acc: &mut Vec<Value>,
        out: &mut Vec<BTreeMap<ServiceCall, Value>>,
    ) {
        if ix == calls.len() {
            out.push(
                calls
                    .iter()
                    .map(|c| (*c).clone())
                    .zip(acc.iter().copied())
                    .collect(),
            );
            return;
        }
        for &v in values {
            acc.push(v);
            rec(calls, values, ix + 1, acc, out);
            acc.pop();
        }
    }
    rec(&calls, &values, 0, &mut acc, &mut out);
    out
}

/// The commitment-representative successors of a nondeterministic state:
/// for every legal `ασ` and every equality commitment of the calls against
/// `ADOM(I) ∪ ADOM(I₀)`, one successor with freshly minted values for the
/// fresh cells. Constraint-violating representatives are dropped.
pub fn nondet_successors_by_commitment(
    dcds: &Dcds,
    inst: &Instance,
    pool: &mut ConstantPool,
) -> Vec<(ActionId, Assignment, Commitment, Instance)> {
    let mut out = Vec::new();
    let rigid = dcds.rigid_constants();
    for (action, sigma) in legal_assignments(dcds, inst) {
        let pre = do_action(dcds, inst, action, &sigma);
        let calls: Vec<ServiceCall> = pre.calls().into_iter().collect();
        let mut known: BTreeSet<Value> = inst.active_domain();
        known.extend(rigid.iter().copied());
        let known: Vec<Value> = known.into_iter().collect();
        for commitment in enumerate_commitments(&calls, &known) {
            let cells = crate::commitment::fresh_cell_count(&commitment);
            let fresh: Vec<Value> = (0..cells).map(|_| pool.mint("v")).collect();
            let theta: BTreeMap<ServiceCall, Value> = commitment
                .iter()
                .map(|(c, t)| {
                    let v = match t {
                        CommitTarget::Known(v) => *v,
                        CommitTarget::Fresh(cell) => fresh[*cell],
                    };
                    (c.clone(), v)
                })
                .collect();
            if let Some(next) = nondet_step(dcds, inst, action, &sigma, &theta) {
                out.push((action, sigma.clone(), commitment, next));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DcdsBuilder;
    use crate::service::ServiceKind;

    /// Example 4.3 with nondeterministic f (as in Example 5.1).
    fn example_5_1() -> Dcds {
        DcdsBuilder::new()
            .relation("R", 1)
            .relation("Q", 1)
            .service("f", 1, ServiceKind::Nondeterministic)
            .init_fact("R", &["a"])
            .action("alpha", &[], |a| {
                a.effect("R(X)", "Q(f(X))");
                a.effect("Q(X)", "R(X)");
            })
            .rule("true", "alpha")
            .build()
            .unwrap()
    }

    /// Example 5.2: α : { R(x) ⇝ R(x), R(x) ⇝ Q(f(x)), Q(x) ⇝ Q(x) }.
    fn example_5_2() -> Dcds {
        DcdsBuilder::new()
            .relation("R", 1)
            .relation("Q", 1)
            .service("f", 1, ServiceKind::Nondeterministic)
            .init_fact("R", &["a"])
            .action("alpha", &[], |a| {
                a.effect("R(X)", "R(X)");
                a.effect("R(X)", "Q(f(X))");
                a.effect("Q(X)", "Q(X)");
            })
            .rule("true", "alpha")
            .build()
            .unwrap()
    }

    #[test]
    fn step_replaces_whole_state() {
        let dcds = example_5_1();
        let alpha = dcds.action_id("alpha").unwrap();
        let a = dcds.data.pool.get("a").unwrap();
        let pre = do_action(&dcds, &dcds.data.initial, alpha, &Assignment::new());
        let theta: BTreeMap<ServiceCall, Value> = pre.calls().into_iter().map(|c| (c, a)).collect();
        let next =
            nondet_step(&dcds, &dcds.data.initial, alpha, &Assignment::new(), &theta).unwrap();
        // {R(a)} → {Q(a)}: R is forgotten (no copy effect for R from R).
        let r = dcds.data.schema.rel_id("R").unwrap();
        let q = dcds.data.schema.rel_id("Q").unwrap();
        assert_eq!(next.cardinality(r), 0);
        assert_eq!(next.cardinality(q), 1);
    }

    #[test]
    fn evals_enumerate_total_functions() {
        let dcds = example_5_1();
        let alpha = dcds.action_id("alpha").unwrap();
        let pre = do_action(&dcds, &dcds.data.initial, alpha, &Assignment::new());
        let calls = pre.calls();
        assert_eq!(calls.len(), 1);
        let a = dcds.data.pool.get("a").unwrap();
        let mut pool = dcds.working_pool();
        let b = pool.mint("v");
        let values: BTreeSet<Value> = [a, b].into_iter().collect();
        assert_eq!(evals_over(&calls, &values).len(), 2);
    }

    #[test]
    fn commitment_successors_of_example_5_1() {
        // One call f(a) against known {a}: Known(a) or Fresh → 2 successors.
        let dcds = example_5_1();
        let mut pool = dcds.working_pool();
        let succs = nondet_successors_by_commitment(&dcds, &dcds.data.initial, &mut pool);
        assert_eq!(succs.len(), 2);
        // Every successor is a single Q-fact: state-bounded with bound 1.
        for (_, _, _, inst) in &succs {
            assert_eq!(inst.len(), 1);
        }
    }

    #[test]
    fn example_5_2_accumulates() {
        // Applying α twice with fresh results grows the state: R(a) →
        // {R(a), Q(v)} → {R(a), Q(v), Q(v')}.
        let dcds = example_5_2();
        let mut pool = dcds.working_pool();
        let succs1 = nondet_successors_by_commitment(&dcds, &dcds.data.initial, &mut pool);
        let grown = succs1
            .iter()
            .map(|(_, _, _, i)| i)
            .find(|i| i.len() == 2)
            .expect("fresh successor has two facts");
        let succs2 = nondet_successors_by_commitment(&dcds, grown, &mut pool);
        assert!(succs2.iter().any(|(_, _, _, i)| i.len() == 3));
    }

    #[test]
    fn empty_value_set_yields_no_evals_when_calls_exist() {
        let dcds = example_5_1();
        let alpha = dcds.action_id("alpha").unwrap();
        let pre = do_action(&dcds, &dcds.data.initial, alpha, &Assignment::new());
        assert!(evals_over(&pre.calls(), &BTreeSet::new()).is_empty());
    }
}
