//! Equality commitments (Appendix C.3).
//!
//! When an action issues service calls, the concrete transition system has
//! one successor per *evaluation* of the calls — infinitely many, since a
//! call may return any constant. An **equality commitment** groups the
//! evaluations by isomorphism type: it decides, for every new call, whether
//! it returns (i) some specific *known* value (a value of `ADOM(I) ∪
//! ADOM(I₀)`, or for the deterministic semantics any value remembered by the
//! service-call map) or (ii) a *fresh* value, and which fresh values
//! coincide with each other. Two evaluations respecting the same commitment
//! produce isomorphic successors, which is the engine of Theorems 4.3 / 5.4.

use crate::term::ServiceCall;
use dcds_reldata::Value;
use std::collections::BTreeMap;

/// Where a call's result lands under a commitment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CommitTarget {
    /// Equal to this known value.
    Known(Value),
    /// A fresh value, distinct from every known value; calls sharing a cell
    /// index return the *same* fresh value, distinct cells distinct values.
    Fresh(usize),
}

/// An equality commitment for a set of new calls.
pub type Commitment = BTreeMap<ServiceCall, CommitTarget>;

/// Enumerate every equality commitment for `calls` against `known` values.
///
/// Fresh cells are produced in *restricted growth* order (cell `k+1` can
/// only appear after cell `k`), so each partition of the fresh calls is
/// produced exactly once and the enumeration is canonical.
///
/// The count grows as `(|known| + ·)^|calls|`; callers bound `|calls|`.
pub fn enumerate_commitments(calls: &[ServiceCall], known: &[Value]) -> Vec<Commitment> {
    let mut out = Vec::new();
    let mut acc: Vec<CommitTarget> = Vec::with_capacity(calls.len());
    rec(calls, known, 0, 0, &mut acc, &mut out);
    out
}

fn rec(
    calls: &[ServiceCall],
    known: &[Value],
    ix: usize,
    next_cell: usize,
    acc: &mut Vec<CommitTarget>,
    out: &mut Vec<Commitment>,
) {
    if ix == calls.len() {
        out.push(
            calls
                .iter()
                .cloned()
                .zip(acc.iter().copied())
                .collect::<Commitment>(),
        );
        return;
    }
    for &v in known {
        acc.push(CommitTarget::Known(v));
        rec(calls, known, ix + 1, next_cell, acc, out);
        acc.pop();
    }
    // Existing fresh cells, plus one new cell (restricted growth).
    for cell in 0..=next_cell {
        acc.push(CommitTarget::Fresh(cell));
        rec(calls, known, ix + 1, next_cell.max(cell + 1), acc, out);
        acc.pop();
    }
}

/// Number of fresh cells used by a commitment.
pub fn fresh_cell_count(c: &Commitment) -> usize {
    c.values()
        .filter_map(|t| match t {
            CommitTarget::Fresh(cell) => Some(*cell),
            CommitTarget::Known(_) => None,
        })
        .max()
        .map_or(0, |m| m + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::FuncId;

    fn call(f: usize, args: &[Value]) -> ServiceCall {
        ServiceCall {
            func: FuncId::from_index(f),
            args: args.to_vec(),
        }
    }

    fn vals(n: usize) -> Vec<Value> {
        (0..n).map(Value::from_index).collect()
    }

    #[test]
    fn single_call_commitments() {
        let known = vals(2);
        let calls = vec![call(0, &known[..1])];
        let cs = enumerate_commitments(&calls, &known);
        // Known(a), Known(b), Fresh(0).
        assert_eq!(cs.len(), 3);
    }

    #[test]
    fn two_calls_count() {
        // 2 calls, 1 known value v:
        // each call ∈ {Known(v), Fresh}; fresh partitioning canonical:
        // (K,K), (K,F0), (F0,K), (F0,F0), (F0,F1) = 5.
        let known = vals(1);
        let calls = vec![call(0, &known), call(1, &known)];
        let cs = enumerate_commitments(&calls, &known);
        assert_eq!(cs.len(), 5);
    }

    #[test]
    fn restricted_growth_is_canonical() {
        // No commitment may use Fresh(1) without Fresh(0).
        let known = vals(1);
        let calls = vec![call(0, &known), call(1, &known)];
        for c in enumerate_commitments(&calls, &known) {
            let cells: Vec<usize> = c
                .values()
                .filter_map(|t| match t {
                    CommitTarget::Fresh(k) => Some(*k),
                    _ => None,
                })
                .collect();
            if cells.contains(&1) {
                assert!(cells.contains(&0));
            }
        }
    }

    #[test]
    fn no_calls_yields_single_empty_commitment() {
        let cs = enumerate_commitments(&[], &vals(3));
        assert_eq!(cs.len(), 1);
        assert!(cs[0].is_empty());
    }

    #[test]
    fn fresh_cell_count_counts_cells() {
        let known = vals(0);
        let calls = vec![call(0, &[]), call(1, &[])];
        let cs = enumerate_commitments(&calls, &known);
        // (F0,F0) and (F0,F1).
        assert_eq!(cs.len(), 2);
        let counts: Vec<usize> = cs.iter().map(fresh_cell_count).collect();
        assert!(counts.contains(&1) && counts.contains(&2));
    }
}
