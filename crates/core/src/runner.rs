//! Interactive execution of a DCDS: step through the concrete transition
//! system one action at a time, with the environment's service answers
//! supplied by the caller, by a pseudo-random driver, or by commitment
//! representatives.
//!
//! This is the "simulator" face of the library — where the model checker
//! answers *whether* something can happen, the runner lets applications and
//! tests *make* it happen (e.g. replaying a scenario, scripting a demo, or
//! fuzzing an implementation against the model).

use crate::action::ActionId;
use crate::dcds::Dcds;
use crate::det::{det_step, DetState};
use crate::do_op::{do_action, legal_assignments};
use crate::nondet::nondet_step;
use crate::term::ServiceCall;
use dcds_folang::Assignment;
use dcds_reldata::{ConstantPool, Instance, Value};
use std::collections::{BTreeMap, BTreeSet};

/// How service calls are answered when the caller does not supply values.
#[derive(Debug, Clone, Copy)]
pub enum AnswerPolicy {
    /// Every unanswered call returns a freshly minted constant.
    AlwaysFresh,
    /// Pseudo-random choice among the current known values plus one fresh
    /// candidate (deterministic in the seed).
    Random {
        /// RNG seed (advanced on every step).
        seed: u64,
    },
}

/// One step's record: what ran and what the services answered.
#[derive(Debug, Clone)]
pub struct StepRecord {
    /// The action executed.
    pub action: ActionId,
    /// The parameter assignment σ.
    pub sigma: Assignment,
    /// The service answers used this step (new calls only, for
    /// deterministic services).
    pub answers: BTreeMap<ServiceCall, Value>,
}

/// A running DCDS instance.
pub struct Runner {
    dcds: Dcds,
    pool: ConstantPool,
    det_state: DetState,
    policy: AnswerPolicy,
    history: Vec<StepRecord>,
}

impl Runner {
    /// Start at `⟨I₀, ∅⟩`.
    pub fn new(dcds: Dcds, policy: AnswerPolicy) -> Self {
        let pool = dcds.working_pool();
        let det_state = DetState::initial(&dcds);
        Runner {
            dcds,
            pool,
            det_state,
            policy,
            history: Vec::new(),
        }
    }

    /// The current database.
    pub fn current(&self) -> &Instance {
        &self.det_state.instance
    }

    /// The service-call map accumulated so far (meaningful for
    /// deterministic services; ignored for nondeterministic ones).
    pub fn call_map(&self) -> &BTreeMap<ServiceCall, Value> {
        &self.det_state.call_map
    }

    /// The system being run.
    pub fn dcds(&self) -> &Dcds {
        &self.dcds
    }

    /// The step log.
    pub fn history(&self) -> &[StepRecord] {
        &self.history
    }

    /// The executable `(action, σ)` pairs in the current state.
    pub fn available(&self) -> Vec<(ActionId, Assignment)> {
        legal_assignments(&self.dcds, &self.det_state.instance)
    }

    /// The calls the given `(action, σ)` would issue that still need an
    /// answer (for deterministic services, calls already in the map are
    /// answered by history).
    pub fn pending_calls(&self, action: ActionId, sigma: &Assignment) -> BTreeSet<ServiceCall> {
        let pre = do_action(&self.dcds, &self.det_state.instance, action, sigma);
        pre.calls()
            .into_iter()
            .filter(|c| {
                !(self.service_is_deterministic(c) && self.det_state.call_map.contains_key(c))
            })
            .collect()
    }

    fn service_is_deterministic(&self, c: &ServiceCall) -> bool {
        self.dcds.process.services.kind(c.func) == crate::service::ServiceKind::Deterministic
    }

    /// Execute `(action, σ)` with explicit answers for the pending calls.
    /// Returns the executed record, or an error message when the assignment
    /// is not legal, an answer is missing, or the successor violates the
    /// constraints.
    pub fn step_with(
        &mut self,
        action: ActionId,
        sigma: &Assignment,
        answers: &BTreeMap<ServiceCall, Value>,
    ) -> Result<&StepRecord, String> {
        if !self
            .available()
            .iter()
            .any(|(a, s)| *a == action && s == sigma)
        {
            return Err("the parameter assignment is not legal in this state".to_owned());
        }
        if self.dcds.is_deterministic() {
            let next = det_step(&self.dcds, &self.det_state, action, sigma, answers)
                .ok_or("step rejected: missing answers or constraint violation")?;
            self.det_state = next;
        } else {
            // Nondeterministic (or mixed treated nondeterministically for
            // the nondet services): every call needs an answer; history is
            // still enforced for deterministic services via det_step when
            // the catalog is fully deterministic. For mixed catalogs we
            // enforce history manually here.
            let pre = do_action(&self.dcds, &self.det_state.instance, action, sigma);
            let mut theta = answers.clone();
            for call in pre.calls() {
                if self.service_is_deterministic(&call) {
                    if let Some(&v) = self.det_state.call_map.get(&call) {
                        if let Some(&w) = theta.get(&call) {
                            if w != v {
                                return Err(format!(
                                    "deterministic call answered {} but history says {}",
                                    self.pool.name(w),
                                    self.pool.name(v)
                                ));
                            }
                        }
                        theta.insert(call, v);
                    }
                }
            }
            let next = nondet_step(&self.dcds, &self.det_state.instance, action, sigma, &theta)
                .ok_or("step rejected: missing answers or constraint violation")?;
            // Record deterministic answers in the map.
            for (call, &v) in &theta {
                if self.service_is_deterministic(call) {
                    self.det_state.call_map.insert(call.clone(), v);
                }
            }
            self.det_state.instance = next;
        }
        self.history.push(StepRecord {
            action,
            sigma: sigma.clone(),
            answers: answers.clone(),
        });
        Ok(self.history.last().unwrap())
    }

    /// Execute `(action, σ)`, answering pending calls per the policy.
    pub fn step(&mut self, action: ActionId, sigma: &Assignment) -> Result<&StepRecord, String> {
        let pending = self.pending_calls(action, sigma);
        let mut answers = BTreeMap::new();
        match self.policy {
            AnswerPolicy::AlwaysFresh => {
                for c in pending {
                    let v = self.pool.mint("env");
                    answers.insert(c, v);
                }
            }
            AnswerPolicy::Random { ref mut seed } => {
                let mut known: Vec<Value> = self.det_state.known_values().into_iter().collect();
                known.push(self.pool.mint("env"));
                for c in pending {
                    *seed ^= *seed << 13;
                    *seed ^= *seed >> 7;
                    *seed ^= *seed << 17;
                    let v = known[(*seed % known.len() as u64) as usize];
                    answers.insert(c, v);
                }
            }
        }
        self.step_with(action, sigma, &answers)
    }

    /// Execute the first available `(action, σ)` (deterministic order), or
    /// report deadlock.
    pub fn step_any(&mut self) -> Result<&StepRecord, String> {
        let (action, sigma) = self
            .available()
            .into_iter()
            .next()
            .ok_or("deadlock: no action is executable")?;
        self.step(action, &sigma)
    }

    /// Run up to `n` steps with `step_any`, stopping early on deadlock or
    /// rejection. Returns the number of steps taken.
    pub fn run(&mut self, n: usize) -> usize {
        for i in 0..n {
            if self.step_any().is_err() {
                return i;
            }
        }
        n
    }

    /// The pool (extended with minted environment values) for display.
    pub fn pool(&self) -> &ConstantPool {
        &self.pool
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DcdsBuilder;
    use crate::service::ServiceKind;

    fn det_system() -> Dcds {
        DcdsBuilder::new()
            .relation("R", 1)
            .relation("Q", 1)
            .service("f", 1, ServiceKind::Deterministic)
            .init_fact("R", &["a"])
            .action("alpha", &[], |a| {
                a.effect("R(X)", "Q(f(X))");
                a.effect("Q(X)", "R(X)");
            })
            .rule("true", "alpha")
            .build()
            .unwrap()
    }

    #[test]
    fn fresh_policy_walks_the_chain() {
        let mut runner = Runner::new(det_system(), AnswerPolicy::AlwaysFresh);
        assert_eq!(runner.available().len(), 1);
        let steps = runner.run(6);
        assert_eq!(steps, 6);
        assert_eq!(runner.history().len(), 6);
        // Deterministic services: the call map grows once per NEW argument —
        // the f-chain calls f on a fresh value every other step.
        assert!(runner.call_map().len() >= 3);
    }

    #[test]
    fn deterministic_history_is_enforced() {
        let dcds = det_system();
        let mut runner = Runner::new(dcds, AnswerPolicy::AlwaysFresh);
        let (action, sigma) = runner.available().into_iter().next().unwrap();
        let pending = runner.pending_calls(action, &sigma);
        assert_eq!(pending.len(), 1);
        runner.step(action, &sigma).unwrap();
        // Step back to R (copy of Q), then the SAME call is issued again:
        runner.step_any().unwrap();
        let (a2, s2) = runner.available().into_iter().next().unwrap();
        // Now the state R holds f(a)'s value; the issued call is f(v) — new.
        let pending2 = runner.pending_calls(a2, &s2);
        assert_eq!(pending2.len(), 1);
        assert!(!pending2.iter().next().unwrap().args.is_empty());
    }

    #[test]
    fn explicit_answers_and_rejection() {
        let dcds = DcdsBuilder::new()
            .relation("P", 2)
            .service("inp", 0, ServiceKind::Nondeterministic)
            .init_fact("P", &["a", "b"])
            .constraint("P(X, Y) & P(X, Z) -> Y = Z")
            .action("alpha", &[], |a| {
                a.effect("P(X, Y)", "P(X, Y), P(X, inp())");
            })
            .rule("true", "alpha")
            .build()
            .unwrap();
        let mut runner = Runner::new(dcds, AnswerPolicy::AlwaysFresh);
        let (action, sigma) = runner.available().into_iter().next().unwrap();
        let call = runner
            .pending_calls(action, &sigma)
            .into_iter()
            .next()
            .unwrap();
        // Answering with b keeps the key satisfied.
        let b = runner.dcds().data.pool.get("b").unwrap();
        let ok: BTreeMap<_, _> = [(call.clone(), b)].into_iter().collect();
        runner.step_with(action, &sigma, &ok).unwrap();
        // Answering with a fresh value violates P's key: rejected.
        let (a2, s2) = runner.available().into_iter().next().unwrap();
        let call2 = runner.pending_calls(a2, &s2).into_iter().next().unwrap();
        let mut pool = runner.pool().clone();
        let fresh = pool.mint("v");
        let bad: BTreeMap<_, _> = [(call2, fresh)].into_iter().collect();
        assert!(runner.step_with(a2, &s2, &bad).is_err());
    }

    #[test]
    fn random_policy_is_reproducible() {
        let run = |seed| {
            let mut runner = Runner::new(det_system(), AnswerPolicy::Random { seed });
            runner.run(8);
            runner.call_map().len()
        };
        assert_eq!(run(5), run(5));
    }

    #[test]
    fn illegal_assignment_rejected() {
        let mut runner = Runner::new(det_system(), AnswerPolicy::AlwaysFresh);
        let mut sigma = Assignment::new();
        sigma.insert(dcds_folang::Var::new("X"), Value::from_index(0));
        let alpha = runner.dcds().action_id("alpha").unwrap();
        assert!(runner.step_with(alpha, &sigma, &BTreeMap::new()).is_err());
    }
}
