//! Rendering a DCDS back to the textual specification format of
//! [`crate::parser`]. The output re-parses to a system with the same
//! semantics (schema, services, initial instance, constraints, actions and
//! rules), enabling storage, diffing, and golden-file workflows.

use crate::action::Effect;
use crate::dcds::Dcds;
use crate::term::{BaseTerm, ETerm};
use dcds_folang::pretty::FormulaDisplay;
use dcds_folang::Formula;
use dcds_reldata::Value;
use std::fmt;

/// Wraps a [`Dcds`] for display in the specification syntax.
pub struct DcdsDisplay<'a> {
    dcds: &'a Dcds,
}

impl<'a> DcdsDisplay<'a> {
    /// Wrap a system for display.
    pub fn new(dcds: &'a Dcds) -> Self {
        Self { dcds }
    }

    fn constant(&self, v: Value) -> String {
        let name = self.dcds.data.pool.name(v);
        let simple = name
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_lowercase() || c.is_ascii_digit())
            && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_');
        if simple {
            name.to_owned()
        } else {
            format!("'{name}'")
        }
    }

    fn base_term(&self, t: &BaseTerm) -> String {
        match t {
            BaseTerm::Var(v) => v.name().to_owned(),
            BaseTerm::Const(c) => self.constant(*c),
        }
    }

    fn eterm(&self, t: &ETerm) -> String {
        match t {
            ETerm::Base(b) => self.base_term(b),
            ETerm::Call(f, args) => {
                let args: Vec<String> = args.iter().map(|a| self.base_term(a)).collect();
                format!(
                    "{}({})",
                    self.dcds.process.services.name(*f),
                    args.join(", ")
                )
            }
        }
    }

    /// The effect body as a formula: `q⁺ ∧ Q⁻` re-assembled. (UCQ bodies
    /// with several disjuncts cannot be expressed as one spec effect; they
    /// are emitted as one effect per disjunct, which has identical
    /// semantics because effect results are unioned.)
    fn effect_lines(&self, e: &Effect, out: &mut fmt::Formatter<'_>) -> fmt::Result {
        let schema = &self.dcds.data.schema;
        let pool = &self.dcds.data.pool;
        let heads: Vec<String> = e
            .head
            .iter()
            .map(|(rel, terms)| {
                let terms: Vec<String> = terms.iter().map(|t| self.eterm(t)).collect();
                if terms.is_empty() {
                    format!("{}()", schema.name(*rel))
                } else {
                    format!("{}({})", schema.name(*rel), terms.join(", "))
                }
            })
            .collect();
        for cq in &e.qplus.disjuncts {
            let mut conjuncts: Vec<Formula> = cq
                .atoms
                .iter()
                .map(|(rel, terms)| Formula::Atom(*rel, terms.clone()))
                .collect();
            conjuncts.extend(
                cq.equalities
                    .iter()
                    .map(|(a, b)| Formula::Eq(a.clone(), b.clone())),
            );
            if e.qminus != Formula::True {
                conjuncts.push(e.qminus.clone());
            }
            let body = Formula::conj(conjuncts);
            writeln!(
                out,
                "    {} ~> {};",
                FormulaDisplay::new(&body, schema, pool),
                heads.join(", ")
            )?;
        }
        Ok(())
    }
}

impl fmt::Display for DcdsDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let dcds = self.dcds;
        let schema = &dcds.data.schema;
        let pool = &dcds.data.pool;
        writeln!(f, "schema {{")?;
        for (_, rs) in schema.iter() {
            // Skip nothing: every relation is declared.
            writeln!(f, "    {} {};", rs.name(), rs.arity())?;
        }
        writeln!(f, "}}")?;
        if !dcds.process.services.is_empty() {
            writeln!(f, "services {{")?;
            for (_, decl) in dcds.process.services.iter() {
                let kind = match decl.kind() {
                    crate::service::ServiceKind::Deterministic => "det",
                    crate::service::ServiceKind::Nondeterministic => "nondet",
                };
                writeln!(f, "    {} {} {kind};", decl.name(), decl.arity())?;
            }
            writeln!(f, "}}")?;
        }
        writeln!(f, "init {{")?;
        for (rel, t) in dcds.data.initial.facts() {
            let args: Vec<String> = t.iter().map(|v| self.constant(v)).collect();
            if args.is_empty() {
                writeln!(f, "    {}();", schema.name(rel))?;
            } else {
                writeln!(f, "    {}({});", schema.name(rel), args.join(", "))?;
            }
        }
        writeln!(f, "}}")?;
        for ec in &dcds.data.constraints {
            let eqs = Formula::conj(
                ec.equalities
                    .iter()
                    .map(|(a, b)| Formula::Eq(a.clone(), b.clone())),
            );
            writeln!(
                f,
                "constraint {} -> {};",
                FormulaDisplay::new(&ec.query, schema, pool),
                FormulaDisplay::new(&eqs, schema, pool)
            )?;
        }
        for ic in &dcds.data.fo_constraints {
            writeln!(
                f,
                "assert {};",
                FormulaDisplay::new(&ic.sentence, schema, pool)
            )?;
        }
        for action in &dcds.process.actions {
            let params: Vec<&str> = action.params.iter().map(|p| p.name()).collect();
            writeln!(f, "action {}({}) {{", action.name, params.join(", "))?;
            for e in &action.effects {
                self.effect_lines(e, f)?;
            }
            writeln!(f, "}}")?;
        }
        for rule in &dcds.process.rules {
            writeln!(
                f,
                "rule {} => {};",
                FormulaDisplay::new(&rule.condition, schema, pool),
                dcds.process.actions[rule.action.index()].name
            )?;
        }
        Ok(())
    }
}

/// Render a DCDS to the spec syntax.
pub fn to_spec(dcds: &Dcds) -> String {
    DcdsDisplay::new(dcds).to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DcdsBuilder;
    use crate::parser::parse_dcds;
    use crate::service::ServiceKind;

    fn sample() -> Dcds {
        DcdsBuilder::new()
            .relation("Tru", 0)
            .relation("P", 1)
            .relation("Q", 2)
            .service("f", 1, ServiceKind::Deterministic)
            .service("inp", 0, ServiceKind::Nondeterministic)
            .init_fact("Tru", &[])
            .init_fact("P", &["a"])
            .init_fact("Q", &["a", "a"])
            .constraint("P(X) & Q(Y, Z) -> X = Y")
            .fo_constraint("forall X . P(X) -> P(X)")
            .action("alpha", &["V"], |a| {
                a.effect("P(X) & !Q(X, X)", "P(X), Q(f(X), inp()), Q(V, a)");
                a.effect("Tru()", "Tru()");
            })
            .rule("P(V)", "alpha")
            .build()
            .unwrap()
    }

    #[test]
    fn spec_round_trips() {
        let d1 = sample();
        let spec = to_spec(&d1);
        let d2 = parse_dcds(&spec).unwrap_or_else(|e| panic!("reparse failed: {e}\n{spec}"));
        // Semantic equality: same schema names/arities, same services,
        // same number of actions/effects/rules, same initial instance size,
        // same constraints count.
        assert_eq!(d1.data.schema.len(), d2.data.schema.len());
        for (id, rs) in d1.data.schema.iter() {
            let other = d2.data.schema.rel_id(rs.name()).expect("relation kept");
            assert_eq!(d2.data.schema.arity(other), rs.arity());
            let _ = id;
        }
        assert_eq!(d1.process.services.len(), d2.process.services.len());
        assert_eq!(d1.process.actions.len(), d2.process.actions.len());
        assert_eq!(d1.process.rules.len(), d2.process.rules.len());
        assert_eq!(d1.data.initial.len(), d2.data.initial.len());
        assert_eq!(d1.data.constraints.len(), d2.data.constraints.len());
        assert_eq!(d1.data.fo_constraints.len(), d2.data.fo_constraints.len());
    }

    #[test]
    fn round_trip_preserves_behaviour() {
        // The stronger check: the reparsed system's abstraction is
        // bisimilar to the original's.
        let d1 = sample();
        let d2 = parse_dcds(&to_spec(&d1)).unwrap();
        let e1 = crate::explore::explore_det(
            &d1,
            crate::explore::Limits {
                max_states: 100,
                max_depth: 2,
            },
            &mut crate::explore::CommitmentOracle,
        );
        let e2 = crate::explore::explore_det(
            &d2,
            crate::explore::Limits {
                max_states: 100,
                max_depth: 2,
            },
            &mut crate::explore::CommitmentOracle,
        );
        assert_eq!(e1.ts.num_states(), e2.ts.num_states());
        assert_eq!(e1.ts.num_edges(), e2.ts.num_edges());
    }

    #[test]
    fn quoted_constants_survive() {
        let d1 = DcdsBuilder::new()
            .relation("Status", 1)
            .init_fact("Status", &["ready For Request"])
            .action("go", &[], |a| {
                a.effect("Status(X)", "Status('ready For Request')");
            })
            .rule("true", "go")
            .build()
            .unwrap();
        let spec = to_spec(&d1);
        assert!(spec.contains("'ready For Request'"));
        assert!(parse_dcds(&spec).is_ok());
    }
}
