//! Textual DCDS specification format.
//!
//! ```text
//! schema   { P 1; Q 2; }
//! services { f 1 det; in_name 0 nondet; }
//! init     { P(a); Q(a, a); }
//! constraint P(X) & Q(Y, Z) -> X = Y;          // equality constraint
//! assert forall X . P(X) -> P(X);              // FO integrity constraint
//! action alpha(X) {
//!     Q(a, a) & P(X) ~> R(X);
//!     P(Y) & !R(Y)   ~> P(Y), Q(f(Y), g(Y));   // heads may call services
//! }
//! rule P(X) => alpha;                          // free vars of the guard
//! ```                                          // are alpha's parameters
//!
//! Effect bodies are formulas whose top-level positive atoms form `q⁺` and
//! whose remaining conjuncts form the filter `Q⁻` (disjunction at the top
//! level is rejected — write one effect per disjunct, which is the UCQ
//! reading the paper gives).

use crate::action::{Action, ActionId, Effect};
use crate::data_layer::DataLayer;
use crate::dcds::Dcds;
use crate::process::{CaRule, ProcessLayer};
use crate::service::{ServiceCatalog, ServiceKind};
use crate::term::{BaseTerm, ETerm};
use dcds_folang::lexer::TokenKind;
use dcds_folang::parser::{is_variable_name, ParseError, Parser, Resolver};
use dcds_folang::{ConjunctiveQuery, EqualityConstraint, FoConstraint, Formula, QTerm, Ucq, Var};
use dcds_reldata::{ConstantPool, Instance, Schema, Tuple};
use std::collections::BTreeSet;

/// Parse a complete DCDS specification.
pub fn parse_dcds(src: &str) -> Result<Dcds, String> {
    let mut p = Parser::new(src).map_err(|e| e.to_string())?;
    let mut pool = ConstantPool::new();
    let mut schema = Schema::new();
    let mut services = ServiceCatalog::new();
    let mut initial = Instance::new();
    let mut constraints = Vec::new();
    let mut fo_constraints = Vec::new();
    let mut actions: Vec<Action> = Vec::new();
    let mut rules_raw: Vec<(Formula, String)> = Vec::new();

    while !p.at_eof() {
        if p.eat_keyword("schema") {
            parse_schema_block(&mut p, &mut schema).map_err(|e| e.to_string())?;
        } else if p.eat_keyword("services") {
            parse_services_block(&mut p, &mut services).map_err(|e| e.to_string())?;
        } else if p.eat_keyword("init") {
            parse_init_block(&mut p, &mut schema, &mut pool, &mut initial)
                .map_err(|e| e.to_string())?;
        } else if p.eat_keyword("constraint") {
            let mut r = Resolver {
                schema: &mut schema,
                pool: &mut pool,
                extend_schema: false,
            };
            let f = p.parse_formula(&mut r).map_err(|e| e.to_string())?;
            p.expect(&TokenKind::Semicolon).map_err(|e| e.to_string())?;
            constraints.push(decompose_equality_constraint(f)?);
        } else if p.eat_keyword("assert") {
            let mut r = Resolver {
                schema: &mut schema,
                pool: &mut pool,
                extend_schema: false,
            };
            let f = p.parse_formula(&mut r).map_err(|e| e.to_string())?;
            p.expect(&TokenKind::Semicolon).map_err(|e| e.to_string())?;
            fo_constraints.push(FoConstraint::new(f).map_err(|e| e.to_string())?);
        } else if p.eat_keyword("action") {
            let action =
                parse_action(&mut p, &mut schema, &mut pool, &services).map_err(|e| e.to_string())?;
            actions.push(action);
        } else if p.eat_keyword("rule") {
            let mut r = Resolver {
                schema: &mut schema,
                pool: &mut pool,
                extend_schema: false,
            };
            let cond = p.parse_formula(&mut r).map_err(|e| e.to_string())?;
            p.expect(&TokenKind::FatArrow).map_err(|e| e.to_string())?;
            let name = p.expect_ident().map_err(|e| e.to_string())?;
            p.expect(&TokenKind::Semicolon).map_err(|e| e.to_string())?;
            rules_raw.push((cond, name));
        } else {
            return Err(p
                .error(&format!("expected a top-level item, found {}", p.peek_kind()))
                .to_string());
        }
    }

    let mut rules = Vec::new();
    for (cond, name) in rules_raw {
        let id = actions
            .iter()
            .position(|a| a.name == name)
            .map(ActionId::from_index)
            .ok_or_else(|| format!("rule references unknown action {name}"))?;
        rules.push(CaRule {
            condition: cond,
            action: id,
        });
    }

    let mut data = DataLayer::new(pool, schema, initial);
    data.constraints = constraints;
    data.fo_constraints = fo_constraints;
    let process = ProcessLayer {
        services,
        actions,
        rules,
    };
    Dcds::new(data, process).map_err(|e| e.to_string())
}

fn parse_schema_block(p: &mut Parser, schema: &mut Schema) -> Result<(), ParseError> {
    p.expect(&TokenKind::LBrace)?;
    while !p.eat(&TokenKind::RBrace) {
        let name = p.expect_ident()?;
        let arity = parse_arity(p)?;
        schema
            .add_relation(&name, arity)
            .map_err(|e| p.error(&e.to_string()))?;
        p.expect(&TokenKind::Semicolon)?;
    }
    Ok(())
}

fn parse_services_block(p: &mut Parser, services: &mut ServiceCatalog) -> Result<(), ParseError> {
    p.expect(&TokenKind::LBrace)?;
    while !p.eat(&TokenKind::RBrace) {
        let name = p.expect_ident()?;
        let arity = parse_arity(p)?;
        let kind = if p.eat_keyword("det") {
            ServiceKind::Deterministic
        } else if p.eat_keyword("nondet") {
            ServiceKind::Nondeterministic
        } else {
            return Err(p.error("expected `det` or `nondet`"));
        };
        services
            .add(&name, arity, kind)
            .map_err(|e| p.error(&e))?;
        p.expect(&TokenKind::Semicolon)?;
    }
    Ok(())
}

fn parse_arity(p: &mut Parser) -> Result<usize, ParseError> {
    // Arity is written `P 2` (digits lex as identifiers).
    let tok = p.expect_ident()?;
    tok.parse::<usize>()
        .map_err(|_| p.error(&format!("expected arity (a number), found `{tok}`")))
}

fn parse_init_block(
    p: &mut Parser,
    schema: &mut Schema,
    pool: &mut ConstantPool,
    initial: &mut Instance,
) -> Result<(), ParseError> {
    p.expect(&TokenKind::LBrace)?;
    while !p.eat(&TokenKind::RBrace) {
        let name = p.expect_ident()?;
        let rel = schema
            .rel_id(&name)
            .ok_or_else(|| p.error(&format!("unknown relation {name}")))?;
        let mut vals = Vec::new();
        if p.eat(&TokenKind::LParen)
            && !p.eat(&TokenKind::RParen) {
                loop {
                    match p.peek_kind().clone() {
                        TokenKind::Ident(s) if !is_variable_name(&s) => {
                            p.advance();
                            vals.push(pool.intern(&s));
                        }
                        TokenKind::Quoted(s) => {
                            p.advance();
                            vals.push(pool.intern(&s));
                        }
                        other => {
                            return Err(
                                p.error(&format!("expected constant in init fact, found {other}"))
                            )
                        }
                    }
                    if !p.eat(&TokenKind::Comma) {
                        break;
                    }
                }
                p.expect(&TokenKind::RParen)?;
            }
        if vals.len() != schema.arity(rel) {
            return Err(p.error(&format!(
                "init fact over {name} has {} constants, arity is {}",
                vals.len(),
                schema.arity(rel)
            )));
        }
        initial.insert(rel, Tuple::from(vals));
        p.expect(&TokenKind::Semicolon)?;
    }
    Ok(())
}

fn parse_action(
    p: &mut Parser,
    schema: &mut Schema,
    pool: &mut ConstantPool,
    services: &ServiceCatalog,
) -> Result<Action, ParseError> {
    let name = p.expect_ident()?;
    let mut params = Vec::new();
    p.expect(&TokenKind::LParen)?;
    if !p.eat(&TokenKind::RParen) {
        params = p.parse_var_list()?;
        p.expect(&TokenKind::RParen)?;
    }
    p.expect(&TokenKind::LBrace)?;
    let mut effects = Vec::new();
    while !p.eat(&TokenKind::RBrace) {
        let mut r = Resolver {
            schema,
            pool,
            extend_schema: false,
        };
        let body = p.parse_formula(&mut r)?;
        p.expect(&TokenKind::Squiggle)?;
        let mut head = Vec::new();
        loop {
            head.push(parse_head_fact(p, schema, pool, services)?);
            if !p.eat(&TokenKind::Comma) {
                break;
            }
        }
        p.expect(&TokenKind::Semicolon)?;
        let effect =
            effect_from_body(body, head, &params).map_err(|m| p.error(&m))?;
        effects.push(effect);
    }
    Ok(Action::new(&name, params, effects))
}

/// Parse one head fact `R(term, ...)` where terms may be service calls.
fn parse_head_fact(
    p: &mut Parser,
    schema: &Schema,
    pool: &mut ConstantPool,
    services: &ServiceCatalog,
) -> Result<(dcds_reldata::RelId, Vec<ETerm>), ParseError> {
    let name = p.expect_ident()?;
    let rel = schema
        .rel_id(&name)
        .ok_or_else(|| p.error(&format!("unknown relation {name} in effect head")))?;
    let mut terms = Vec::new();
    if p.eat(&TokenKind::LParen)
        && !p.eat(&TokenKind::RParen) {
            loop {
                terms.push(parse_eterm(p, pool, services)?);
                if !p.eat(&TokenKind::Comma) {
                    break;
                }
            }
            p.expect(&TokenKind::RParen)?;
        }
    if terms.len() != schema.arity(rel) {
        return Err(p.error(&format!(
            "head fact over {name} has {} terms, arity is {}",
            terms.len(),
            schema.arity(rel)
        )));
    }
    Ok((rel, terms))
}

fn parse_eterm(
    p: &mut Parser,
    pool: &mut ConstantPool,
    services: &ServiceCatalog,
) -> Result<ETerm, ParseError> {
    match p.peek_kind().clone() {
        TokenKind::Ident(name) => {
            if matches!(p.peek_ahead(1), TokenKind::LParen) {
                // Service call.
                p.advance();
                let fid = services
                    .func_id(&name)
                    .ok_or_else(|| p.error(&format!("unknown service {name}")))?;
                p.expect(&TokenKind::LParen)?;
                let mut args = Vec::new();
                if !p.eat(&TokenKind::RParen) {
                    loop {
                        args.push(parse_base_term(p, pool)?);
                        if !p.eat(&TokenKind::Comma) {
                            break;
                        }
                    }
                    p.expect(&TokenKind::RParen)?;
                }
                if args.len() != services.arity(fid) {
                    return Err(p.error(&format!(
                        "service {name} has arity {}, call has {} arguments",
                        services.arity(fid),
                        args.len()
                    )));
                }
                Ok(ETerm::Call(fid, args))
            } else {
                p.advance();
                if is_variable_name(&name) {
                    Ok(ETerm::var(&name))
                } else {
                    Ok(ETerm::constant(pool.intern(&name)))
                }
            }
        }
        TokenKind::Quoted(name) => {
            p.advance();
            Ok(ETerm::constant(pool.intern(&name)))
        }
        other => Err(p.error(&format!("expected head term, found {other}"))),
    }
}

fn parse_base_term(p: &mut Parser, pool: &mut ConstantPool) -> Result<BaseTerm, ParseError> {
    match p.peek_kind().clone() {
        TokenKind::Ident(name) => {
            p.advance();
            if is_variable_name(&name) {
                Ok(BaseTerm::var(&name))
            } else {
                Ok(BaseTerm::Const(pool.intern(&name)))
            }
        }
        TokenKind::Quoted(name) => {
            p.advance();
            Ok(BaseTerm::Const(pool.intern(&name)))
        }
        other => Err(p.error(&format!("expected variable or constant, found {other}"))),
    }
}

/// Decompose `premise -> eq & ... & eq` into an [`EqualityConstraint`].
pub fn decompose_equality_constraint(f: Formula) -> Result<EqualityConstraint, String> {
    let Formula::Implies(premise, rhs) = f else {
        return Err(
            "equality constraints must have the form `premise -> z1 = y1 & ...`".to_owned(),
        );
    };
    let mut eqs = Vec::new();
    collect_equalities(*rhs, &mut eqs)?;
    EqualityConstraint::new(*premise, eqs).map_err(|e| e.to_string())
}

fn collect_equalities(f: Formula, out: &mut Vec<(QTerm, QTerm)>) -> Result<(), String> {
    match f {
        Formula::And(g, h) => {
            collect_equalities(*g, out)?;
            collect_equalities(*h, out)
        }
        Formula::Eq(t1, t2) => {
            out.push((t1, t2));
            Ok(())
        }
        _ => Err("the conclusion of an equality constraint must be a conjunction of equalities"
            .to_owned()),
    }
}

/// Split an effect body into `q⁺` (positive conjunct atoms and equalities)
/// and `Q⁻` (everything else), per the module-level convention.
pub fn effect_from_body(
    body: Formula,
    head: Vec<(dcds_reldata::RelId, Vec<ETerm>)>,
    params: &[Var],
) -> Result<Effect, String> {
    let mut atoms = Vec::new();
    let mut equalities = Vec::new();
    let mut filters = Vec::new();
    split_conjuncts(body, &mut atoms, &mut equalities, &mut filters)?;
    let mut head_vars: BTreeSet<Var> = BTreeSet::new();
    for (_, terms) in &atoms {
        for t in terms {
            if let QTerm::Var(v) = t {
                head_vars.insert(v.clone());
            }
        }
    }
    // Equalities whose vars are covered stay in q+; others are filters.
    let mut cq_equalities = Vec::new();
    for (t1, t2) in equalities {
        let covered = [&t1, &t2].iter().all(|t| match t {
            QTerm::Var(v) => head_vars.contains(v) || params.contains(v),
            QTerm::Const(_) => true,
        });
        if covered {
            cq_equalities.push((t1, t2));
        } else {
            filters.push(Formula::Eq(t1, t2));
        }
    }
    let qminus = Formula::conj(filters);
    // Q-'s free variables must be covered by q+ vars and parameters.
    for v in qminus.free_vars() {
        if !head_vars.contains(&v) && !params.contains(&v) {
            return Err(format!(
                "effect filter uses variable {} which no positive atom binds",
                v.name()
            ));
        }
    }
    let head_list: Vec<Var> = head_vars.into_iter().collect();
    let qplus = if atoms.is_empty() && cq_equalities.is_empty() {
        Ucq::truth()
    } else {
        Ucq::single(ConjunctiveQuery {
            head: head_list,
            atoms,
            equalities: cq_equalities,
        })
    };
    Ok(Effect {
        qplus,
        qminus,
        head,
    })
}

fn split_conjuncts(
    f: Formula,
    atoms: &mut Vec<(dcds_reldata::RelId, Vec<QTerm>)>,
    equalities: &mut Vec<(QTerm, QTerm)>,
    filters: &mut Vec<Formula>,
) -> Result<(), String> {
    match f {
        Formula::And(g, h) => {
            split_conjuncts(*g, atoms, equalities, filters)?;
            split_conjuncts(*h, atoms, equalities, filters)?;
            Ok(())
        }
        Formula::Atom(rel, terms) => {
            atoms.push((rel, terms));
            Ok(())
        }
        Formula::Eq(t1, t2) => {
            equalities.push((t1, t2));
            Ok(())
        }
        Formula::True => Ok(()),
        Formula::Or(_, _) => Err(
            "effect bodies must be conjunctive at the top level; write one effect per disjunct"
                .to_owned(),
        ),
        other => {
            filters.push(other);
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EXAMPLE_4_1: &str = r"
        schema   { Q 2; P 1; R 1; }
        services { f 1 det; g 1 det; }
        init     { P(a); Q(a, a); }
        action alpha() {
            Q(a, a) & P(X) ~> R(X);
            P(X)           ~> P(X), Q(f(X), g(X));
        }
        rule true => alpha;
    ";

    #[test]
    fn parses_example_4_1() {
        let dcds = parse_dcds(EXAMPLE_4_1).unwrap();
        assert_eq!(dcds.data.schema.len(), 3);
        assert_eq!(dcds.process.services.len(), 2);
        assert_eq!(dcds.process.actions.len(), 1);
        assert_eq!(dcds.process.rules.len(), 1);
        assert_eq!(dcds.data.initial.len(), 2);
        assert!(dcds.is_deterministic());
        let alpha = &dcds.process.actions[0];
        assert_eq!(alpha.effects.len(), 2);
        assert_eq!(alpha.effects[1].called_functions().len(), 2);
    }

    #[test]
    fn parses_constraints() {
        let src = r"
            schema { P 1; Q 2; }
            init   { P(a); Q(a, a); }
            constraint P(X) & Q(Y, Z) -> X = Y;
            action alpha() { P(X) ~> P(X); }
            rule true => alpha;
        ";
        let dcds = parse_dcds(src).unwrap();
        assert_eq!(dcds.data.constraints.len(), 1);
    }

    #[test]
    fn initial_violation_is_rejected() {
        let src = r"
            schema { P 1; Q 2; }
            init   { P(a); Q(b, a); }
            constraint P(X) & Q(Y, Z) -> X = Y;
            action alpha() { P(X) ~> P(X); }
            rule true => alpha;
        ";
        assert!(parse_dcds(src).is_err());
    }

    #[test]
    fn filter_conjuncts_become_qminus() {
        let src = r"
            schema { P 1; R 1; }
            init   { P(a); }
            action alpha() { P(X) & !R(X) ~> R(X); }
            rule true => alpha;
        ";
        let dcds = parse_dcds(src).unwrap();
        let e = &dcds.process.actions[0].effects[0];
        assert_eq!(e.qplus.disjuncts[0].atoms.len(), 1);
        assert_ne!(e.qminus, Formula::True);
    }

    #[test]
    fn top_level_disjunction_rejected() {
        let src = r"
            schema { P 1; R 1; }
            init   { P(a); }
            action alpha() { P(X) | R(X) ~> R(X); }
            rule true => alpha;
        ";
        assert!(parse_dcds(src).is_err());
    }

    #[test]
    fn unknown_action_in_rule_rejected() {
        let src = r"
            schema { P 1; }
            init   { P(a); }
            action alpha() { P(X) ~> P(X); }
            rule true => beta;
        ";
        assert!(parse_dcds(src).is_err());
    }

    #[test]
    fn rule_with_parameters() {
        let src = r"
            schema { P 1; R 1; }
            init   { P(a); }
            action alpha(X) { true ~> R(X); }
            rule P(X) => alpha;
        ";
        let dcds = parse_dcds(src).unwrap();
        assert_eq!(dcds.process.actions[0].params.len(), 1);
    }

    #[test]
    fn rule_param_mismatch_rejected() {
        let src = r"
            schema { P 1; R 1; }
            init   { P(a); }
            action alpha(X, Y) { true ~> R(X); }
            rule P(X) => alpha;
        ";
        assert!(parse_dcds(src).is_err());
    }

    #[test]
    fn quoted_constants_in_init_and_heads() {
        // 'ready To Verify' occurs only in an effect head. The paper assumes
        // w.l.o.g. that such constants appear in I0; we apply the w.l.o.g.
        // automatically by making them rigid (see `Dcds::rigid_constants`).
        let src = r"
            schema { Status 1; }
            init   { Status('ready For Request'); }
            action go() { Status(X) ~> Status('ready To Verify'); }
            rule true => go;
        ";
        let dcds = parse_dcds(src).unwrap();
        let v = dcds.data.pool.get("ready To Verify").unwrap();
        assert!(dcds.rigid_constants().contains(&v));
    }
}
