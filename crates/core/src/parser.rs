//! Textual DCDS specification format.
//!
//! ```text
//! schema   { P 1; Q 2; }
//! services { f 1 det; in_name 0 nondet; }
//! init     { P(a); Q(a, a); }
//! constraint P(X) & Q(Y, Z) -> X = Y;          // equality constraint
//! assert forall X . P(X) -> P(X);              // FO integrity constraint
//! action alpha(X) {
//!     Q(a, a) & P(X) ~> R(X);
//!     P(Y) & !R(Y)   ~> P(Y), Q(f(Y), g(Y));   // heads may call services
//! }
//! rule P(X) => alpha;                          // free vars of the guard
//! ```                                          // are alpha's parameters
//!
//! Effect bodies are formulas whose top-level positive atoms form `q⁺` and
//! whose remaining conjuncts form the filter `Q⁻` (disjunction at the top
//! level is rejected — write one effect per disjunct, which is the UCQ
//! reading the paper gives).

use crate::action::Effect;
use crate::dcds::Dcds;
use crate::term::ETerm;
use dcds_folang::{ConjunctiveQuery, EqualityConstraint, Formula, QTerm, Ucq, Var};
use std::collections::BTreeSet;

/// Parse a complete DCDS specification.
///
/// This is the strict entry point: the first semantic defect aborts with a
/// `line:col: message` string. For structured errors keep the
/// [`crate::spec::SpecError`]: `parse_spec(src)?.lower()`; for tolerant
/// parsing with per-construct diagnostics see the `dcds-lint` crate.
pub fn parse_dcds(src: &str) -> Result<Dcds, String> {
    let spec = crate::spec::parse_spec(src)
        .map_err(crate::spec::SpecError::from)
        .map_err(|e| e.to_string())?;
    spec.lower().map_err(|e| e.to_string())
}

/// Decompose `premise -> eq & ... & eq` into an [`EqualityConstraint`].
pub fn decompose_equality_constraint(f: Formula) -> Result<EqualityConstraint, String> {
    let Formula::Implies(premise, rhs) = f else {
        return Err(
            "equality constraints must have the form `premise -> z1 = y1 & ...`".to_owned(),
        );
    };
    let mut eqs = Vec::new();
    collect_equalities(*rhs, &mut eqs)?;
    EqualityConstraint::new(*premise, eqs).map_err(|e| e.to_string())
}

fn collect_equalities(f: Formula, out: &mut Vec<(QTerm, QTerm)>) -> Result<(), String> {
    match f {
        Formula::And(g, h) => {
            collect_equalities(*g, out)?;
            collect_equalities(*h, out)
        }
        Formula::Eq(t1, t2) => {
            out.push((t1, t2));
            Ok(())
        }
        _ => Err(
            "the conclusion of an equality constraint must be a conjunction of equalities"
                .to_owned(),
        ),
    }
}

/// Split an effect body into `q⁺` (positive conjunct atoms and equalities)
/// and `Q⁻` (everything else), per the module-level convention.
pub fn effect_from_body(
    body: Formula,
    head: Vec<(dcds_reldata::RelId, Vec<ETerm>)>,
    params: &[Var],
) -> Result<Effect, String> {
    let mut atoms = Vec::new();
    let mut equalities = Vec::new();
    let mut filters = Vec::new();
    split_conjuncts(body, &mut atoms, &mut equalities, &mut filters)?;
    let mut head_vars: BTreeSet<Var> = BTreeSet::new();
    for (_, terms) in &atoms {
        for t in terms {
            if let QTerm::Var(v) = t {
                head_vars.insert(v.clone());
            }
        }
    }
    // Equalities whose vars are covered stay in q+; others are filters.
    let mut cq_equalities = Vec::new();
    for (t1, t2) in equalities {
        let covered = [&t1, &t2].iter().all(|t| match t {
            QTerm::Var(v) => head_vars.contains(v) || params.contains(v),
            QTerm::Const(_) => true,
        });
        if covered {
            cq_equalities.push((t1, t2));
        } else {
            filters.push(Formula::Eq(t1, t2));
        }
    }
    let qminus = Formula::conj(filters);
    // Q-'s free variables must be covered by q+ vars and parameters.
    for v in qminus.free_vars() {
        if !head_vars.contains(&v) && !params.contains(&v) {
            return Err(format!(
                "effect filter uses variable {} which no positive atom binds",
                v.name()
            ));
        }
    }
    let head_list: Vec<Var> = head_vars.into_iter().collect();
    let qplus = if atoms.is_empty() && cq_equalities.is_empty() {
        Ucq::truth()
    } else {
        Ucq::single(ConjunctiveQuery {
            head: head_list,
            atoms,
            equalities: cq_equalities,
        })
    };
    Ok(Effect {
        qplus,
        qminus,
        head,
    })
}

fn split_conjuncts(
    f: Formula,
    atoms: &mut Vec<(dcds_reldata::RelId, Vec<QTerm>)>,
    equalities: &mut Vec<(QTerm, QTerm)>,
    filters: &mut Vec<Formula>,
) -> Result<(), String> {
    match f {
        Formula::And(g, h) => {
            split_conjuncts(*g, atoms, equalities, filters)?;
            split_conjuncts(*h, atoms, equalities, filters)?;
            Ok(())
        }
        Formula::Atom(rel, terms) => {
            atoms.push((rel, terms));
            Ok(())
        }
        Formula::Eq(t1, t2) => {
            equalities.push((t1, t2));
            Ok(())
        }
        Formula::True => Ok(()),
        Formula::Or(_, _) => Err(
            "effect bodies must be conjunctive at the top level; write one effect per disjunct"
                .to_owned(),
        ),
        other => {
            filters.push(other);
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EXAMPLE_4_1: &str = r"
        schema   { Q 2; P 1; R 1; }
        services { f 1 det; g 1 det; }
        init     { P(a); Q(a, a); }
        action alpha() {
            Q(a, a) & P(X) ~> R(X);
            P(X)           ~> P(X), Q(f(X), g(X));
        }
        rule true => alpha;
    ";

    #[test]
    fn parses_example_4_1() {
        let dcds = parse_dcds(EXAMPLE_4_1).unwrap();
        assert_eq!(dcds.data.schema.len(), 3);
        assert_eq!(dcds.process.services.len(), 2);
        assert_eq!(dcds.process.actions.len(), 1);
        assert_eq!(dcds.process.rules.len(), 1);
        assert_eq!(dcds.data.initial.len(), 2);
        assert!(dcds.is_deterministic());
        let alpha = &dcds.process.actions[0];
        assert_eq!(alpha.effects.len(), 2);
        assert_eq!(alpha.effects[1].called_functions().len(), 2);
    }

    #[test]
    fn parses_constraints() {
        let src = r"
            schema { P 1; Q 2; }
            init   { P(a); Q(a, a); }
            constraint P(X) & Q(Y, Z) -> X = Y;
            action alpha() { P(X) ~> P(X); }
            rule true => alpha;
        ";
        let dcds = parse_dcds(src).unwrap();
        assert_eq!(dcds.data.constraints.len(), 1);
    }

    #[test]
    fn initial_violation_is_rejected() {
        let src = r"
            schema { P 1; Q 2; }
            init   { P(a); Q(b, a); }
            constraint P(X) & Q(Y, Z) -> X = Y;
            action alpha() { P(X) ~> P(X); }
            rule true => alpha;
        ";
        assert!(parse_dcds(src).is_err());
    }

    #[test]
    fn filter_conjuncts_become_qminus() {
        let src = r"
            schema { P 1; R 1; }
            init   { P(a); }
            action alpha() { P(X) & !R(X) ~> R(X); }
            rule true => alpha;
        ";
        let dcds = parse_dcds(src).unwrap();
        let e = &dcds.process.actions[0].effects[0];
        assert_eq!(e.qplus.disjuncts[0].atoms.len(), 1);
        assert_ne!(e.qminus, Formula::True);
    }

    #[test]
    fn top_level_disjunction_rejected() {
        let src = r"
            schema { P 1; R 1; }
            init   { P(a); }
            action alpha() { P(X) | R(X) ~> R(X); }
            rule true => alpha;
        ";
        assert!(parse_dcds(src).is_err());
    }

    #[test]
    fn unknown_action_in_rule_rejected() {
        let src = r"
            schema { P 1; }
            init   { P(a); }
            action alpha() { P(X) ~> P(X); }
            rule true => beta;
        ";
        assert!(parse_dcds(src).is_err());
    }

    #[test]
    fn rule_with_parameters() {
        let src = r"
            schema { P 1; R 1; }
            init   { P(a); }
            action alpha(X) { true ~> R(X); }
            rule P(X) => alpha;
        ";
        let dcds = parse_dcds(src).unwrap();
        assert_eq!(dcds.process.actions[0].params.len(), 1);
    }

    #[test]
    fn rule_param_mismatch_rejected() {
        let src = r"
            schema { P 1; R 1; }
            init   { P(a); }
            action alpha(X, Y) { true ~> R(X); }
            rule P(X) => alpha;
        ";
        assert!(parse_dcds(src).is_err());
    }

    #[test]
    fn quoted_constants_in_init_and_heads() {
        // 'ready To Verify' occurs only in an effect head. The paper assumes
        // w.l.o.g. that such constants appear in I0; we apply the w.l.o.g.
        // automatically by making them rigid (see `Dcds::rigid_constants`).
        let src = r"
            schema { Status 1; }
            init   { Status('ready For Request'); }
            action go() { Status(X) ~> Status('ready To Verify'); }
            rule true => go;
        ";
        let dcds = parse_dcds(src).unwrap();
        let v = dcds.data.pool.get("ready To Verify").unwrap();
        assert!(dcds.rigid_constants().contains(&v));
    }
}
