//! Explicit finite transition systems with database-labeled states.
//!
//! A transition system (Section 2.3) is `Υ = ⟨Δ, R, Σ, s₀, db, ⇒⟩`. We
//! materialise the finite ones: concrete prefixes produced by bounded
//! exploration, and the abstract systems produced by `dcds-abstraction`.
//! `Δ` is the constant pool, `R` the schema; both live alongside the
//! transition system rather than inside it so systems over the same
//! vocabulary can share them.

use dcds_reldata::{ConstantPool, Instance, InstanceDisplay, Schema, Value};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Identifier of a state inside a [`Ts`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StateId(u32);

impl StateId {
    /// Raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Rebuild from a raw index.
    #[inline]
    pub fn from_index(ix: usize) -> Self {
        StateId(u32::try_from(ix).expect("transition system overflow"))
    }
}

/// An explicit transition system whose states are labeled by database
/// instances (`db` in the paper's notation).
///
/// Equality is structural — same states in the same order with the same
/// edges — which is exactly the "bit-identical output" contract the
/// parallel engine determinism tests check. (States sit behind [`Arc`]s,
/// so equality compares the instances themselves, not the handles.)
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ts {
    states: Vec<Arc<Instance>>,
    succ: Vec<Vec<StateId>>,
    initial: StateId,
}

impl Ts {
    /// Create a transition system with the given initial state.
    pub fn new(initial: Instance) -> Self {
        Ts::new_shared(Arc::new(initial))
    }

    /// [`Ts::new`] from an already-shared instance (no copy).
    pub fn new_shared(initial: Arc<Instance>) -> Self {
        Ts {
            states: vec![initial],
            succ: vec![Vec::new()],
            initial: StateId::from_index(0),
        }
    }

    /// The initial state.
    pub fn initial(&self) -> StateId {
        self.initial
    }

    /// Add a state, returning its id. (No deduplication — callers decide
    /// their own notion of state identity.)
    pub fn add_state(&mut self, db: Instance) -> StateId {
        self.add_state_shared(Arc::new(db))
    }

    /// [`Ts::add_state`] from an already-shared instance (no copy).
    /// Derived systems — pruned variants, mutants for coverage tests —
    /// reuse the original's state handles, so building them is O(states)
    /// rather than O(states × instance size).
    pub fn add_state_shared(&mut self, db: Arc<Instance>) -> StateId {
        let id = StateId::from_index(self.states.len());
        self.states.push(db);
        self.succ.push(Vec::new());
        id
    }

    /// Add an edge (idempotent).
    pub fn add_edge(&mut self, from: StateId, to: StateId) {
        let v = &mut self.succ[from.index()];
        if !v.contains(&to) {
            v.push(to);
        }
    }

    /// The database labeling a state.
    pub fn db(&self, s: StateId) -> &Instance {
        &self.states[s.index()]
    }

    /// The shared handle of a state's database (cheap clone).
    pub fn db_shared(&self, s: StateId) -> Arc<Instance> {
        Arc::clone(&self.states[s.index()])
    }

    /// Successors of a state.
    pub fn successors(&self, s: StateId) -> &[StateId] {
        &self.succ[s.index()]
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.states.len()
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.succ.iter().map(Vec::len).sum()
    }

    /// Iterate over all state ids.
    pub fn state_ids(&self) -> impl Iterator<Item = StateId> {
        (0..self.states.len()).map(StateId::from_index)
    }

    /// `ADOM(Θ)`: the union of the active domains of all states.
    pub fn adom_union(&self) -> BTreeSet<Value> {
        let mut out = BTreeSet::new();
        for s in &self.states {
            out.extend(s.active_domain());
        }
        out
    }

    /// Maximum `|ADOM(db(s))|` over all states (the observable witness of
    /// state-boundedness).
    pub fn max_state_adom(&self) -> usize {
        self.states
            .iter()
            .map(|s| s.active_domain().len())
            .max()
            .unwrap_or(0)
    }

    /// Predecessor lists (computed on demand).
    pub fn predecessors(&self) -> Vec<Vec<StateId>> {
        let mut pred = vec![Vec::new(); self.states.len()];
        for (from_ix, outs) in self.succ.iter().enumerate() {
            for to in outs {
                pred[to.index()].push(StateId::from_index(from_ix));
            }
        }
        pred
    }

    /// States reachable from the initial state.
    pub fn reachable(&self) -> BTreeSet<StateId> {
        let mut seen = BTreeSet::new();
        let mut stack = vec![self.initial];
        while let Some(s) = stack.pop() {
            if seen.insert(s) {
                stack.extend(self.successors(s).iter().copied());
            }
        }
        seen
    }

    /// States with no outgoing edges.
    pub fn deadlocks(&self) -> Vec<StateId> {
        self.state_ids()
            .filter(|s| self.successors(*s).is_empty())
            .collect()
    }

    /// Render the system as Graphviz DOT (states labeled by their
    /// databases).
    pub fn to_dot(&self, schema: &Schema, pool: &ConstantPool) -> String {
        let mut out = String::from("digraph ts {\n  rankdir=LR;\n");
        for s in self.state_ids() {
            let label = InstanceDisplay::new(self.db(s), schema, pool).to_string();
            let shape = if s == self.initial {
                "doublecircle"
            } else {
                "box"
            };
            out.push_str(&format!(
                "  s{} [shape={shape}, label=\"{}\"];\n",
                s.index(),
                label.replace('"', "\\\"")
            ));
        }
        for s in self.state_ids() {
            for t in self.successors(s) {
                out.push_str(&format!("  s{} -> s{};\n", s.index(), t.index()));
            }
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcds_reldata::Tuple;

    fn mk() -> (Schema, ConstantPool, Ts) {
        let mut schema = Schema::new();
        let p = schema.add_relation("P", 1).unwrap();
        let mut pool = ConstantPool::new();
        let a = pool.intern("a");
        let b = pool.intern("b");
        let s0 = Instance::from_facts([(p, Tuple::from([a]))]);
        let s1 = Instance::from_facts([(p, Tuple::from([b]))]);
        let mut ts = Ts::new(s0);
        let one = ts.add_state(s1);
        ts.add_edge(ts.initial(), one);
        ts.add_edge(one, one);
        (schema, pool, ts)
    }

    #[test]
    fn basic_structure() {
        let (_, _, ts) = mk();
        assert_eq!(ts.num_states(), 2);
        assert_eq!(ts.num_edges(), 2);
        assert_eq!(ts.successors(ts.initial()).len(), 1);
    }

    #[test]
    fn edges_are_deduplicated() {
        let (_, _, mut ts) = mk();
        let s1 = StateId::from_index(1);
        ts.add_edge(ts.initial(), s1);
        assert_eq!(ts.num_edges(), 2);
    }

    #[test]
    fn adom_union_and_max() {
        let (_, pool, ts) = mk();
        assert_eq!(ts.adom_union().len(), 2);
        assert_eq!(ts.max_state_adom(), 1);
        let _ = pool;
    }

    #[test]
    fn reachability_and_deadlocks() {
        let (_, _, mut ts) = mk();
        // An unreachable deadlocked state.
        let dead = ts.add_state(Instance::new());
        assert_eq!(ts.reachable().len(), 2);
        assert_eq!(ts.deadlocks(), vec![dead]);
    }

    #[test]
    fn predecessors_invert_edges() {
        let (_, _, ts) = mk();
        let pred = ts.predecessors();
        let s1 = StateId::from_index(1);
        assert_eq!(pred[s1.index()].len(), 2); // from s0 and the self-loop
    }

    #[test]
    fn dot_output_mentions_all_states() {
        let (schema, pool, ts) = mk();
        let dot = ts.to_dot(&schema, &pool);
        assert!(dot.contains("s0"));
        assert!(dot.contains("s1"));
        assert!(dot.contains("P(a)"));
    }
}
