//! Bounded exploration of the concrete transition systems.
//!
//! The concrete transition system of a DCDS is infinite in general — both
//! infinitely branching (a fresh call may return any constant) and
//! infinitely deep. This module materialises finite *prefixes* of it, used
//! to validate the finite abstractions empirically (bisimulation tests) and
//! to visualise the systems of the paper's figures.
//!
//! Branching is tamed by a [`ValueOracle`], which picks finitely many
//! evaluations for the calls of each step; depth and size are tamed by
//! [`Limits`]. The default [`CommitmentOracle`] picks one representative
//! evaluation per equality commitment — the same representatives the
//! abstraction keeps, so prefixes explored with it are isomorphic-faithful.

use crate::commitment::{enumerate_commitments, CommitTarget};
use crate::compact::CompactTs;
use crate::dcds::Dcds;
use crate::det::{det_step_with_pre, DetState};
use crate::do_op::{
    do_action_indexed, legal_assignments_indexed, publish_query_stats_delta, query_stats_snapshot,
    state_index, PreInstance,
};
use crate::nondet::nondet_step_with_pre;
use crate::par::{configured_threads, par_map_obs};
use crate::term::ServiceCall;
use crate::ts::{StateId, Ts};
use dcds_obs::{event, span, Obs};
use dcds_reldata::{
    ConstantPool, Facts, Instance, InstanceIndex, RelId, StateRef, StateStore, Value,
};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

/// Bounds on exploration.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Maximum number of states to materialise.
    pub max_states: usize,
    /// Maximum BFS depth from the initial state.
    pub max_depth: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_states: 10_000,
            max_depth: 8,
        }
    }
}

/// Whether exploration exhausted the reachable space within the limits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExploreOutcome {
    /// Every reachable state within the oracle's branching was visited.
    Complete,
    /// Limits were hit; the result is a strict prefix.
    Truncated,
}

/// Chooses finitely many evaluations for the service calls of one step.
pub trait ValueOracle {
    /// Produce the evaluations to explore for `calls` issued in `inst`.
    /// `known` is `ADOM(inst) ∪ rigid`; fresh values may be minted from the
    /// pool.
    fn evaluations(
        &mut self,
        calls: &BTreeSet<ServiceCall>,
        known: &BTreeSet<Value>,
        pool: &mut ConstantPool,
    ) -> Vec<BTreeMap<ServiceCall, Value>>;
}

/// One representative evaluation per equality commitment.
#[derive(Debug, Default, Clone, Copy)]
pub struct CommitmentOracle;

impl ValueOracle for CommitmentOracle {
    fn evaluations(
        &mut self,
        calls: &BTreeSet<ServiceCall>,
        known: &BTreeSet<Value>,
        pool: &mut ConstantPool,
    ) -> Vec<BTreeMap<ServiceCall, Value>> {
        let calls: Vec<ServiceCall> = calls.iter().cloned().collect();
        let known: Vec<Value> = known.iter().copied().collect();
        enumerate_commitments(&calls, &known)
            .into_iter()
            .map(|commitment| {
                let cells = crate::commitment::fresh_cell_count(&commitment);
                let fresh: Vec<Value> = (0..cells).map(|_| pool.mint("v")).collect();
                commitment
                    .into_iter()
                    .map(|(c, t)| {
                        let v = match t {
                            CommitTarget::Known(v) => v,
                            CommitTarget::Fresh(cell) => fresh[cell],
                        };
                        (c, v)
                    })
                    .collect()
            })
            .collect()
    }
}

/// Samples up to `samples` evaluations over `known ∪ {fresh_pool_size fresh
/// values}` pseudo-randomly (deterministic from `seed`). Models an
/// adversarial-ish environment cheaply for fuzz-style tests.
#[derive(Debug, Clone, Copy)]
pub struct SampledOracle {
    /// RNG seed.
    pub seed: u64,
    /// Number of evaluations to keep per step.
    pub samples: usize,
    /// Fresh values to mint as sampling targets per step.
    pub fresh_per_step: usize,
}

impl ValueOracle for SampledOracle {
    fn evaluations(
        &mut self,
        calls: &BTreeSet<ServiceCall>,
        known: &BTreeSet<Value>,
        pool: &mut ConstantPool,
    ) -> Vec<BTreeMap<ServiceCall, Value>> {
        let mut universe: Vec<Value> = known.iter().copied().collect();
        for _ in 0..self.fresh_per_step {
            universe.push(pool.mint("v"));
        }
        if universe.is_empty() {
            return if calls.is_empty() {
                vec![BTreeMap::new()]
            } else {
                Vec::new()
            };
        }
        let mut out = Vec::with_capacity(self.samples);
        let mut state = self.seed | 1;
        for _ in 0..self.samples {
            let mut theta = BTreeMap::new();
            for c in calls {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                let v = universe[(state % universe.len() as u64) as usize];
                theta.insert(c.clone(), v);
            }
            out.push(theta);
        }
        self.seed = state;
        out
    }
}

/// What the parallel enumeration phase computes per `(state, ασ)`: the
/// pre-instance, the service calls still needing values, and the values
/// already known to the state (for the oracle's domain).
type Enumerated = (PreInstance, BTreeSet<ServiceCall>, BTreeSet<Value>);

/// Result of a deterministic exploration: the transition system, the
/// service-call map of each state, and whether the prefix is complete.
#[derive(Debug, Clone)]
pub struct DetExploration {
    /// States labeled by instances.
    pub ts: Ts,
    /// Per-state service-call maps (parallel to `ts` state ids).
    pub call_maps: Vec<BTreeMap<ServiceCall, Value>>,
    /// Completeness within the oracle's branching.
    pub outcome: ExploreOutcome,
    /// The constant pool extended with minted fresh values.
    pub pool: ConstantPool,
}

/// Result of a nondeterministic exploration.
#[derive(Debug, Clone)]
pub struct NondetExploration {
    /// States labeled by instances.
    pub ts: Ts,
    /// Completeness within the oracle's branching.
    pub outcome: ExploreOutcome,
    /// The constant pool extended with minted fresh values.
    pub pool: ConstantPool,
}

/// BFS over the deterministic concrete transition system, branching as the
/// oracle dictates, deduplicating identical `⟨I, M⟩` states.
pub fn explore_det(dcds: &Dcds, limits: Limits, oracle: &mut dyn ValueOracle) -> DetExploration {
    explore_det_opts(dcds, limits, oracle, configured_threads())
}

/// [`explore_det`] with an explicit worker-thread count.
///
/// The BFS is level-synchronised and phase-split like the abstraction
/// engine: query evaluation (`DO`, the step per θ) runs in parallel over
/// the frontier, while the oracle — which is stateful and mints from the
/// pool — is invoked serially in exactly the order the serial engine would
/// use. Output is identical for every `threads` value, including 1.
pub fn explore_det_opts(
    dcds: &Dcds,
    limits: Limits,
    oracle: &mut dyn ValueOracle,
    threads: usize,
) -> DetExploration {
    explore_det_traced(dcds, limits, oracle, threads, &Obs::disabled())
}

/// [`explore_det_opts`] with an observability handle: per-level spans,
/// frontier-size metrics, and rate-limited heartbeats. A disabled handle
/// makes this exactly `explore_det_opts`.
pub fn explore_det_traced(
    dcds: &Dcds,
    limits: Limits,
    oracle: &mut dyn ValueOracle,
    threads: usize,
    obs: &Obs,
) -> DetExploration {
    let _run = span!(obs, "explore_det", threads = threads);
    let query_stats0 = query_stats_snapshot(dcds);
    let threads = threads.max(1);
    let mut pool = dcds.working_pool();
    let rigid = dcds.rigid_constants();
    let s0 = DetState::initial(dcds);
    let mut ts = Ts::new(s0.instance.clone());
    let mut call_maps = vec![s0.call_map.clone()];
    let mut index: HashMap<DetState, StateId> = HashMap::new();
    index.insert(s0.clone(), ts.initial());
    let mut level: Vec<(StateId, DetState)> = vec![(ts.initial(), s0)];
    let mut depth = 0usize;
    let mut outcome = ExploreOutcome::Complete;

    while !level.is_empty() {
        // A non-empty level at the depth limit is exactly the serial
        // engine's "popped a state with depth ≥ max_depth" truncation.
        if depth >= limits.max_depth {
            outcome = ExploreOutcome::Truncated;
            break;
        }
        let mut level_span = span!(obs, "explore_level", depth = depth, frontier = level.len());
        obs.histogram("explore.frontier_states", level.len() as u64);
        obs.gauge_max("explore.max_frontier", level.len() as i64);
        obs.heartbeat(|| {
            format!(
                "explore depth {depth}: frontier {}, {} states total",
                level.len(),
                ts.num_states()
            )
        });
        // Phase 1 (parallel): `DO` and the not-yet-mapped calls per
        // `(state, ασ)` — pure queries, no pool access. One hash index per
        // frontier state serves every rule condition and effect evaluated
        // there.
        let enumerated: Vec<Vec<Enumerated>> =
            par_map_obs(&level, threads, obs, "enumerate", |(_, state)| {
                let idx = state_index(dcds, &state.instance);
                legal_assignments_indexed(dcds, &state.instance, Some(&idx))
                    .into_iter()
                    .map(|(action, sigma)| {
                        let pre =
                            do_action_indexed(dcds, &state.instance, action, &sigma, Some(&idx));
                        let new_calls: BTreeSet<ServiceCall> = pre
                            .calls()
                            .into_iter()
                            .filter(|c| !state.call_map.contains_key(c))
                            .collect();
                        let mut known = state.known_values();
                        known.extend(rigid.iter().copied());
                        (pre, new_calls, known)
                    })
                    .collect()
            });
        // Phase 2 (serial): the oracle, in the serial invocation order.
        let mut tasks: Vec<(usize, usize, BTreeMap<ServiceCall, Value>)> = Vec::new();
        for (state_ix, per_state) in enumerated.iter().enumerate() {
            for (pre_ix, (_, new_calls, known)) in per_state.iter().enumerate() {
                for theta in oracle.evaluations(new_calls, known, &mut pool) {
                    tasks.push((state_ix, pre_ix, theta));
                }
            }
        }
        // Phase 3 (parallel): one step per θ.
        let stepped: Vec<Option<DetState>> =
            par_map_obs(&tasks, threads, obs, "step", |(state_ix, pre_ix, theta)| {
                let (_, state) = &level[*state_ix];
                let (pre, _, _) = &enumerated[*state_ix][*pre_ix];
                det_step_with_pre(dcds, state, pre, theta)
            });
        // Phase 4 (serial, task order): dedup, edges, next level.
        let mut next_level: Vec<(StateId, DetState)> = Vec::new();
        for ((state_ix, _, _), next) in tasks.iter().zip(stepped) {
            let Some(next) = next else { continue };
            let sid = level[*state_ix].0;
            let next_id = match index.get(&next) {
                Some(&id) => id,
                None => {
                    if ts.num_states() >= limits.max_states {
                        outcome = ExploreOutcome::Truncated;
                        continue;
                    }
                    let id = ts.add_state(next.instance.clone());
                    call_maps.push(next.call_map.clone());
                    index.insert(next.clone(), id);
                    next_level.push((id, next));
                    id
                }
            };
            ts.add_edge(sid, next_id);
        }
        obs.counter_add("explore.states_expanded", level.len() as u64);
        obs.counter_add("explore.tasks_stepped", tasks.len() as u64);
        level_span.set("new_states", next_level.len() as u64);
        event!(
            obs,
            "level",
            engine = "explore_det",
            level = depth,
            frontier = level.len(),
            tasks = tasks.len(),
            new_states = next_level.len(),
            states = ts.num_states(),
        );
        level = next_level;
        depth += 1;
    }
    obs.counter_add("explore.levels", depth as u64);
    publish_query_stats_delta(dcds, obs, &query_stats0);
    obs.progress_flush(|| format!("explore done: {} states, {depth} levels", ts.num_states()));
    DetExploration {
        ts,
        call_maps,
        outcome,
        pool,
    }
}

/// BFS over the nondeterministic concrete transition system, deduplicating
/// identical instances.
pub fn explore_nondet(
    dcds: &Dcds,
    limits: Limits,
    oracle: &mut dyn ValueOracle,
) -> NondetExploration {
    explore_nondet_opts(dcds, limits, oracle, configured_threads())
}

/// [`explore_nondet`] with an explicit worker-thread count; same phase
/// split and determinism contract as [`explore_det_opts`].
pub fn explore_nondet_opts(
    dcds: &Dcds,
    limits: Limits,
    oracle: &mut dyn ValueOracle,
    threads: usize,
) -> NondetExploration {
    explore_nondet_traced(dcds, limits, oracle, threads, &Obs::disabled())
}

/// [`explore_nondet_opts`] with an observability handle; same contract as
/// [`explore_det_traced`].
pub fn explore_nondet_traced(
    dcds: &Dcds,
    limits: Limits,
    oracle: &mut dyn ValueOracle,
    threads: usize,
    obs: &Obs,
) -> NondetExploration {
    let _run = span!(obs, "explore_nondet", threads = threads);
    let query_stats0 = query_stats_snapshot(dcds);
    let threads = threads.max(1);
    let mut pool = dcds.working_pool();
    let rigid = dcds.rigid_constants();
    let mut ts = Ts::new(dcds.data.initial.clone());
    let mut index: HashMap<Instance, StateId> = HashMap::new();
    index.insert(dcds.data.initial.clone(), ts.initial());
    let mut level: Vec<(StateId, Instance)> = vec![(ts.initial(), dcds.data.initial.clone())];
    let mut depth = 0usize;
    let mut outcome = ExploreOutcome::Complete;

    while !level.is_empty() {
        if depth >= limits.max_depth {
            outcome = ExploreOutcome::Truncated;
            break;
        }
        let mut level_span = span!(obs, "explore_level", depth = depth, frontier = level.len());
        obs.histogram("explore.frontier_states", level.len() as u64);
        obs.gauge_max("explore.max_frontier", level.len() as i64);
        obs.heartbeat(|| {
            format!(
                "explore depth {depth}: frontier {}, {} states total",
                level.len(),
                ts.num_states()
            )
        });
        let enumerated: Vec<Vec<Enumerated>> =
            par_map_obs(&level, threads, obs, "enumerate", |(_, inst)| {
                let idx = state_index(dcds, inst);
                legal_assignments_indexed(dcds, inst, Some(&idx))
                    .into_iter()
                    .map(|(action, sigma)| {
                        let pre = do_action_indexed(dcds, inst, action, &sigma, Some(&idx));
                        let calls = pre.calls();
                        let mut known = inst.active_domain();
                        known.extend(rigid.iter().copied());
                        (pre, calls, known)
                    })
                    .collect()
            });
        let mut tasks: Vec<(usize, usize, BTreeMap<ServiceCall, Value>)> = Vec::new();
        for (state_ix, per_state) in enumerated.iter().enumerate() {
            for (pre_ix, (_, calls, known)) in per_state.iter().enumerate() {
                for theta in oracle.evaluations(calls, known, &mut pool) {
                    tasks.push((state_ix, pre_ix, theta));
                }
            }
        }
        let stepped: Vec<Option<Instance>> =
            par_map_obs(&tasks, threads, obs, "step", |(state_ix, pre_ix, theta)| {
                let (pre, _, _) = &enumerated[*state_ix][*pre_ix];
                nondet_step_with_pre(dcds, pre, theta)
            });
        let mut next_level: Vec<(StateId, Instance)> = Vec::new();
        for ((state_ix, _, _), next) in tasks.iter().zip(stepped) {
            let Some(next) = next else { continue };
            let sid = level[*state_ix].0;
            let next_id = match index.get(&next) {
                Some(&id) => id,
                None => {
                    if ts.num_states() >= limits.max_states {
                        outcome = ExploreOutcome::Truncated;
                        continue;
                    }
                    let id = ts.add_state(next.clone());
                    index.insert(next.clone(), id);
                    next_level.push((id, next));
                    id
                }
            };
            ts.add_edge(sid, next_id);
        }
        obs.counter_add("explore.states_expanded", level.len() as u64);
        obs.counter_add("explore.tasks_stepped", tasks.len() as u64);
        level_span.set("new_states", next_level.len() as u64);
        event!(
            obs,
            "level",
            engine = "explore_nondet",
            level = depth,
            frontier = level.len(),
            tasks = tasks.len(),
            new_states = next_level.len(),
            states = ts.num_states(),
        );
        level = next_level;
        depth += 1;
    }
    obs.counter_add("explore.levels", depth as u64);
    publish_query_stats_delta(dcds, obs, &query_stats0);
    obs.progress_flush(|| format!("explore done: {} states, {depth} levels", ts.num_states()));
    NondetExploration { ts, outcome, pool }
}

/// Result of a compact deterministic exploration: the same prefix as
/// [`DetExploration`] (the differential tests assert `to_ts()` equality)
/// with the states held in a [`StateStore`] instead of owned instances.
#[derive(Debug)]
pub struct CompactDetExploration {
    /// States in the store.
    pub ts: CompactTs,
    /// Per-state service-call maps (parallel to `ts` state ids).
    pub call_maps: Vec<BTreeMap<ServiceCall, Value>>,
    /// Completeness within the oracle's branching.
    pub outcome: ExploreOutcome,
    /// The constant pool extended with minted fresh values.
    pub pool: ConstantPool,
}

/// Result of a compact nondeterministic exploration; mirrors
/// [`NondetExploration`] with the states held in a [`StateStore`].
#[derive(Debug)]
pub struct CompactNondetExploration {
    /// States in the store.
    pub ts: CompactTs,
    /// Completeness within the oracle's branching.
    pub outcome: ExploreOutcome,
    /// The constant pool extended with minted fresh values.
    pub pool: ConstantPool,
}

/// A frontier state of the compact exploration BFS: its id, its transient
/// owned structure (dropped when the level completes), and its
/// copy-on-write query index.
struct CompactLevelState<S> {
    id: StateId,
    state: S,
    index: Arc<InstanceIndex>,
}

/// A state admitted during the merge phase, awaiting its COW index.
struct PendingLevelState<S> {
    id: StateId,
    state: S,
    /// Index into the current frontier of the parent it stepped from.
    parent_ix: usize,
    /// Relations its delta touched; `None` = stored as a root.
    touched: Option<Vec<RelId>>,
}

/// [`explore_det`] over the compact state store.
pub fn explore_det_compact(
    dcds: &Dcds,
    limits: Limits,
    oracle: &mut dyn ValueOracle,
) -> CompactDetExploration {
    explore_det_compact_opts(dcds, limits, oracle, configured_threads())
}

/// [`explore_det_compact`] with an explicit worker-thread count.
pub fn explore_det_compact_opts(
    dcds: &Dcds,
    limits: Limits,
    oracle: &mut dyn ValueOracle,
    threads: usize,
) -> CompactDetExploration {
    explore_det_compact_traced(dcds, limits, oracle, threads, &Obs::disabled())
}

/// [`explore_det_compact_opts`] with an observability handle.
///
/// The phase structure replays [`explore_det_traced`] exactly — the oracle
/// runs serially in the same order, so the prefix, call maps, outcome, and
/// pool are bit-identical to the owned engine at every thread count — with
/// two compact-path differences: successor states are stored as deltas
/// over their parent (dedup via the store's exact fact-set hashing, which
/// coincides with `HashMap<DetState, _>` because [`DetState::to_facts`] is
/// injective), and each frontier state's [`InstanceIndex`] is derived from
/// its parent's via [`InstanceIndex::rebuild_delta`] instead of being
/// rebuilt from scratch per level.
pub fn explore_det_compact_traced(
    dcds: &Dcds,
    limits: Limits,
    oracle: &mut dyn ValueOracle,
    threads: usize,
    obs: &Obs,
) -> CompactDetExploration {
    let _run = span!(obs, "explore_det_compact", threads = threads);
    let query_stats0 = query_stats_snapshot(dcds);
    let threads = threads.max(1);
    let num_rels = dcds.data.schema.len();
    let mut pool = dcds.working_pool();
    let rigid = dcds.rigid_constants();
    let paths = dcds.plans().access_paths();

    let mut store = StateStore::new();
    let s0 = DetState::initial(dcds);
    let r0 = store.insert(None, &s0.to_facts(num_rels)).state;
    let mut refs: Vec<StateRef> = vec![r0];
    let mut succ: Vec<Vec<StateId>> = vec![Vec::new()];
    let mut call_maps = vec![s0.call_map.clone()];

    let idx0 = Arc::new(state_index(dcds, &s0.instance));
    let mut level: Vec<CompactLevelState<DetState>> = vec![CompactLevelState {
        id: StateId::from_index(0),
        state: s0,
        index: idx0,
    }];
    let mut depth = 0usize;
    let mut outcome = ExploreOutcome::Complete;

    while !level.is_empty() {
        if depth >= limits.max_depth {
            outcome = ExploreOutcome::Truncated;
            break;
        }
        let mut level_span = span!(obs, "explore_level", depth = depth, frontier = level.len());
        obs.histogram("explore.frontier_states", level.len() as u64);
        obs.gauge_max("explore.max_frontier", level.len() as i64);
        obs.heartbeat(|| {
            format!(
                "explore depth {depth}: frontier {}, {} states total",
                level.len(),
                refs.len()
            )
        });
        // Phase 1 (parallel): `DO` and the not-yet-mapped calls per
        // `(state, ασ)`, probing the frontier state's COW index.
        let enumerated: Vec<Vec<Enumerated>> =
            par_map_obs(&level, threads, obs, "enumerate", |entry| {
                let state = &entry.state;
                legal_assignments_indexed(dcds, &state.instance, Some(&entry.index))
                    .into_iter()
                    .map(|(action, sigma)| {
                        let pre = do_action_indexed(
                            dcds,
                            &state.instance,
                            action,
                            &sigma,
                            Some(&entry.index),
                        );
                        let new_calls: BTreeSet<ServiceCall> = pre
                            .calls()
                            .into_iter()
                            .filter(|c| !state.call_map.contains_key(c))
                            .collect();
                        let mut known = state.known_values();
                        known.extend(rigid.iter().copied());
                        (pre, new_calls, known)
                    })
                    .collect()
            });
        // Phase 2 (serial): the oracle, in the serial invocation order.
        let mut tasks: Vec<(usize, usize, BTreeMap<ServiceCall, Value>)> = Vec::new();
        for (state_ix, per_state) in enumerated.iter().enumerate() {
            for (pre_ix, (_, new_calls, known)) in per_state.iter().enumerate() {
                for theta in oracle.evaluations(new_calls, known, &mut pool) {
                    tasks.push((state_ix, pre_ix, theta));
                }
            }
        }
        // Phase 3 (parallel): one step per θ, plus the fact encoding the
        // merge will dedup on.
        let stepped: Vec<Option<(DetState, Facts)>> =
            par_map_obs(&tasks, threads, obs, "step", |(state_ix, pre_ix, theta)| {
                let state = &level[*state_ix].state;
                let (pre, _, _) = &enumerated[*state_ix][*pre_ix];
                det_step_with_pre(dcds, state, pre, theta).map(|next| {
                    let facts = next.to_facts(num_rels);
                    (next, facts)
                })
            });
        // Phase 4 (serial, task order): dedup against the store, edges,
        // admissions as deltas over the parent.
        let mut pending: Vec<PendingLevelState<DetState>> = Vec::new();
        let mut resolved_parent: Option<(usize, Vec<dcds_reldata::FactId>)> = None;
        for ((state_ix, _, _), next) in tasks.iter().zip(stepped) {
            let Some((next, facts)) = next else { continue };
            let sid = level[*state_ix].id;
            // Look up before inserting: a budget-truncated successor must
            // leave no trace in the append-only store.
            let next_id = match store.find(&facts) {
                Some(existing) => StateId::from_index(existing.index()),
                None => {
                    if refs.len() >= limits.max_states {
                        outcome = ExploreOutcome::Truncated;
                        continue;
                    }
                    let parent_ref = refs[sid.index()];
                    if resolved_parent.as_ref().map(|(s, _)| *s) != Some(*state_ix) {
                        resolved_parent = Some((*state_ix, store.resolve(parent_ref)));
                    }
                    let parent_ids = &resolved_parent.as_ref().unwrap().1;
                    let ins = store.insert_child(parent_ref, parent_ids, &facts);
                    debug_assert!(!ins.existing);
                    let id = StateId::from_index(refs.len());
                    debug_assert_eq!(ins.state.index(), id.index());
                    refs.push(ins.state);
                    succ.push(Vec::new());
                    call_maps.push(next.call_map.clone());
                    let touched = store.delta_rels(ins.state, num_rels as u32);
                    pending.push(PendingLevelState {
                        id,
                        state: next,
                        parent_ix: *state_ix,
                        touched,
                    });
                    id
                }
            };
            let out = &mut succ[sid.index()];
            if !out.contains(&next_id) {
                out.push(next_id);
            }
        }
        obs.counter_add("explore.states_expanded", level.len() as u64);
        obs.counter_add("explore.tasks_stepped", tasks.len() as u64);
        level_span.set("new_states", pending.len() as u64);
        event!(
            obs,
            "level",
            engine = "explore_det_compact",
            level = depth,
            frontier = level.len(),
            tasks = tasks.len(),
            new_states = pending.len(),
            states = refs.len(),
            store_bytes = store.stats().bytes,
        );
        // Phase 5 (parallel): derive the new frontier's COW indexes while
        // the parent indexes are still alive.
        level = par_map_obs(&pending, threads, obs, "index", |child| {
            let idx = match &child.touched {
                Some(touched) => InstanceIndex::rebuild_delta(
                    &level[child.parent_ix].index,
                    &child.state.instance,
                    touched,
                    paths.iter().cloned(),
                ),
                None => state_index(dcds, &child.state.instance),
            };
            CompactLevelState {
                id: child.id,
                state: child.state.clone(),
                index: Arc::new(idx),
            }
        });
        depth += 1;
    }
    obs.counter_add("explore.levels", depth as u64);
    publish_query_stats_delta(dcds, obs, &query_stats0);
    obs.progress_flush(|| format!("explore done: {} states, {depth} levels", refs.len()));
    CompactDetExploration {
        ts: CompactTs::from_parts(store, refs, succ, num_rels as u32),
        call_maps,
        outcome,
        pool,
    }
}

/// [`explore_nondet`] over the compact state store.
pub fn explore_nondet_compact(
    dcds: &Dcds,
    limits: Limits,
    oracle: &mut dyn ValueOracle,
) -> CompactNondetExploration {
    explore_nondet_compact_opts(dcds, limits, oracle, configured_threads())
}

/// [`explore_nondet_compact`] with an explicit worker-thread count.
pub fn explore_nondet_compact_opts(
    dcds: &Dcds,
    limits: Limits,
    oracle: &mut dyn ValueOracle,
    threads: usize,
) -> CompactNondetExploration {
    explore_nondet_compact_traced(dcds, limits, oracle, threads, &Obs::disabled())
}

/// [`explore_nondet_compact_opts`] with an observability handle; same
/// contract as [`explore_det_compact_traced`] (instance dedup via the
/// store's exact fact-set hashing coincides with `HashMap<Instance, _>`).
pub fn explore_nondet_compact_traced(
    dcds: &Dcds,
    limits: Limits,
    oracle: &mut dyn ValueOracle,
    threads: usize,
    obs: &Obs,
) -> CompactNondetExploration {
    let _run = span!(obs, "explore_nondet_compact", threads = threads);
    let query_stats0 = query_stats_snapshot(dcds);
    let threads = threads.max(1);
    let num_rels = dcds.data.schema.len();
    let mut pool = dcds.working_pool();
    let rigid = dcds.rigid_constants();
    let paths = dcds.plans().access_paths();

    let mut store = StateStore::new();
    let r0 = store
        .insert(None, &Facts::from_instance(&dcds.data.initial))
        .state;
    let mut refs: Vec<StateRef> = vec![r0];
    let mut succ: Vec<Vec<StateId>> = vec![Vec::new()];

    let idx0 = Arc::new(state_index(dcds, &dcds.data.initial));
    let mut level: Vec<CompactLevelState<Instance>> = vec![CompactLevelState {
        id: StateId::from_index(0),
        state: dcds.data.initial.clone(),
        index: idx0,
    }];
    let mut depth = 0usize;
    let mut outcome = ExploreOutcome::Complete;

    while !level.is_empty() {
        if depth >= limits.max_depth {
            outcome = ExploreOutcome::Truncated;
            break;
        }
        let mut level_span = span!(obs, "explore_level", depth = depth, frontier = level.len());
        obs.histogram("explore.frontier_states", level.len() as u64);
        obs.gauge_max("explore.max_frontier", level.len() as i64);
        obs.heartbeat(|| {
            format!(
                "explore depth {depth}: frontier {}, {} states total",
                level.len(),
                refs.len()
            )
        });
        let enumerated: Vec<Vec<Enumerated>> =
            par_map_obs(&level, threads, obs, "enumerate", |entry| {
                let inst = &entry.state;
                legal_assignments_indexed(dcds, inst, Some(&entry.index))
                    .into_iter()
                    .map(|(action, sigma)| {
                        let pre = do_action_indexed(dcds, inst, action, &sigma, Some(&entry.index));
                        let calls = pre.calls();
                        let mut known = inst.active_domain();
                        known.extend(rigid.iter().copied());
                        (pre, calls, known)
                    })
                    .collect()
            });
        let mut tasks: Vec<(usize, usize, BTreeMap<ServiceCall, Value>)> = Vec::new();
        for (state_ix, per_state) in enumerated.iter().enumerate() {
            for (pre_ix, (_, calls, known)) in per_state.iter().enumerate() {
                for theta in oracle.evaluations(calls, known, &mut pool) {
                    tasks.push((state_ix, pre_ix, theta));
                }
            }
        }
        let stepped: Vec<Option<(Instance, Facts)>> =
            par_map_obs(&tasks, threads, obs, "step", |(state_ix, pre_ix, theta)| {
                let (pre, _, _) = &enumerated[*state_ix][*pre_ix];
                nondet_step_with_pre(dcds, pre, theta).map(|next| {
                    let facts = Facts::from_instance(&next);
                    (next, facts)
                })
            });
        let mut pending: Vec<PendingLevelState<Instance>> = Vec::new();
        let mut resolved_parent: Option<(usize, Vec<dcds_reldata::FactId>)> = None;
        for ((state_ix, _, _), next) in tasks.iter().zip(stepped) {
            let Some((next, facts)) = next else { continue };
            let sid = level[*state_ix].id;
            let next_id = match store.find(&facts) {
                Some(existing) => StateId::from_index(existing.index()),
                None => {
                    if refs.len() >= limits.max_states {
                        outcome = ExploreOutcome::Truncated;
                        continue;
                    }
                    let parent_ref = refs[sid.index()];
                    if resolved_parent.as_ref().map(|(s, _)| *s) != Some(*state_ix) {
                        resolved_parent = Some((*state_ix, store.resolve(parent_ref)));
                    }
                    let parent_ids = &resolved_parent.as_ref().unwrap().1;
                    let ins = store.insert_child(parent_ref, parent_ids, &facts);
                    debug_assert!(!ins.existing);
                    let id = StateId::from_index(refs.len());
                    debug_assert_eq!(ins.state.index(), id.index());
                    refs.push(ins.state);
                    succ.push(Vec::new());
                    let touched = store.delta_rels(ins.state, num_rels as u32);
                    pending.push(PendingLevelState {
                        id,
                        state: next,
                        parent_ix: *state_ix,
                        touched,
                    });
                    id
                }
            };
            let out = &mut succ[sid.index()];
            if !out.contains(&next_id) {
                out.push(next_id);
            }
        }
        obs.counter_add("explore.states_expanded", level.len() as u64);
        obs.counter_add("explore.tasks_stepped", tasks.len() as u64);
        level_span.set("new_states", pending.len() as u64);
        event!(
            obs,
            "level",
            engine = "explore_nondet_compact",
            level = depth,
            frontier = level.len(),
            tasks = tasks.len(),
            new_states = pending.len(),
            states = refs.len(),
            store_bytes = store.stats().bytes,
        );
        level = par_map_obs(&pending, threads, obs, "index", |child| {
            let idx = match &child.touched {
                Some(touched) => InstanceIndex::rebuild_delta(
                    &level[child.parent_ix].index,
                    &child.state,
                    touched,
                    paths.iter().cloned(),
                ),
                None => state_index(dcds, &child.state),
            };
            CompactLevelState {
                id: child.id,
                state: child.state.clone(),
                index: Arc::new(idx),
            }
        });
        depth += 1;
    }
    obs.counter_add("explore.levels", depth as u64);
    publish_query_stats_delta(dcds, obs, &query_stats0);
    obs.progress_flush(|| format!("explore done: {} states, {depth} levels", refs.len()));
    CompactNondetExploration {
        ts: CompactTs::from_parts(store, refs, succ, num_rels as u32),
        outcome,
        pool,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DcdsBuilder;
    use crate::service::ServiceKind;

    fn example_4_3(kind: ServiceKind) -> Dcds {
        DcdsBuilder::new()
            .relation("R", 1)
            .relation("Q", 1)
            .service("f", 1, kind)
            .init_fact("R", &["a"])
            .action("alpha", &[], |a| {
                a.effect("R(X)", "Q(f(X))");
                a.effect("Q(X)", "R(X)");
            })
            .rule("true", "alpha")
            .build()
            .unwrap()
    }

    #[test]
    fn nondet_exploration_of_example_5_1_is_growing_but_state_bounded() {
        let dcds = example_4_3(ServiceKind::Nondeterministic);
        let mut oracle = CommitmentOracle;
        let res = explore_nondet(
            &dcds,
            Limits {
                max_states: 200,
                max_depth: 4,
            },
            &mut oracle,
        );
        // Every state holds exactly one fact: state-bounded with bound 1.
        assert_eq!(res.ts.max_state_adom(), 1);
        assert!(res.ts.num_states() > 2);
    }

    #[test]
    fn det_exploration_tracks_call_maps() {
        let dcds = example_4_3(ServiceKind::Deterministic);
        let mut oracle = CommitmentOracle;
        let res = explore_det(
            &dcds,
            Limits {
                max_states: 100,
                max_depth: 3,
            },
            &mut oracle,
        );
        assert_eq!(res.ts.num_states(), res.call_maps.len());
        // Depth-1 successors of ⟨{R(a)}, ∅⟩ commit f(a) to a or fresh: the
        // initial state has exactly 2 successors.
        assert_eq!(res.ts.successors(res.ts.initial()).len(), 2);
        // The run-unbounded system keeps minting fresh values: truncated.
        assert_eq!(res.outcome, ExploreOutcome::Truncated);
    }

    #[test]
    fn depth_zero_is_initial_only() {
        let dcds = example_4_3(ServiceKind::Deterministic);
        let mut oracle = CommitmentOracle;
        let res = explore_det(
            &dcds,
            Limits {
                max_states: 10,
                max_depth: 0,
            },
            &mut oracle,
        );
        assert_eq!(res.ts.num_states(), 1);
    }

    #[test]
    fn thread_counts_agree_exactly() {
        // Phase-split parallelism must not change the explored prefix —
        // the oracle runs serially in the same order, so states, edges,
        // call maps, and the pool are identical at every thread count.
        let dcds = example_4_3(ServiceKind::Deterministic);
        let limits = Limits {
            max_states: 100,
            max_depth: 3,
        };
        let runs: Vec<DetExploration> = [1usize, 2, 8]
            .into_iter()
            .map(|t| {
                let mut oracle = CommitmentOracle;
                explore_det_opts(&dcds, limits, &mut oracle, t)
            })
            .collect();
        for other in &runs[1..] {
            assert_eq!(runs[0].ts, other.ts);
            assert_eq!(runs[0].call_maps, other.call_maps);
            assert_eq!(runs[0].outcome, other.outcome);
            assert_eq!(runs[0].pool.len(), other.pool.len());
        }

        let nd = example_4_3(ServiceKind::Nondeterministic);
        let nd_runs: Vec<NondetExploration> = [1usize, 2, 8]
            .into_iter()
            .map(|t| {
                let mut oracle = SampledOracle {
                    seed: 11,
                    samples: 4,
                    fresh_per_step: 1,
                };
                explore_nondet_opts(&nd, limits, &mut oracle, t)
            })
            .collect();
        for other in &nd_runs[1..] {
            assert_eq!(nd_runs[0].ts, other.ts);
            assert_eq!(nd_runs[0].outcome, other.outcome);
            assert_eq!(nd_runs[0].pool.len(), other.pool.len());
        }
    }

    #[test]
    fn compact_exploration_matches_owned() {
        // The store-backed twins must reproduce the owned prefix exactly:
        // same Ts, call maps, outcome, and pool at every thread count.
        let limits = Limits {
            max_states: 100,
            max_depth: 3,
        };
        let det = example_4_3(ServiceKind::Deterministic);
        for threads in [1usize, 2, 8] {
            let mut oracle = CommitmentOracle;
            let owned = explore_det_opts(&det, limits, &mut oracle, threads);
            let mut oracle = CommitmentOracle;
            let compact = explore_det_compact_opts(&det, limits, &mut oracle, threads);
            assert_eq!(compact.ts.to_ts(), owned.ts, "t={threads}");
            assert_eq!(compact.call_maps, owned.call_maps);
            assert_eq!(compact.outcome, owned.outcome);
            assert_eq!(compact.pool.len(), owned.pool.len());
        }
        let nd = example_4_3(ServiceKind::Nondeterministic);
        for threads in [1usize, 2, 8] {
            let mut oracle = SampledOracle {
                seed: 11,
                samples: 4,
                fresh_per_step: 1,
            };
            let owned = explore_nondet_opts(&nd, limits, &mut oracle, threads);
            let mut oracle = SampledOracle {
                seed: 11,
                samples: 4,
                fresh_per_step: 1,
            };
            let compact = explore_nondet_compact_opts(&nd, limits, &mut oracle, threads);
            assert_eq!(compact.ts.to_ts(), owned.ts, "t={threads}");
            assert_eq!(compact.outcome, owned.outcome);
            assert_eq!(compact.pool.len(), owned.pool.len());
        }
    }

    #[test]
    fn sampled_oracle_is_deterministic_per_seed() {
        let dcds = example_4_3(ServiceKind::Nondeterministic);
        let run = |seed| {
            let mut oracle = SampledOracle {
                seed,
                samples: 3,
                fresh_per_step: 1,
            };
            let res = explore_nondet(
                &dcds,
                Limits {
                    max_states: 50,
                    max_depth: 3,
                },
                &mut oracle,
            );
            res.ts.num_states()
        };
        assert_eq!(run(7), run(7));
    }
}
