//! Property tests on the DCDS semantics machinery.

// Property tests require the external `proptest` crate, which the offline
// build environment cannot fetch; see the crate manifest for how to enable.
#![cfg(feature = "proptest")]

use dcds_core::commitment::{enumerate_commitments, fresh_cell_count, CommitTarget};
use dcds_core::nondet::evals_over;
use dcds_core::{FuncId, ServiceCall};
use dcds_reldata::Value;
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

fn mk_calls(n: usize) -> Vec<ServiceCall> {
    (0..n)
        .map(|i| ServiceCall {
            func: FuncId::from_index(i % 2),
            args: vec![Value::from_index(100 + i)],
        })
        .collect()
}

fn mk_values(n: usize) -> Vec<Value> {
    (0..n).map(Value::from_index).collect()
}

/// The Bell-polynomial count of commitments: each call picks a known value
/// or joins a fresh cell (restricted growth). Computed by recurrence:
/// `C(0) = 1; C(i+1, cells) = k·C(i, cells) + (cells+1 terms...)` — easier
/// to validate structurally, so we check: (a) the count matches a direct
/// reference recurrence, (b) all commitments are distinct, (c) restricted
/// growth holds.
fn reference_count(calls: usize, known: usize) -> usize {
    // f(i, used_cells): number of ways to commit calls i..n.
    fn f(remaining: usize, used_cells: usize, known: usize) -> usize {
        if remaining == 0 {
            return 1;
        }
        let mut total = known * f(remaining - 1, used_cells, known);
        for cell in 0..=used_cells {
            let next_used = used_cells.max(cell + 1);
            total += f(remaining - 1, next_used, known);
        }
        total
    }
    f(calls, 0, known)
}

proptest! {
    #[test]
    fn commitment_enumeration_is_canonical(calls in 0usize..4, known in 0usize..4) {
        let call_list = mk_calls(calls);
        let cs = enumerate_commitments(&call_list, &mk_values(known));
        // (a) count matches the reference recurrence;
        prop_assert_eq!(cs.len(), reference_count(calls, known));
        // (b) all commitments distinct;
        let set: BTreeSet<_> = cs.iter().cloned().collect();
        prop_assert_eq!(set.len(), cs.len());
        // (c) restricted growth in *enumeration order* (the order the calls
        // were passed in — the map's key order may differ).
        for c in &cs {
            let mut next_expected = 0usize;
            for call in &call_list {
                if let CommitTarget::Fresh(cell) = c[call] {
                    if cell == next_expected {
                        next_expected += 1;
                    } else {
                        prop_assert!(cell < next_expected, "growth violated");
                    }
                }
            }
            prop_assert!(fresh_cell_count(c) <= calls);
        }
    }

    #[test]
    fn evals_enumerate_exactly_the_total_functions(calls in 0usize..3, values in 0usize..4) {
        let cs: BTreeSet<ServiceCall> = mk_calls(calls).into_iter().collect();
        let vs: BTreeSet<Value> = mk_values(values).into_iter().collect();
        let evals = evals_over(&cs, &vs);
        let expected = if calls == 0 {
            1
        } else if values == 0 {
            0
        } else {
            values.pow(calls as u32)
        };
        prop_assert_eq!(evals.len(), expected);
        // All distinct, all total.
        let distinct: BTreeSet<BTreeMap<ServiceCall, Value>> = evals.iter().cloned().collect();
        prop_assert_eq!(distinct.len(), evals.len());
        for theta in &evals {
            prop_assert_eq!(theta.len(), cs.len());
            for v in theta.values() {
                prop_assert!(vs.contains(v));
            }
        }
    }
}
