//! End-to-end use of the finite-state process extension: the paper remarks
//! (Section 2.2) that its results generalise to "any process formalism
//! whose control flow is finite-state"; `FsProcess::compile` realises the
//! remark by compiling an automaton into plain condition–action rules over
//! a `__pc` relation. This test runs the compiled system and checks the
//! control flow is respected.

use dcds_core::explore::{explore_nondet, CommitmentOracle, Limits};
use dcds_core::{
    Action, ActionId, DataLayer, Dcds, ETerm, Effect, FsProcess, ProcessLayer, ServiceCatalog,
    ServiceKind,
};
use dcds_folang::{ConjunctiveQuery, Formula, Ucq, Var};
use dcds_reldata::{ConstantPool, Instance, Schema, Tuple};

/// Build a two-phase producer/consumer as a finite-state process:
/// q0 --produce--> q1 --consume--> q0.
fn build() -> Dcds {
    let mut pool = ConstantPool::new();
    let mut schema = Schema::new();
    let buf = schema.add_relation("Buf", 1).unwrap();
    let out = schema.add_relation("Out", 1).unwrap();
    let mut services = ServiceCatalog::new();
    let gen = services
        .add("gen", 0, ServiceKind::Nondeterministic)
        .unwrap();

    // produce: true ⇝ Buf(gen()).
    let produce = Action::new(
        "produce",
        vec![],
        vec![Effect {
            qplus: Ucq::truth(),
            qminus: Formula::True,
            head: vec![(buf, vec![ETerm::Call(gen, vec![])])],
        }],
    );
    // consume: Buf(x) ⇝ Out(x).
    let consume = Action::new(
        "consume",
        vec![],
        vec![Effect {
            qplus: Ucq::single(ConjunctiveQuery {
                head: vec![Var::new("X")],
                atoms: vec![(buf, vec![dcds_folang::QTerm::var("X")])],
                equalities: vec![],
            }),
            qminus: Formula::True,
            head: vec![(out, vec![ETerm::var("X")])],
        }],
    );
    let actions = vec![produce, consume];
    let fsp = FsProcess {
        num_states: 2,
        initial: 0,
        transitions: vec![
            (0, Formula::True, ActionId::from_index(0), 1),
            (1, Formula::True, ActionId::from_index(1), 0),
        ],
    };
    let compiled = fsp.compile(&mut schema, &mut pool, &actions).unwrap();
    let mut initial = Instance::new();
    let (pc_rel, pc_args) = compiled.initial_pc_fact.clone();
    initial.insert(pc_rel, Tuple::from(pc_args));
    let data = DataLayer::new(pool, schema, initial);
    let process = ProcessLayer {
        services,
        actions: compiled.actions,
        rules: compiled.rules,
    };
    Dcds::new(data, process).expect("compiled FS process validates")
}

#[test]
fn control_flow_alternates() {
    let dcds = build();
    let pc = dcds.data.schema.rel_id("__pc").unwrap();
    let buf = dcds.data.schema.rel_id("Buf").unwrap();
    let out = dcds.data.schema.rel_id("Out").unwrap();
    let q0 = dcds.data.pool.get("q0").unwrap();
    let q1 = dcds.data.pool.get("q1").unwrap();
    let mut oracle = CommitmentOracle;
    let res = explore_nondet(
        &dcds,
        Limits {
            max_states: 200,
            max_depth: 4,
        },
        &mut oracle,
    );
    assert!(res.ts.num_states() > 1);
    for s in res.ts.state_ids() {
        let db = res.ts.db(s);
        // Exactly one program counter per state.
        assert_eq!(db.cardinality(pc), 1);
        let at_q0 = db.contains(pc, &Tuple::from([q0]));
        let at_q1 = db.contains(pc, &Tuple::from([q1]));
        assert!(at_q0 ^ at_q1);
        // Invariants of the phases: Buf is nonempty exactly in q1 states
        // (just produced), Out nonempty only in q0 states (just consumed) —
        // except the initial state, which is q0 with nothing yet.
        if at_q1 {
            assert_eq!(db.cardinality(buf), 1);
            assert_eq!(db.cardinality(out), 0);
        } else if db.cardinality(out) > 0 {
            assert_eq!(db.cardinality(buf), 0);
        }
    }
}

#[test]
fn compiled_system_is_analyzable() {
    // The compiled system flows through every static analysis untouched.
    let dcds = build();
    let df = dcds_analysis::dataflow_graph(&dcds);
    // Produce feeds fresh values into Buf; consume copies Buf to Out; no
    // relation sustains itself: GR-acyclic.
    assert!(dcds_analysis::gr_acyclicity::is_gr_acyclic(&df));
    let res = dcds_abstraction::rcycl(&dcds, 500);
    assert!(res.complete);
}
