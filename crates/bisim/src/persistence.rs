//! Persistence-preserving bisimulation (Section 3.2).
//!
//! Differs from history preservation in the local and step conditions:
//! `h` is a (total) isomorphism between `db(s₁)` and `db(s₂)` — its domain
//! is exactly `ADOM(db(s₁))` — and a matching successor needs a bijection
//! `h'` extending only `h|ADOM(db(s₁)) ∩ ADOM(db(s₁'))`: identifications of
//! values that do not persist are forgotten. Invariance: Theorem 3.2 (µLP).

use crate::bijection::{constrained_isomorphisms, PartialBijection};
use dcds_core::{StateId, Ts};
use dcds_reldata::Value;
use std::collections::{BTreeSet, HashSet};

type Key = (StateId, Vec<(Value, Value)>, StateId);

fn key(s1: StateId, h: &PartialBijection, s2: StateId) -> Key {
    (s1, h.forward().iter().map(|(&x, &y)| (x, y)).collect(), s2)
}

struct Checker<'a> {
    ts1: &'a Ts,
    ts2: &'a Ts,
    rigid: &'a BTreeSet<Value>,
    assumed: HashSet<Key>,
    failed: HashSet<Key>,
}

impl Checker<'_> {
    fn bisim(&mut self, s1: StateId, h: &PartialBijection, s2: StateId) -> bool {
        let k = key(s1, h, s2);
        if self.failed.contains(&k) {
            return false;
        }
        if self.assumed.contains(&k) {
            return true;
        }
        self.assumed.insert(k.clone());
        let ok = self.step(s1, h, s2, true) && self.step(s1, h, s2, false);
        self.assumed.remove(&k);
        if !ok {
            self.failed.insert(k);
        }
        ok
    }

    /// One direction of the step condition (`forth` when `forward`, `back`
    /// otherwise).
    fn step(&mut self, s1: StateId, h: &PartialBijection, s2: StateId, forward: bool) -> bool {
        let (from_ts, to_ts) = if forward {
            (self.ts1, self.ts2)
        } else {
            (self.ts2, self.ts1)
        };
        let (from, to) = if forward { (s1, s2) } else { (s2, s1) };
        let succ_from: Vec<StateId> = from_ts.successors(from).to_vec();
        'outer: for fp in succ_from {
            for &tp in to_ts.successors(to) {
                let (s1p, s2p) = if forward { (fp, tp) } else { (tp, fp) };
                // Persisting values of s1: adom(s1) ∩ adom(s1').
                let persisting: BTreeSet<Value> = self
                    .ts1
                    .db(s1)
                    .active_domain()
                    .intersection(&self.ts1.db(s1p).active_domain())
                    .copied()
                    .collect();
                let pre = h.restrict(&persisting);
                for hp in
                    constrained_isomorphisms(self.ts1.db(s1p), self.ts2.db(s2p), &pre, self.rigid)
                {
                    if self.bisim(s1p, &hp, s2p) {
                        continue 'outer;
                    }
                }
            }
            return false;
        }
        true
    }
}

/// Is `s₁ ∼_h s₂` for the given isomorphism `h` (whose domain must be
/// exactly `ADOM(db(s₁))`)?
pub fn persistence_bisimilar_from(
    ts1: &Ts,
    s1: StateId,
    ts2: &Ts,
    s2: StateId,
    h: &PartialBijection,
    rigid: &BTreeSet<Value>,
) -> bool {
    let adom1 = ts1.db(s1).active_domain();
    if h.forward().len() != adom1.len()
        || !adom1.iter().all(|v| h.get(*v).is_some())
        || ts1.db(s1).rename(h.forward()) != *ts2.db(s2)
    {
        return false;
    }
    let mut checker = Checker {
        ts1,
        ts2,
        rigid,
        assumed: HashSet::new(),
        failed: HashSet::new(),
    };
    checker.bisim(s1, h, s2)
}

/// Is `Υ₁ ∼ Υ₂`?
pub fn persistence_bisimilar(ts1: &Ts, ts2: &Ts, rigid: &BTreeSet<Value>) -> bool {
    let h0s = constrained_isomorphisms(
        ts1.db(ts1.initial()),
        ts2.db(ts2.initial()),
        &PartialBijection::new(),
        rigid,
    );
    h0s.into_iter()
        .any(|h0| persistence_bisimilar_from(ts1, ts1.initial(), ts2, ts2.initial(), &h0, rigid))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcds_reldata::{ConstantPool, Instance, Schema, Tuple};

    fn setup() -> (ConstantPool, Schema) {
        let mut pool = ConstantPool::new();
        for n in ["a", "b", "c", "d"] {
            pool.intern(n);
        }
        let mut schema = Schema::new();
        schema.add_relation("P", 1).unwrap();
        (pool, schema)
    }

    fn p1(schema: &Schema, v: Value) -> Instance {
        Instance::from_facts([(schema.rel_id("P").unwrap(), Tuple::from([v]))])
    }

    #[test]
    fn forgetting_values_is_allowed() {
        // The discriminating example of history vs persistence:
        // ts1: P(a) -> {} -> P(a); ts2: P(a) -> {} -> P(d).
        // Persistence-preserving: bisimilar (the value is forgotten in the
        // empty state, so its later identity doesn't matter).
        // History-preserving: NOT bisimilar (tested in history.rs).
        let (pool, schema) = setup();
        let a = pool.get("a").unwrap();
        let d = pool.get("d").unwrap();
        let mut ts1 = Ts::new(p1(&schema, a));
        let m1 = ts1.add_state(Instance::new());
        let e1 = ts1.add_state(p1(&schema, a));
        ts1.add_edge(ts1.initial(), m1);
        ts1.add_edge(m1, e1);
        let mut ts2 = Ts::new(p1(&schema, a));
        let m2 = ts2.add_state(Instance::new());
        let e2 = ts2.add_state(p1(&schema, d));
        ts2.add_edge(ts2.initial(), m2);
        ts2.add_edge(m2, e2);
        assert!(persistence_bisimilar(&ts1, &ts2, &BTreeSet::new()));
        assert!(!crate::history::history_bisimilar(
            &ts1,
            &ts2,
            &BTreeSet::new()
        ));
    }

    #[test]
    fn persisting_values_must_keep_identity() {
        let (pool, schema) = setup();
        let a = pool.get("a").unwrap();
        let b = pool.get("b").unwrap();
        let schema2 = {
            let mut s = Schema::new();
            s.add_relation("P", 1).unwrap();
            s.add_relation("R", 1).unwrap();
            s
        };
        let p = schema2.rel_id("P").unwrap();
        let r = schema2.rel_id("R").unwrap();
        let _ = schema;
        // ts1: {P(a)} -> {P(a), R(a)}   (the persisting value gains R)
        // ts2: {P(a)} -> {P(a), R(b)}   (R holds a DIFFERENT value)
        // Not persistence-bisimilar: a persists, so h'(a)=a, but then R(a)
        // cannot be matched with R(b)... sizes of adom differ anyway; use
        // {P(b), R(b)} as target to keep sizes equal:
        // ts2': {P(a)} -> {P(b), R(b)} — a does not persist on ts1 side? It
        // does (a ∈ adom of both ts1 states) — h'(a)=a is forced, but the
        // successor db2 has no a: fail.
        let mut ts1 = Ts::new(Instance::from_facts([(p, Tuple::from([a]))]));
        let s1 = ts1.add_state(Instance::from_facts([
            (p, Tuple::from([a])),
            (r, Tuple::from([a])),
        ]));
        ts1.add_edge(ts1.initial(), s1);
        let mut ts2 = Ts::new(Instance::from_facts([(p, Tuple::from([a]))]));
        let s2 = ts2.add_state(Instance::from_facts([
            (p, Tuple::from([b])),
            (r, Tuple::from([b])),
        ]));
        ts2.add_edge(ts2.initial(), s2);
        assert!(!persistence_bisimilar(&ts1, &ts2, &BTreeSet::new()));
        // But replacing ts1's successor consistently is fine.
        let mut ts3 = Ts::new(Instance::from_facts([(p, Tuple::from([a]))]));
        let s3 = ts3.add_state(Instance::from_facts([
            (p, Tuple::from([b])),
            (r, Tuple::from([b])),
        ]));
        ts3.add_edge(ts3.initial(), s3);
        assert!(persistence_bisimilar(&ts1, &ts1, &BTreeSet::new()));
        assert!(persistence_bisimilar(&ts2, &ts3, &BTreeSet::new()));
    }

    #[test]
    fn cycles_coinductive() {
        let (pool, schema) = setup();
        let a = pool.get("a").unwrap();
        let mut ts1 = Ts::new(p1(&schema, a));
        ts1.add_edge(ts1.initial(), ts1.initial());
        let mut ts2 = Ts::new(p1(&schema, a));
        let s = ts2.add_state(p1(&schema, a));
        ts2.add_edge(ts2.initial(), s);
        ts2.add_edge(s, ts2.initial());
        let rigid: BTreeSet<Value> = [a].into_iter().collect();
        assert!(persistence_bisimilar(&ts1, &ts2, &rigid));
    }

    #[test]
    fn deadlock_vs_live_not_bisimilar() {
        let (pool, schema) = setup();
        let a = pool.get("a").unwrap();
        let ts1 = Ts::new(p1(&schema, a));
        let mut ts2 = Ts::new(p1(&schema, a));
        ts2.add_edge(ts2.initial(), ts2.initial());
        assert!(!persistence_bisimilar(&ts1, &ts2, &BTreeSet::new()));
    }
}
