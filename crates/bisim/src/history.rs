//! History-preserving bisimulation (Section 3.1).
//!
//! `⟨s₁, h, s₂⟩ ∈ B` requires: (1) `h` induces an isomorphism between
//! `db(s₁)` and `db(s₂)`; (2,3) every move on either side is matched by a
//! move on the other with a bijection `h'` *extending `h`* — the whole
//! history of identifications is carried forward. Invariance: Theorem 3.1
//! (µLA formulas cannot distinguish history-bisimilar systems).

use crate::bijection::{constrained_isomorphisms, PartialBijection};
use dcds_core::{StateId, Ts};
use dcds_reldata::Value;
use std::collections::{BTreeSet, HashSet};

type Key = (StateId, Vec<(Value, Value)>, StateId);

fn key(s1: StateId, h: &PartialBijection, s2: StateId) -> Key {
    (s1, h.forward().iter().map(|(&x, &y)| (x, y)).collect(), s2)
}

struct Checker<'a> {
    ts1: &'a Ts,
    ts2: &'a Ts,
    rigid: &'a BTreeSet<Value>,
    assumed: HashSet<Key>,
    failed: HashSet<Key>,
}

impl Checker<'_> {
    /// Coinductive check of `s₁ ≈_h s₂`. `h` must already induce an
    /// isomorphism between the two databases.
    fn bisim(&mut self, s1: StateId, h: &PartialBijection, s2: StateId) -> bool {
        let k = key(s1, h, s2);
        if self.failed.contains(&k) {
            return false;
        }
        if self.assumed.contains(&k) {
            // Coinduction hypothesis: the cycle is self-consistent.
            return true;
        }
        self.assumed.insert(k.clone());
        let ok = self.forth(s1, h, s2) && self.back(s1, h, s2);
        self.assumed.remove(&k);
        if !ok {
            self.failed.insert(k);
        }
        ok
    }

    /// Condition 2: each successor of s₁ is matched by some successor of
    /// s₂ under some extension of h.
    fn forth(&mut self, s1: StateId, h: &PartialBijection, s2: StateId) -> bool {
        let succ1: Vec<StateId> = self.ts1.successors(s1).to_vec();
        'outer: for s1p in succ1 {
            for &s2p in self.ts2.successors(s2) {
                // h' must be an isomorphism db1(s1') → db2(s2') extending h
                // (pre-constrained by ALL of h, per history preservation).
                for hp in
                    constrained_isomorphisms(self.ts1.db(s1p), self.ts2.db(s2p), h, self.rigid)
                {
                    // h' = h ∪ hp must itself be a bijection.
                    let mut merged = h.clone();
                    let mut consistent = true;
                    for (&x, &y) in hp.forward() {
                        if !merged.insert(x, y) {
                            consistent = false;
                            break;
                        }
                    }
                    if consistent && self.bisim(s1p, &merged, s2p) {
                        continue 'outer;
                    }
                }
            }
            return false;
        }
        true
    }

    /// Condition 3 — symmetric to [`Checker::forth`].
    fn back(&mut self, s1: StateId, h: &PartialBijection, s2: StateId) -> bool {
        let succ2: Vec<StateId> = self.ts2.successors(s2).to_vec();
        'outer: for s2p in succ2 {
            for &s1p in self.ts1.successors(s1) {
                for hp in
                    constrained_isomorphisms(self.ts1.db(s1p), self.ts2.db(s2p), h, self.rigid)
                {
                    let mut merged = h.clone();
                    let mut consistent = true;
                    for (&x, &y) in hp.forward() {
                        if !merged.insert(x, y) {
                            consistent = false;
                            break;
                        }
                    }
                    if consistent && self.bisim(s1p, &merged, s2p) {
                        continue 'outer;
                    }
                }
            }
            return false;
        }
        true
    }
}

/// Is `s₁ ≈_h s₂` for the given starting bijection? `h` must induce an
/// isomorphism between the two state databases (checked).
pub fn history_bisimilar_from(
    ts1: &Ts,
    s1: StateId,
    ts2: &Ts,
    s2: StateId,
    h: &PartialBijection,
    rigid: &BTreeSet<Value>,
) -> bool {
    // h must map db(s1) exactly onto db(s2).
    if ts1.db(s1).rename(h.forward()) != *ts2.db(s2) {
        return false;
    }
    let mut checker = Checker {
        ts1,
        ts2,
        rigid,
        assumed: HashSet::new(),
        failed: HashSet::new(),
    };
    checker.bisim(s1, h, s2)
}

/// Is `Υ₁ ≈ Υ₂`: does some initial bijection (an isomorphism between the
/// initial databases, identity on `rigid`) witness history-preserving
/// bisimilarity of the initial states?
pub fn history_bisimilar(ts1: &Ts, ts2: &Ts, rigid: &BTreeSet<Value>) -> bool {
    let h0s = constrained_isomorphisms(
        ts1.db(ts1.initial()),
        ts2.db(ts2.initial()),
        &PartialBijection::new(),
        rigid,
    );
    h0s.into_iter()
        .any(|h0| history_bisimilar_from(ts1, ts1.initial(), ts2, ts2.initial(), &h0, rigid))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcds_reldata::{ConstantPool, Instance, Schema, Tuple};

    fn setup() -> (ConstantPool, Schema) {
        let mut pool = ConstantPool::new();
        for n in ["a", "b", "c", "d", "e"] {
            pool.intern(n);
        }
        let mut schema = Schema::new();
        schema.add_relation("P", 1).unwrap();
        (pool, schema)
    }

    fn p1(schema: &Schema, v: Value) -> Instance {
        Instance::from_facts([(schema.rel_id("P").unwrap(), Tuple::from([v]))])
    }

    #[test]
    fn isomorphic_single_states_bisimilar() {
        let (pool, schema) = setup();
        let a = pool.get("a").unwrap();
        let b = pool.get("b").unwrap();
        let ts1 = Ts::new(p1(&schema, a));
        let ts2 = Ts::new(p1(&schema, b));
        assert!(history_bisimilar(&ts1, &ts2, &BTreeSet::new()));
        // With both rigid, the renaming is not allowed.
        let rigid: BTreeSet<Value> = [a, b].into_iter().collect();
        assert!(!history_bisimilar(&ts1, &ts2, &rigid));
    }

    #[test]
    fn branching_mismatch_detected() {
        let (pool, schema) = setup();
        let a = pool.get("a").unwrap();
        let b = pool.get("b").unwrap();
        // ts1: a -> b; ts2: a (deadlock). Not bisimilar.
        let mut ts1 = Ts::new(p1(&schema, a));
        let s1 = ts1.add_state(p1(&schema, b));
        ts1.add_edge(ts1.initial(), s1);
        let ts2 = Ts::new(p1(&schema, a));
        let rigid: BTreeSet<Value> = [a].into_iter().collect();
        assert!(!history_bisimilar(&ts1, &ts2, &rigid));
    }

    #[test]
    fn history_remembers_identifications() {
        // The key difference from persistence-preservation: values that
        // disappear and come back must keep their identification.
        //
        // ts1: P(a) -> {} -> P(a) (same value returns)
        // ts2: P(a) -> {} -> P(d) (a different non-rigid value returns)
        // With `a` non-rigid the initial isomorphism maps a↦a (or a↦d...);
        // history-preservation forces the third state to reuse the image
        // chosen at the first, so ts1 ≈ ts2 — wait, it IS bisimilar via
        // h0 = {a↦d}? No: then state 0 maps a↦d, but db2(s0)=P(a), so
        // h0={a↦a}; at step 2 extension must map a↦a again while db needs
        // a↦d: fail. Not bisimilar.
        let (pool, schema) = setup();
        let a = pool.get("a").unwrap();
        let d = pool.get("d").unwrap();
        let mut ts1 = Ts::new(p1(&schema, a));
        let m1 = ts1.add_state(Instance::new());
        let e1 = ts1.add_state(p1(&schema, a));
        ts1.add_edge(ts1.initial(), m1);
        ts1.add_edge(m1, e1);
        let mut ts2 = Ts::new(p1(&schema, a));
        let m2 = ts2.add_state(Instance::new());
        let e2 = ts2.add_state(p1(&schema, d));
        ts2.add_edge(ts2.initial(), m2);
        ts2.add_edge(m2, e2);
        assert!(!history_bisimilar(&ts1, &ts2, &BTreeSet::new()));
        // Sanity: ts1 is history-bisimilar to itself.
        assert!(history_bisimilar(&ts1, &ts1, &BTreeSet::new()));
    }

    #[test]
    fn cycles_are_handled_coinductively() {
        let (pool, schema) = setup();
        let a = pool.get("a").unwrap();
        let b = pool.get("b").unwrap();
        // Self-loop on P(a) vs 2-cycle P(b) <-> P(b): bisimilar.
        let mut ts1 = Ts::new(p1(&schema, a));
        ts1.add_edge(ts1.initial(), ts1.initial());
        let mut ts2 = Ts::new(p1(&schema, b));
        let s = ts2.add_state(p1(&schema, b));
        ts2.add_edge(ts2.initial(), s);
        ts2.add_edge(s, ts2.initial());
        assert!(history_bisimilar(&ts1, &ts2, &BTreeSet::new()));
    }

    #[test]
    fn unfolding_is_bisimilar() {
        let (pool, schema) = setup();
        let a = pool.get("a").unwrap();
        // Loop P(a)->P(a) vs chain P(a)->P(a)->loop: bisimilar (with rigid a).
        let rigid: BTreeSet<Value> = [a].into_iter().collect();
        let mut ts1 = Ts::new(p1(&schema, a));
        ts1.add_edge(ts1.initial(), ts1.initial());
        let mut ts2 = Ts::new(p1(&schema, a));
        let s = ts2.add_state(p1(&schema, a));
        ts2.add_edge(ts2.initial(), s);
        ts2.add_edge(s, s);
        assert!(history_bisimilar(&ts1, &ts2, &rigid));
    }
}
