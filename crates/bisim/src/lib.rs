//! # dcds-bisim
//!
//! History-preserving and persistence-preserving bisimulations between
//! database-labeled transition systems (Sections 3.1 and 3.2 of the paper).
//!
//! Both notions relate triples `⟨s₁, h, s₂⟩` where `h` is a partial
//! bijection between the data domains inducing an isomorphism between
//! `db(s₁)` and `db(s₂)`:
//!
//! * **history-preserving** (≈): matching successors must extend `h`
//!   *entirely* — once two values are identified, the identification is
//!   remembered forever (this is what lets µLA quantify over values that
//!   have left the active domain);
//! * **persistence-preserving** (∼): matching successors need only extend
//!   `h` restricted to the values that *persist*
//!   (`h|ADOM(db(s₁)) ∩ ADOM(db(s₁'))`) — identifications are forgotten
//!   with the values, matching µLP's LIVE-guarded modalities.
//!
//! The checkers ([`history::history_bisimilar`],
//! [`persistence::persistence_bisimilar`]) implement the coinductive
//! definition directly: a cyclic proof obligation is discharged by the
//! coinduction hypothesis, failures are memoized. They are exponential in
//! the worst case — bisimilarity over data domains subsumes graph
//! isomorphism — but the systems we check (paper examples, abstractions of
//! small DCDSs) are small; the checkers exist to *machine-verify* instances
//! of Theorems 4.3 and 5.4, not to be a production equivalence engine.

pub mod bijection;
pub mod history;
pub mod persistence;

pub use bijection::{constrained_isomorphisms, PartialBijection};
pub use history::{history_bisimilar, history_bisimilar_from};
pub use persistence::{persistence_bisimilar, persistence_bisimilar_from};
