//! Partial bijections between value domains, and the enumeration of
//! database isomorphisms consistent with one.

use dcds_reldata::{Instance, Value};
use std::collections::{BTreeMap, BTreeSet};

/// A partial bijection between two value domains, stored with both
/// directions for O(log n) inverse lookups.
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct PartialBijection {
    fwd: BTreeMap<Value, Value>,
    bwd: BTreeMap<Value, Value>,
}

impl PartialBijection {
    /// Empty bijection.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from a forward map; fails (returns `None`) if not injective.
    pub fn from_map(map: &BTreeMap<Value, Value>) -> Option<Self> {
        let mut out = PartialBijection::new();
        for (&x, &y) in map {
            if !out.insert(x, y) {
                return None;
            }
        }
        Some(out)
    }

    /// Insert a pair; returns false (and leaves the bijection unchanged) on
    /// conflict with injectivity/functionality.
    pub fn insert(&mut self, x: Value, y: Value) -> bool {
        match (self.fwd.get(&x), self.bwd.get(&y)) {
            (None, None) => {
                self.fwd.insert(x, y);
                self.bwd.insert(y, x);
                true
            }
            (Some(&y0), _) if y0 == y => true,
            _ => false,
        }
    }

    /// Forward image.
    pub fn get(&self, x: Value) -> Option<Value> {
        self.fwd.get(&x).copied()
    }

    /// Inverse image.
    pub fn get_inv(&self, y: Value) -> Option<Value> {
        self.bwd.get(&y).copied()
    }

    /// Number of pairs.
    pub fn len(&self) -> usize {
        self.fwd.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.fwd.is_empty()
    }

    /// Domain of the bijection.
    pub fn domain(&self) -> impl Iterator<Item = Value> + '_ {
        self.fwd.keys().copied()
    }

    /// Forward map view.
    pub fn forward(&self) -> &BTreeMap<Value, Value> {
        &self.fwd
    }

    /// Restriction to a set of domain values (`h|_D` in the paper,
    /// footnote 6).
    pub fn restrict(&self, dom: &BTreeSet<Value>) -> PartialBijection {
        let mut out = PartialBijection::new();
        for (&x, &y) in &self.fwd {
            if dom.contains(&x) {
                out.insert(x, y);
            }
        }
        out
    }

    /// Does `other` extend `self` (agreeing on both directions)?
    pub fn extended_by(&self, other: &PartialBijection) -> bool {
        self.fwd.iter().all(|(&x, &y)| other.get(x) == Some(y))
    }
}

/// Enumerate all isomorphisms `g : ADOM(db1) → ADOM(db2)` (mapping `db1`
/// exactly onto `db2`) that are *compatible* with the partial bijection
/// `pre`: where `pre` is defined (in either direction) on a value of the
/// respective active domain, `g` must agree with it; `rigid` values must be
/// mapped to themselves.
///
/// Compatibility in both directions is exactly the paper's notion of a
/// bijection *extending* `pre`: no new value may be mapped onto a value
/// already in `pre`'s image.
pub fn constrained_isomorphisms(
    db1: &Instance,
    db2: &Instance,
    pre: &PartialBijection,
    rigid: &BTreeSet<Value>,
) -> Vec<PartialBijection> {
    let adom1: Vec<Value> = db1.active_domain().into_iter().collect();
    let adom2: BTreeSet<Value> = db2.active_domain();
    if adom1.len() != adom2.len() || db1.len() != db2.len() {
        return Vec::new();
    }
    let mut out = Vec::new();
    let mut g = PartialBijection::new();
    backtrack(db1, db2, &adom1, &adom2, pre, rigid, 0, &mut g, &mut out);
    out
}

#[allow(clippy::too_many_arguments)]
fn backtrack(
    db1: &Instance,
    db2: &Instance,
    adom1: &[Value],
    adom2: &BTreeSet<Value>,
    pre: &PartialBijection,
    rigid: &BTreeSet<Value>,
    k: usize,
    g: &mut PartialBijection,
    out: &mut Vec<PartialBijection>,
) {
    if k == adom1.len() {
        // Verify g maps db1 exactly onto db2.
        if db1.rename(g.forward()) == *db2 {
            out.push(g.clone());
        }
        return;
    }
    let x = adom1[k];
    let candidates: Vec<Value> = if rigid.contains(&x) {
        // A rigid value maps to itself; a pre-constraint disagreeing with
        // that is unsatisfiable.
        match pre.get(x) {
            Some(y) if y != x => Vec::new(),
            _ => vec![x],
        }
    } else if let Some(y) = pre.get(x) {
        vec![y]
    } else {
        adom2
            .iter()
            .copied()
            // A fresh x must not map onto a value pre already accounts for,
            // nor onto a rigid constant, and must respect injectivity.
            .filter(|y| pre.get_inv(*y).is_none() && !rigid.contains(y))
            .collect()
    };
    for y in candidates {
        if !adom2.contains(&y) {
            continue;
        }
        let snapshot = g.clone();
        if g.insert(x, y) && g.get(x) == Some(y) {
            backtrack(db1, db2, adom1, adom2, pre, rigid, k + 1, g, out);
        }
        *g = snapshot;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcds_reldata::{ConstantPool, Schema, Tuple};

    fn setup() -> (ConstantPool, Schema) {
        let mut pool = ConstantPool::new();
        for n in ["a", "b", "c", "d"] {
            pool.intern(n);
        }
        let mut schema = Schema::new();
        schema.add_relation("P", 1).unwrap();
        schema.add_relation("Q", 2).unwrap();
        (pool, schema)
    }

    #[test]
    fn partial_bijection_insert_conflicts() {
        let (pool, _) = setup();
        let a = pool.get("a").unwrap();
        let b = pool.get("b").unwrap();
        let c = pool.get("c").unwrap();
        let mut h = PartialBijection::new();
        assert!(h.insert(a, b));
        assert!(h.insert(a, b)); // idempotent
        assert!(!h.insert(a, c)); // functional conflict
        assert!(!h.insert(c, b)); // injective conflict
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn restriction_and_extension() {
        let (pool, _) = setup();
        let a = pool.get("a").unwrap();
        let b = pool.get("b").unwrap();
        let c = pool.get("c").unwrap();
        let d = pool.get("d").unwrap();
        let mut h = PartialBijection::new();
        h.insert(a, b);
        h.insert(c, d);
        let r = h.restrict(&[a].into_iter().collect());
        assert_eq!(r.len(), 1);
        assert!(r.extended_by(&h));
        assert!(!h.extended_by(&r));
    }

    #[test]
    fn enumerates_isomorphisms() {
        let (pool, schema) = setup();
        let p = schema.rel_id("P").unwrap();
        let a = pool.get("a").unwrap();
        let b = pool.get("b").unwrap();
        let c = pool.get("c").unwrap();
        let d = pool.get("d").unwrap();
        // {P(a), P(b)} vs {P(c), P(d)}: 2 isomorphisms.
        let db1 = Instance::from_facts([(p, Tuple::from([a])), (p, Tuple::from([b]))]);
        let db2 = Instance::from_facts([(p, Tuple::from([c])), (p, Tuple::from([d]))]);
        let isos = constrained_isomorphisms(&db1, &db2, &PartialBijection::new(), &BTreeSet::new());
        assert_eq!(isos.len(), 2);
    }

    #[test]
    fn pre_constrains_choices() {
        let (pool, schema) = setup();
        let p = schema.rel_id("P").unwrap();
        let a = pool.get("a").unwrap();
        let b = pool.get("b").unwrap();
        let c = pool.get("c").unwrap();
        let d = pool.get("d").unwrap();
        let db1 = Instance::from_facts([(p, Tuple::from([a])), (p, Tuple::from([b]))]);
        let db2 = Instance::from_facts([(p, Tuple::from([c])), (p, Tuple::from([d]))]);
        let mut pre = PartialBijection::new();
        pre.insert(a, c);
        let isos = constrained_isomorphisms(&db1, &db2, &pre, &BTreeSet::new());
        assert_eq!(isos.len(), 1);
        assert_eq!(isos[0].get(b), Some(d));
    }

    #[test]
    fn inverse_constraint_blocks_reuse() {
        let (pool, schema) = setup();
        let p = schema.rel_id("P").unwrap();
        let a = pool.get("a").unwrap();
        let b = pool.get("b").unwrap();
        let c = pool.get("c").unwrap();
        // db1 = {P(b)}, db2 = {P(c)}; pre maps a ↦ c (a not in adom1).
        // b must not map to c because c is already pre's image of a.
        let db1 = Instance::from_facts([(p, Tuple::from([b]))]);
        let db2 = Instance::from_facts([(p, Tuple::from([c]))]);
        let mut pre = PartialBijection::new();
        pre.insert(a, c);
        let isos = constrained_isomorphisms(&db1, &db2, &pre, &BTreeSet::new());
        assert!(isos.is_empty());
    }

    #[test]
    fn rigid_values_fixed() {
        let (pool, schema) = setup();
        let p = schema.rel_id("P").unwrap();
        let a = pool.get("a").unwrap();
        let b = pool.get("b").unwrap();
        let db1 = Instance::from_facts([(p, Tuple::from([a]))]);
        let db2 = Instance::from_facts([(p, Tuple::from([b]))]);
        let rigid: BTreeSet<Value> = [a, b].into_iter().collect();
        assert!(constrained_isomorphisms(&db1, &db2, &PartialBijection::new(), &rigid).is_empty());
        let db3 = Instance::from_facts([(p, Tuple::from([a]))]);
        assert_eq!(
            constrained_isomorphisms(&db1, &db3, &PartialBijection::new(), &rigid).len(),
            1
        );
    }

    #[test]
    fn structure_mismatch_no_isos() {
        let (pool, schema) = setup();
        let q = schema.rel_id("Q").unwrap();
        let a = pool.get("a").unwrap();
        let b = pool.get("b").unwrap();
        let c = pool.get("c").unwrap();
        let d = pool.get("d").unwrap();
        // Q(a,a) (loop) vs Q(c,d) (edge): same sizes, not isomorphic... note
        // adom sizes differ (1 vs 2), caught early.
        let db1 = Instance::from_facts([(q, Tuple::from([a, a]))]);
        let db2 = Instance::from_facts([(q, Tuple::from([c, d]))]);
        assert!(
            constrained_isomorphisms(&db1, &db2, &PartialBijection::new(), &BTreeSet::new())
                .is_empty()
        );
        // Q(a,b), Q(b,a) vs Q(c,d), Q(d,c): isomorphic (2 ways).
        let db3 = Instance::from_facts([(q, Tuple::from([a, b])), (q, Tuple::from([b, a]))]);
        let db4 = Instance::from_facts([(q, Tuple::from([c, d])), (q, Tuple::from([d, c]))]);
        assert_eq!(
            constrained_isomorphisms(&db3, &db4, &PartialBijection::new(), &BTreeSet::new()).len(),
            2
        );
    }
}
