//! Span-path profiling: self/inclusive time per span *path*, folded-stack
//! (flamegraph) export, and the "top spans" table.
//!
//! The recorder stores completed spans flat (one [`Event`] per span, in
//! per-thread completion order). This module reconstructs the span tree and
//! aggregates by **path** — the `;`-joined chain of span names from the
//! root, e.g. `run;det_abstraction;frontier_level;step_phase`. Per path it
//! tracks:
//!
//! * **inclusive** time — the span's full duration;
//! * **self** (exclusive) time — duration minus time spent in same-thread
//!   child spans, clamped at zero (the standard flamegraph weight);
//! * allocation deltas (`alloc_bytes`, `allocs`, `peak_live_delta`) when
//!   the run recorded them (`--profile-alloc`), with a self/exclusive bytes
//!   figure computed the same way as self time.
//!
//! # Tree reconstruction
//!
//! Within one thread, spans close strictly child-before-parent (RAII), so
//! the per-thread event stream is a post-order traversal and `depth` tells
//! us where each span sits: when a span at depth `d` completes, every
//! not-yet-adopted completed span at depth `d+1` is one of its children.
//! A pending-stack pass rebuilds the forest in O(n).
//!
//! Worker threads (tid ≠ 0) record their own stacks. These are kept as
//! separate roots under a synthetic `workers` segment rather than spliced
//! into the driver tree: worker spans run *in parallel* with the driver
//! span that spawned them, so folding them under it would inflate the
//! driver root's inclusive time past wall clock. Keeping them separate
//! preserves the invariant that the driver root's folded total ≈ run wall
//! time, which the CLI acceptance check relies on.
//!
//! # Folded-stack output
//!
//! [`folded`] emits Brendan-Gregg collapsed-stack lines — `path weight`,
//! one per path — directly consumable by `inferno-flamegraph`, speedscope,
//! or `flamegraph.pl`. Weight is self time in microseconds
//! ([`Weight::SelfTimeUs`]) or self allocated bytes
//! ([`Weight::SelfAllocBytes`]).

use crate::export::fmt_us;
use crate::{Event, FieldValue};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Synthetic root segment for worker-thread (tid ≠ 0) stacks.
pub const WORKERS_ROOT: &str = "workers";

/// Aggregated statistics for one span path.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PathStats {
    /// Number of spans recorded at this path.
    pub count: u64,
    /// Total inclusive (wall) time, microseconds.
    pub incl_us: u64,
    /// Total self time: inclusive minus same-thread children, clamped ≥ 0.
    pub self_us: u64,
    /// Total bytes allocated while spans at this path were open (inclusive).
    pub alloc_bytes: u64,
    /// Self bytes: inclusive bytes minus same-thread children, clamped ≥ 0.
    pub self_alloc_bytes: u64,
    /// Total allocation count (inclusive).
    pub allocs: u64,
    /// Largest peak-live-above-open seen by any span at this path.
    pub peak_live_delta: u64,
}

/// What a folded-stack line is weighted by.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Weight {
    /// Self time in microseconds (the classic CPU flamegraph).
    SelfTimeUs,
    /// Self allocated bytes (an allocation flamegraph; needs
    /// `--profile-alloc`).
    SelfAllocBytes,
}

struct Node {
    event: usize,
    children: Vec<Node>,
}

fn field_u64(e: &Event, key: &str) -> u64 {
    e.fields
        .iter()
        .find(|(k, _)| *k == key)
        .and_then(|(_, v)| match v {
            FieldValue::U64(n) => Some(*n),
            FieldValue::I64(n) => u64::try_from(*n).ok(),
            _ => None,
        })
        .unwrap_or(0)
}

/// Rebuild one thread's span forest from its completion-ordered events.
/// `idxs` are indices into `events`, already in `seq` order.
fn build_forest(events: &[Event], idxs: &[usize]) -> Vec<Node> {
    // pending[d] holds completed-but-unadopted subtrees rooted at depth d.
    let mut pending: Vec<Vec<Node>> = Vec::new();
    for &i in idxs {
        let d = events[i].depth as usize;
        if pending.len() <= d + 1 {
            pending.resize_with(d + 2, Vec::new);
        }
        // Everything deeper than d that is still pending belongs under this
        // span (normally exactly depth d+1; deeper levels are defensive).
        let mut children = Vec::new();
        for level in pending.iter_mut().skip(d + 1) {
            children.append(level);
        }
        pending[d].push(Node { event: i, children });
    }
    // Anything left pending has no parent: treat as roots, outermost first.
    let mut roots = Vec::new();
    for level in &mut pending {
        roots.append(level);
    }
    roots
}

fn accumulate(events: &[Event], node: &Node, prefix: &str, out: &mut BTreeMap<String, PathStats>) {
    let e = &events[node.event];
    let path = if prefix.is_empty() {
        e.name.to_string()
    } else {
        format!("{prefix};{}", e.name)
    };
    let child_dur: u64 = node.children.iter().map(|c| events[c.event].dur_us).sum();
    let bytes = field_u64(e, "alloc_bytes");
    let child_bytes: u64 = node
        .children
        .iter()
        .map(|c| field_u64(&events[c.event], "alloc_bytes"))
        .sum();
    let s = out.entry(path.clone()).or_default();
    s.count += 1;
    s.incl_us += e.dur_us;
    s.self_us += e.dur_us.saturating_sub(child_dur);
    s.alloc_bytes += bytes;
    s.self_alloc_bytes += bytes.saturating_sub(child_bytes);
    s.allocs += field_u64(e, "allocs");
    s.peak_live_delta = s.peak_live_delta.max(field_u64(e, "peak_live_delta"));
    for c in &node.children {
        accumulate(events, c, &path, out);
    }
}

/// Aggregate a run's spans into per-path statistics. Driver (tid 0) spans
/// keep their natural paths; worker stacks go under [`WORKERS_ROOT`].
pub fn aggregate(events: &[Event]) -> BTreeMap<String, PathStats> {
    let mut by_tid: BTreeMap<u32, Vec<usize>> = BTreeMap::new();
    for (i, e) in events.iter().enumerate() {
        by_tid.entry(e.tid).or_default().push(i);
    }
    for idxs in by_tid.values_mut() {
        idxs.sort_by_key(|&i| events[i].seq);
    }
    let mut out = BTreeMap::new();
    for (&tid, idxs) in &by_tid {
        let prefix = if tid == 0 { "" } else { WORKERS_ROOT };
        for root in build_forest(events, idxs) {
            accumulate(events, &root, prefix, &mut out);
        }
    }
    out
}

/// Render collapsed-stack lines (`path weight`), skipping zero-weight
/// paths. Lines are in path order, which folded-stack consumers accept
/// (they aggregate by path themselves).
pub fn folded(stats: &BTreeMap<String, PathStats>, weight: Weight) -> String {
    let mut out = String::new();
    for (path, s) in stats {
        let w = match weight {
            Weight::SelfTimeUs => s.self_us,
            Weight::SelfAllocBytes => s.self_alloc_bytes,
        };
        if w > 0 {
            let _ = writeln!(out, "{path} {w}");
        }
    }
    out
}

fn fmt_bytes(b: u64) -> String {
    if b >= 1 << 30 {
        format!("{:.2}GiB", b as f64 / (1u64 << 30) as f64)
    } else if b >= 1 << 20 {
        format!("{:.1}MiB", b as f64 / (1u64 << 20) as f64)
    } else if b >= 1 << 10 {
        format!("{:.1}KiB", b as f64 / 1024.0)
    } else {
        format!("{b}B")
    }
}

/// The human "top spans" table printed under `--stats`: paths ranked by
/// self time, with allocation columns when the run recorded any.
pub fn top_spans(stats: &BTreeMap<String, PathStats>, limit: usize) -> String {
    let mut rows: Vec<(&String, &PathStats)> = stats.iter().collect();
    rows.sort_by(|a, b| b.1.self_us.cmp(&a.1.self_us).then(a.0.cmp(b.0)));
    rows.truncate(limit);
    let has_alloc = rows.iter().any(|(_, s)| s.alloc_bytes > 0);
    let mut out = String::new();
    let _ = writeln!(out, "== top spans (self time) ==");
    if has_alloc {
        let _ = writeln!(
            out,
            "  {:<44} {:>7} {:>10} {:>10} {:>10} {:>10}",
            "path", "count", "self", "incl", "alloc", "peak\u{0394}"
        );
    } else {
        let _ = writeln!(
            out,
            "  {:<44} {:>7} {:>10} {:>10}",
            "path", "count", "self", "incl"
        );
    }
    for (path, s) in rows {
        let shown = if path.len() > 44 {
            format!("…{}", &path[path.len() - 43..])
        } else {
            path.to_string()
        };
        if has_alloc {
            let _ = writeln!(
                out,
                "  {:<44} {:>7} {:>10} {:>10} {:>10} {:>10}",
                shown,
                s.count,
                fmt_us(s.self_us),
                fmt_us(s.incl_us),
                fmt_bytes(s.alloc_bytes),
                fmt_bytes(s.peak_live_delta)
            );
        } else {
            let _ = writeln!(
                out,
                "  {:<44} {:>7} {:>10} {:>10}",
                shown,
                s.count,
                fmt_us(s.self_us),
                fmt_us(s.incl_us)
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &'static str, tid: u32, seq: u64, depth: u32, start_us: u64, dur_us: u64) -> Event {
        Event {
            name,
            start_us,
            dur_us,
            tid,
            seq,
            depth,
            fields: Vec::new(),
        }
    }

    #[test]
    fn rebuilds_nesting_and_self_time() {
        // Driver: root(0..100) > level(10..40) > step(12..30); then a second
        // level(50..90). Completion order: step, level, level2, root.
        let events = vec![
            ev("step", 0, 0, 2, 12, 18),
            ev("level", 0, 1, 1, 10, 30),
            ev("level", 0, 2, 1, 50, 40),
            ev("root", 0, 3, 0, 0, 100),
        ];
        let stats = aggregate(&events);
        assert_eq!(stats["root"].incl_us, 100);
        assert_eq!(stats["root"].self_us, 100 - 30 - 40);
        assert_eq!(stats["root;level"].count, 2);
        assert_eq!(stats["root;level"].incl_us, 70);
        assert_eq!(stats["root;level"].self_us, 70 - 18);
        assert_eq!(stats["root;level;step"].self_us, 18);
        // Total self time equals the root's inclusive time.
        let total_self: u64 = stats.values().map(|s| s.self_us).sum();
        assert_eq!(total_self, 100);
    }

    #[test]
    fn worker_stacks_get_their_own_root() {
        let events = vec![
            ev("root", 0, 0, 0, 0, 100),
            ev("unit", 1, 0, 0, 20, 30),
            ev("unit", 2, 0, 0, 20, 35),
        ];
        let stats = aggregate(&events);
        assert_eq!(stats["root"].self_us, 100, "workers don't deflate driver");
        let w = &stats[&format!("{WORKERS_ROOT};unit")];
        assert_eq!(w.count, 2);
        assert_eq!(w.incl_us, 65);
    }

    #[test]
    fn folded_lines_are_path_space_weight() {
        let events = vec![ev("inner", 0, 0, 1, 5, 20), ev("outer", 0, 1, 0, 0, 50)];
        let stats = aggregate(&events);
        let text = folded(&stats, Weight::SelfTimeUs);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines, vec!["outer 30", "outer;inner 20"]);
        // Alloc-weighted output is empty without alloc fields.
        assert_eq!(folded(&stats, Weight::SelfAllocBytes), "");
    }

    #[test]
    fn alloc_fields_aggregate_with_self_attribution() {
        let mut inner = ev("inner", 0, 0, 1, 5, 20);
        inner.fields = vec![
            ("alloc_bytes", FieldValue::U64(1000)),
            ("allocs", FieldValue::U64(10)),
            ("peak_live_delta", FieldValue::U64(800)),
        ];
        let mut outer = ev("outer", 0, 1, 0, 0, 50);
        outer.fields = vec![
            ("alloc_bytes", FieldValue::U64(1500)),
            ("allocs", FieldValue::U64(15)),
            ("peak_live_delta", FieldValue::U64(900)),
        ];
        let stats = aggregate(&[inner, outer]);
        assert_eq!(stats["outer"].alloc_bytes, 1500);
        assert_eq!(stats["outer"].self_alloc_bytes, 500);
        assert_eq!(stats["outer;inner"].self_alloc_bytes, 1000);
        let text = folded(&stats, Weight::SelfAllocBytes);
        assert!(text.contains("outer 500"), "{text}");
        assert!(text.contains("outer;inner 1000"), "{text}");
        let table = top_spans(&stats, 10);
        assert!(table.contains("alloc"), "{table}");
        assert!(table.contains("1.5KiB"), "{table}");
    }

    #[test]
    fn top_spans_ranks_by_self_time() {
        let events = vec![
            ev("cheap", 0, 0, 1, 0, 5),
            ev("hot", 0, 1, 1, 10, 80),
            ev("root", 0, 2, 0, 0, 100),
        ];
        let stats = aggregate(&events);
        let table = top_spans(&stats, 2);
        let hot_pos = table.find("root;hot").unwrap();
        assert!(!table.contains("root;cheap"), "limit applies: {table}");
        let root_pos = table.find("root ").unwrap_or(usize::MAX);
        assert!(hot_pos < root_pos, "hot span first: {table}");
    }
}
