//! Exporters: Chrome `trace_event` JSON, line-delimited JSON events, and a
//! human text summary.
//!
//! The Chrome format is the subset Perfetto and `chrome://tracing` load
//! without configuration: a single object `{"traceEvents": [...]}` whose
//! events are all complete (`"ph": "X"`) spans plus `"M"` thread-name
//! metadata. Using `X` events only means the file is well-formed by
//! construction — there are no `B`/`E` pairs to unbalance.

use crate::{Event, FieldValue, ObsReport};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Escape a string for inclusion inside a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

pub(crate) fn json_field_value(v: &FieldValue) -> String {
    match v {
        FieldValue::U64(n) => n.to_string(),
        FieldValue::I64(n) => n.to_string(),
        FieldValue::F64(n) => {
            if n.is_finite() {
                format!("{n}")
            } else {
                "null".into()
            }
        }
        FieldValue::Str(s) => format!("\"{}\"", json_escape(s)),
    }
}

fn json_args(fields: &[(&'static str, FieldValue)]) -> String {
    let mut out = String::from("{");
    for (i, (k, v)) in fields.iter().enumerate() {
        let _ = write!(
            out,
            "{}\"{}\":{}",
            if i > 0 { "," } else { "" },
            json_escape(k),
            json_field_value(v)
        );
    }
    out.push('}');
    out
}

/// Render events as Chrome `trace_event` JSON. Every span becomes one
/// complete (`ph: "X"`) event; each distinct tid additionally gets a
/// `thread_name` metadata event so Perfetto labels the worker tracks.
pub fn chrome_trace(events: &[Event]) -> String {
    let mut sorted: Vec<&Event> = events.iter().collect();
    sorted.sort_by_key(|e| (e.tid, e.start_us, e.seq));
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    let mut seen_tids: BTreeMap<u32, ()> = BTreeMap::new();
    for e in &sorted {
        seen_tids.entry(e.tid).or_insert(());
    }
    for &tid in seen_tids.keys() {
        let name = if tid == 0 {
            "driver".to_string()
        } else {
            format!("worker-{tid}")
        };
        let _ = write!(
            out,
            "{}{{\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"name\":\"thread_name\",\
             \"args\":{{\"name\":\"{name}\"}}}}",
            if first { "" } else { "," }
        );
        first = false;
    }
    for e in sorted {
        let _ = write!(
            out,
            "{}{{\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{},\
             \"name\":\"{}\",\"args\":{}}}",
            if first { "" } else { "," },
            e.tid,
            e.start_us,
            e.dur_us,
            json_escape(e.name),
            json_args(&e.fields)
        );
        first = false;
    }
    out.push_str("]}");
    out
}

/// Render a report as line-delimited JSON: one `{"type":"span",...}` object
/// per event, then one line per counter, gauge, and histogram.
pub fn json_lines(report: &ObsReport) -> String {
    let mut out = String::new();
    for e in &report.events {
        let _ = writeln!(
            out,
            "{{\"type\":\"span\",\"name\":\"{}\",\"tid\":{},\"depth\":{},\
             \"start_us\":{},\"dur_us\":{},\"fields\":{}}}",
            json_escape(e.name),
            e.tid,
            e.depth,
            e.start_us,
            e.dur_us,
            json_args(&e.fields)
        );
    }
    for (name, v) in &report.metrics.counters {
        let _ = writeln!(
            out,
            "{{\"type\":\"counter\",\"name\":\"{}\",\"value\":{v}}}",
            json_escape(name)
        );
    }
    for (name, v) in &report.metrics.gauges {
        let _ = writeln!(
            out,
            "{{\"type\":\"gauge\",\"name\":\"{}\",\"value\":{v}}}",
            json_escape(name)
        );
    }
    for (name, h) in &report.metrics.histograms {
        let _ = writeln!(
            out,
            "{{\"type\":\"histogram\",\"name\":\"{}\",\"count\":{},\"sum\":{},\
             \"min\":{},\"max\":{}}}",
            json_escape(name),
            h.count,
            h.sum,
            if h.count == 0 { 0 } else { h.min },
            h.max
        );
    }
    out
}

pub(crate) fn fmt_us(us: u64) -> String {
    if us >= 1_000_000 {
        format!("{:.2}s", us as f64 / 1e6)
    } else if us >= 1_000 {
        format!("{:.1}ms", us as f64 / 1e3)
    } else {
        format!("{us}µs")
    }
}

/// Aggregated per-span-name statistics used by the text summary.
struct SpanAgg {
    count: u64,
    total_us: u64,
    max_us: u64,
}

/// Render the human per-phase summary printed under `--stats`: spans
/// aggregated by name, then counters, gauges, and histograms.
pub fn text_summary(report: &ObsReport) -> String {
    let mut out = String::new();
    if !report.events.is_empty() {
        let mut aggs: BTreeMap<&str, SpanAgg> = BTreeMap::new();
        for e in &report.events {
            let a = aggs.entry(e.name).or_insert(SpanAgg {
                count: 0,
                total_us: 0,
                max_us: 0,
            });
            a.count += 1;
            a.total_us += e.dur_us;
            a.max_us = a.max_us.max(e.dur_us);
        }
        let _ = writeln!(out, "== span summary (wall clock) ==");
        let _ = writeln!(
            out,
            "  {:<28} {:>8} {:>12} {:>12} {:>12}",
            "span", "count", "total", "mean", "max"
        );
        // Order by total time, heaviest first.
        let mut rows: Vec<(&str, SpanAgg)> = aggs.into_iter().collect();
        rows.sort_by(|a, b| b.1.total_us.cmp(&a.1.total_us).then(a.0.cmp(b.0)));
        for (name, a) in rows {
            let _ = writeln!(
                out,
                "  {:<28} {:>8} {:>12} {:>12} {:>12}",
                name,
                a.count,
                fmt_us(a.total_us),
                fmt_us(a.total_us / a.count.max(1)),
                fmt_us(a.max_us)
            );
        }
    }
    let m = &report.metrics;
    if !m.counters.is_empty() {
        let _ = writeln!(out, "== counters ==");
        for (name, v) in &m.counters {
            let _ = writeln!(out, "  {name:<40} {v:>12}");
        }
    }
    if !m.gauges.is_empty() {
        let _ = writeln!(out, "== gauges (high-water) ==");
        for (name, v) in &m.gauges {
            let _ = writeln!(out, "  {name:<40} {v:>12}");
        }
    }
    if !m.histograms.is_empty() {
        let _ = writeln!(out, "== histograms ==");
        for (name, h) in &m.histograms {
            if h.count == 0 {
                continue;
            }
            let _ = writeln!(
                out,
                "  {name:<40} n={:<8} min={:<8} mean={:<10.1} max={}",
                h.count,
                h.min,
                h.mean().unwrap_or(0.0),
                h.max
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsSnapshot;
    use crate::{span, Obs, ObsConfig};

    fn sample_report() -> ObsReport {
        let obs = Obs::enabled(ObsConfig::default());
        {
            let mut g = span!(obs, "outer", level = 1u64, tag = "a\"b");
            {
                let _i = span!(obs, "inner");
            }
            g.set("new_states", 4u64);
        }
        obs.counter_add("abs.states_expanded", 12);
        obs.gauge_max("abs.max_frontier", 6);
        obs.histogram("abs.frontier_states", 6);
        obs.finish().unwrap()
    }

    #[test]
    fn chrome_trace_is_x_phase_only() {
        let report = sample_report();
        let trace = chrome_trace(&report.events);
        assert!(trace.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(trace.ends_with("]}"));
        assert!(trace.contains("\"ph\":\"X\""));
        assert!(trace.contains("\"ph\":\"M\""));
        assert!(!trace.contains("\"ph\":\"B\""));
        assert!(!trace.contains("\"ph\":\"E\""));
        // Quotes in field values are escaped.
        assert!(trace.contains("a\\\"b"));
        assert!(trace.contains("\"name\":\"driver\""));
    }

    #[test]
    fn json_lines_one_object_per_line() {
        let report = sample_report();
        let lines = json_lines(&report);
        for line in lines.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
        assert!(lines.contains("\"type\":\"span\""));
        assert!(lines.contains("\"type\":\"counter\""));
        assert!(lines.contains("\"type\":\"gauge\""));
        assert!(lines.contains("\"type\":\"histogram\""));
    }

    #[test]
    fn text_summary_mentions_everything() {
        let report = sample_report();
        let text = text_summary(&report);
        assert!(text.contains("span summary"));
        assert!(text.contains("outer"));
        assert!(text.contains("inner"));
        assert!(text.contains("abs.states_expanded"));
        assert!(text.contains("abs.max_frontier"));
        assert!(text.contains("abs.frontier_states"));
    }

    #[test]
    fn escape_handles_control_chars() {
        assert_eq!(json_escape("a\"\\\n\t\u{1}b"), "a\\\"\\\\\\n\\t\\u0001b");
    }

    #[test]
    fn empty_report_renders_empty() {
        let report = ObsReport {
            events: Vec::new(),
            metrics: MetricsSnapshot::default(),
        };
        assert_eq!(
            chrome_trace(&report.events),
            "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}"
        );
        assert_eq!(json_lines(&report), "");
        assert_eq!(text_summary(&report), "");
    }
}
