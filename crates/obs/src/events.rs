//! Streaming structured event log: line-delimited JSON with monotonic
//! sequence numbers.
//!
//! Where the Chrome trace and the metrics snapshot are *post-mortem*
//! artifacts (collected in memory, exported at `Obs::finish`), the event
//! log is a **live wire format**: every event is rendered and written the
//! moment it happens, so a consumer tailing the stream sees run lifecycle,
//! per-level BFS progress, fixpoint iterations, and heartbeats as they
//! occur. This is the per-session protocol a future `dcds serve` daemon
//! streams back to clients; the CLI exposes it as `--events FILE|-`.
//!
//! # Wire format
//!
//! One JSON object per line:
//!
//! ```json
//! {"type":"level","seq":3,"ts_us":15210,"engine":"det_abstraction","level":2,"frontier":14,...}
//! ```
//!
//! Every event carries:
//!
//! * `type` — the event kind (`run_start`, `level`, `progress`,
//!   `fixpoint`, `sym_iter`, `heartbeat`, `run_end`);
//! * `seq` — a process-monotonic sequence number (gap-free per sink), so
//!   consumers can detect loss and order events without trusting clocks;
//! * `ts_us` — microseconds since the `Obs` epoch (monotonic clock);
//! * kind-specific fields, flattened into the same object.
//!
//! Engines emit events only from their serial phases, so for a fixed
//! workload the sequence of `(type, fields)` pairs is deterministic at
//! every thread count — only `ts_us` varies run to run.

use crate::export::{json_escape, json_field_value};
use crate::FieldValue;
use std::fmt::Write as _;
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A live event-stream sink: a shared writer plus the monotonic sequence
/// counter. Cheap to probe (`Obs` checks an `Option` before building any
/// fields); each emit takes the writer lock once and flushes, so the
/// stream is tail-able while the run is in flight.
pub struct EventSink {
    out: Mutex<Box<dyn Write + Send>>,
    seq: AtomicU64,
}

impl EventSink {
    /// A sink over any writer (a file, stdout, an in-memory buffer).
    pub fn new(out: Box<dyn Write + Send>) -> EventSink {
        EventSink {
            out: Mutex::new(out),
            seq: AtomicU64::new(0),
        }
    }

    /// Number of events emitted so far.
    pub fn emitted(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// Render and write one event line. `ts_us` is the caller's elapsed
    /// time since its epoch; the sequence number is taken here, under the
    /// writer lock, so lines in the file are in `seq` order even when two
    /// threads race.
    pub(crate) fn emit(&self, typ: &str, ts_us: u64, fields: &[(&'static str, FieldValue)]) {
        let mut out = self.out.lock().expect("event sink poisoned");
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let mut line = String::with_capacity(64);
        let _ = write!(
            line,
            "{{\"type\":\"{}\",\"seq\":{seq},\"ts_us\":{ts_us}",
            json_escape(typ)
        );
        for (k, v) in fields {
            let _ = write!(line, ",\"{}\":{}", json_escape(k), json_field_value(v));
        }
        line.push('}');
        let _ = writeln!(out, "{line}");
        let _ = out.flush();
    }

    /// Flush the underlying writer.
    pub fn flush(&self) {
        let _ = self.out.lock().expect("event sink poisoned").flush();
    }
}

impl std::fmt::Debug for EventSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventSink")
            .field("emitted", &self.emitted())
            .finish()
    }
}

/// An in-memory writer for tests and embedding: clones share the buffer.
#[derive(Clone, Default)]
pub struct SharedBuf(std::sync::Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    /// A fresh, empty shared buffer.
    pub fn new() -> SharedBuf {
        SharedBuf::default()
    }

    /// The buffered bytes as a string (lossy).
    pub fn contents(&self) -> String {
        String::from_utf8_lossy(&self.0.lock().expect("shared buf poisoned")).into_owned()
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().expect("shared buf poisoned").write(buf)
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_are_line_json_with_monotonic_seq() {
        let buf = SharedBuf::new();
        let sink = EventSink::new(Box::new(buf.clone()));
        sink.emit("run_start", 0, &[("command", FieldValue::from("abstract"))]);
        sink.emit(
            "level",
            10,
            &[
                ("level", FieldValue::from(0u64)),
                ("frontier", FieldValue::from(1u64)),
            ],
        );
        sink.emit("run_end", 99, &[]);
        let text = buf.contents();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        for (i, line) in lines.iter().enumerate() {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            assert!(line.contains(&format!("\"seq\":{i}")), "{line}");
        }
        assert!(lines[0].contains("\"type\":\"run_start\""));
        assert!(lines[0].contains("\"command\":\"abstract\""));
        assert!(lines[1].contains("\"level\":0"));
        assert!(lines[1].contains("\"ts_us\":10"));
        assert_eq!(sink.emitted(), 3);
    }

    #[test]
    fn field_strings_are_escaped() {
        let buf = SharedBuf::new();
        let sink = EventSink::new(Box::new(buf.clone()));
        sink.emit(
            "heartbeat",
            5,
            &[("message", FieldValue::from(String::from("a\"b\nc")))],
        );
        let text = buf.contents();
        assert!(text.contains("a\\\"b\\nc"), "{text}");
    }
}
