//! Allocation attribution: a std-only `GlobalAlloc` wrapper with
//! thread-local counters, snapshotted at span enter/exit.
//!
//! # How it works
//!
//! Binaries that want allocation profiling install [`CountingAlloc`]:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: dcds_obs::alloc::CountingAlloc = dcds_obs::alloc::CountingAlloc;
//! ```
//!
//! The wrapper delegates straight to [`std::alloc::System`]. When counting
//! is off (the default) the only overhead per allocation is one relaxed
//! atomic load of a process-global flag. When an `Obs` session is created
//! with `track_alloc` (CLI: `--profile-alloc`), every allocation also bumps
//! three thread-local `Cell` counters: cumulative bytes, cumulative count,
//! and live bytes (with a per-thread peak watermark).
//!
//! Spans snapshot the counters at open and attach the deltas as fields at
//! close (`alloc_bytes`, `allocs`, `peak_live_delta`), so the folded-stack
//! export can weight span paths by bytes allocated instead of self time.
//!
//! # Why `Cell`, not a lock or atomic per thread
//!
//! The allocator path must never allocate (recursion) and never block (the
//! allocator is called with arbitrary locks held by the caller). Const-
//! initialised `thread_local!` `Cell`s compile to plain TLS loads/stores —
//! no lazy-init allocation, no synchronisation. The cost is that counters
//! are per-thread: a span only observes allocations made *on its own
//! thread*, which is exactly the attribution we want (worker allocations
//! land on the worker's spans, merged at the join point like events).
//!
//! Live bytes are signed per thread: a thread that frees buffers it did not
//! allocate (e.g. the driver dropping worker results) can legitimately go
//! negative. Peak tracking clamps at span granularity instead.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, Ordering};

/// Process-global gate. Off by default; [`set_counting`] flips it when an
/// `Obs` session with `track_alloc` starts/finishes.
static COUNTING: AtomicBool = AtomicBool::new(false);

thread_local! {
    static BYTES: Cell<u64> = const { Cell::new(0) };
    static COUNT: Cell<u64> = const { Cell::new(0) };
    static LIVE: Cell<i64> = const { Cell::new(0) };
    static PEAK: Cell<i64> = const { Cell::new(0) };
}

/// Enable or disable allocation counting process-wide. Counting is cheap
/// but not free; the CLI enables it only under `--profile-alloc`.
pub fn set_counting(on: bool) {
    COUNTING.store(on, Ordering::Relaxed);
}

/// Is allocation counting currently enabled?
pub fn counting() -> bool {
    COUNTING.load(Ordering::Relaxed)
}

#[inline]
fn record(bytes_delta: u64, count_delta: u64, live_delta: i64) {
    BYTES.with(|c| c.set(c.get().wrapping_add(bytes_delta)));
    COUNT.with(|c| c.set(c.get().wrapping_add(count_delta)));
    LIVE.with(|c| {
        let live = c.get().wrapping_add(live_delta);
        c.set(live);
        PEAK.with(|p| {
            if live > p.get() {
                p.set(live);
            }
        });
    });
}

/// A snapshot of this thread's allocation counters, taken at span open.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocSnap {
    /// Cumulative bytes allocated on this thread at snapshot time.
    pub bytes: u64,
    /// Cumulative allocation count on this thread at snapshot time.
    pub count: u64,
    /// Live bytes on this thread at snapshot time (signed; see module docs).
    pub live: i64,
    /// The thread peak watermark saved at open; restored (maxed) at close so
    /// nested spans each see their own peak-above-open.
    pub saved_peak: i64,
}

/// Allocation deltas over a span's lifetime, attached as span fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocDelta {
    /// Bytes allocated on this thread while the span was open.
    pub bytes: u64,
    /// Allocations on this thread while the span was open.
    pub count: u64,
    /// Peak live bytes above the level at span open (never negative).
    pub peak_live_delta: u64,
}

/// Snapshot this thread's counters at span open. Resets the thread peak to
/// the current live level so the span measures its *own* high-water mark;
/// the previous watermark is saved and restored at [`span_close`].
pub fn span_open() -> AllocSnap {
    let live = LIVE.with(Cell::get);
    let saved_peak = PEAK.with(|p| {
        let saved = p.get();
        p.set(live);
        saved
    });
    AllocSnap {
        bytes: BYTES.with(Cell::get),
        count: COUNT.with(Cell::get),
        live,
        saved_peak,
    }
}

/// Compute the span's allocation deltas and restore the thread peak
/// watermark (the outer span's peak is at least the inner span's).
pub fn span_close(open: AllocSnap) -> AllocDelta {
    let span_peak = PEAK.with(Cell::get);
    PEAK.with(|p| p.set(open.saved_peak.max(span_peak)));
    AllocDelta {
        bytes: BYTES.with(Cell::get).wrapping_sub(open.bytes),
        count: COUNT.with(Cell::get).wrapping_sub(open.count),
        peak_live_delta: span_peak.saturating_sub(open.live).max(0) as u64,
    }
}

/// The counting allocator. Install with `#[global_allocator]` in each
/// binary/test crate that wants `--profile-alloc` to attribute bytes; with
/// counting disabled it is a transparent passthrough to [`System`].
pub struct CountingAlloc;

// SAFETY: delegates allocation to `System`; the counter updates touch only
// const-initialised thread-local `Cell`s and one relaxed atomic, so they
// never allocate, never unwind, and never re-enter the allocator.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() && counting() {
            record(layout.size() as u64, 1, layout.size() as i64);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        if counting() {
            record(0, 0, -(layout.size() as i64));
        }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() && counting() {
            record(layout.size() as u64, 1, layout.size() as i64);
        }
        p
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() && counting() {
            record(new_size as u64, 1, new_size as i64 - layout.size() as i64);
        }
        p
    }
}

/// Serialises tests (across this crate's modules) that flip the process-
/// global counting gate, so they don't observe each other's state.
#[cfg(test)]
pub(crate) static TEST_GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[cfg(test)]
mod tests {
    use super::*;

    fn gate() -> std::sync::MutexGuard<'static, ()> {
        TEST_GATE.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_records_nothing() {
        let _g = gate();
        set_counting(false);
        let open = span_open();
        let v: Vec<u8> = Vec::with_capacity(4096);
        drop(v);
        let d = span_close(open);
        assert_eq!(
            d,
            AllocDelta {
                bytes: 0,
                count: 0,
                peak_live_delta: 0
            }
        );
    }

    #[test]
    fn counting_attributes_bytes_and_peak() {
        let _g = gate();
        set_counting(true);
        let open = span_open();
        let v: Vec<u8> = Vec::with_capacity(10_000);
        let d_mid = {
            // Nested span while `v` is live: its peak baseline is current
            // live, so a small allocation reports a small peak delta.
            let inner = span_open();
            let w: Vec<u8> = Vec::with_capacity(100);
            drop(w);
            span_close(inner)
        };
        drop(v);
        let d = span_close(open);
        set_counting(false);
        assert!(d.bytes >= 10_100, "bytes {}", d.bytes);
        assert!(d.count >= 2, "count {}", d.count);
        assert!(d.peak_live_delta >= 10_000, "peak {}", d.peak_live_delta);
        assert!(
            d_mid.peak_live_delta >= 100 && d_mid.peak_live_delta < 10_000,
            "inner peak measures above its own open level: {}",
            d_mid.peak_live_delta
        );
    }
}
