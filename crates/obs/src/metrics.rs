//! Metrics registry: named counters, high-water gauges, and fixed-bucket
//! histograms.
//!
//! The registry is the *one counter story* for the stack: engine-local
//! structs (`EngineCounters`, `McCounters`) publish their fields here at
//! the end of a run, and engines additionally record distribution metrics
//! (frontier size per level, θ fan-out, canonical-key time) directly.
//!
//! # Determinism contract
//!
//! Engines update the registry only from their serial phases, so every
//! counter, gauge, and histogram is bit-identical at every thread count —
//! **except** histograms whose name ends in `_us`, which hold wall-clock
//! measurements and are excluded by convention.
//! [`MetricsSnapshot::deterministic_histograms`] applies that filter.

use std::borrow::Cow;
use std::collections::BTreeMap;

/// Bucket upper bounds shared by every histogram: powers of two. A value
/// `v` lands in the first bucket with `v <= bound`; larger values land in
/// the overflow bucket.
pub const BUCKET_BOUNDS: [u64; 20] = [
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768, 65536, 262144,
    1048576, 16777216,
];

/// A fixed-bucket histogram with exact count/sum/min/max sidecars.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Per-bucket counts; `counts[i]` counts values `<= BUCKET_BOUNDS[i]`
    /// (and greater than the previous bound). The final slot is overflow.
    pub counts: Vec<u64>,
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u128,
    /// Smallest recorded value (`u64::MAX` when empty).
    pub min: u64,
    /// Largest recorded value.
    pub max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: vec![0; BUCKET_BOUNDS.len() + 1],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Histogram {
    /// Record one value.
    pub fn record(&mut self, value: u64) {
        let ix = BUCKET_BOUNDS
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(BUCKET_BOUNDS.len());
        self.counts[ix] += 1;
        self.count += 1;
        self.sum += value as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Mean of the recorded values; `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum as f64 / self.count as f64)
        }
    }
}

/// The mutable registry behind an enabled `Obs`.
#[derive(Debug, Default)]
pub(crate) struct Registry {
    counters: BTreeMap<Cow<'static, str>, u64>,
    gauges: BTreeMap<Cow<'static, str>, i64>,
    histograms: BTreeMap<Cow<'static, str>, Histogram>,
}

impl Registry {
    pub(crate) fn counter_add(&mut self, name: Cow<'static, str>, delta: u64) {
        *self.counters.entry(name).or_insert(0) += delta;
    }

    pub(crate) fn gauge_max(&mut self, name: Cow<'static, str>, value: i64) {
        let g = self.gauges.entry(name).or_insert(i64::MIN);
        *g = (*g).max(value);
    }

    pub(crate) fn histogram_record(&mut self, name: Cow<'static, str>, value: u64) {
        self.histograms.entry(name).or_default().record(value);
    }

    pub(crate) fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .iter()
                .map(|(k, &v)| (k.to_string(), v))
                .collect(),
            gauges: self
                .gauges
                .iter()
                .map(|(k, &v)| (k.to_string(), v))
                .collect(),
            histograms: self
                .histograms
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        }
    }
}

/// An immutable copy of the registry, as handed out by `Obs::finish`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// All counters, by name.
    pub counters: BTreeMap<String, u64>,
    /// All gauges, by name.
    pub gauges: BTreeMap<String, i64>,
    /// All histograms, by name.
    pub histograms: BTreeMap<String, Histogram>,
}

impl MetricsSnapshot {
    /// Value of a counter, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// Value of a gauge, if present.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.get(name).copied()
    }

    /// A histogram, if present.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// The histograms covered by the thread-count determinism contract —
    /// everything except the wall-clock `*_us` timing histograms.
    pub fn deterministic_histograms(&self) -> BTreeMap<&str, &Histogram> {
        self.histograms
            .iter()
            .filter(|(name, _)| !name.ends_with("_us"))
            .map(|(name, h)| (name.as_str(), h))
            .collect()
    }

    /// Is there anything to report?
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Render the snapshot as one JSON object (serde-free):
    /// `{"counters": {...}, "gauges": {...}, "histograms": {...}}`.
    /// Histograms carry `count`, `sum`, `min`, `max`, `mean`, and the
    /// non-zero buckets as `[upper_bound_or_null, count]` pairs.
    pub fn to_json(&self) -> String {
        use crate::export::json_escape;
        use std::fmt::Write as _;
        let mut out = String::from("{\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            let _ = write!(
                out,
                "{}\"{}\":{v}",
                if i > 0 { "," } else { "" },
                json_escape(k)
            );
        }
        out.push_str("},\"gauges\":{");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            let _ = write!(
                out,
                "{}\"{}\":{v}",
                if i > 0 { "," } else { "" },
                json_escape(k)
            );
        }
        out.push_str("},\"histograms\":{");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            let _ = write!(
                out,
                "{}\"{}\":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{},\"buckets\":[",
                if i > 0 { "," } else { "" },
                json_escape(k),
                h.count,
                h.sum,
                if h.count == 0 { 0 } else { h.min },
                h.max,
                h.mean()
                    .map(|m| format!("{m:.3}"))
                    .unwrap_or_else(|| "null".into()),
            );
            let mut first = true;
            for (ix, &c) in h.counts.iter().enumerate() {
                if c == 0 {
                    continue;
                }
                let bound = BUCKET_BOUNDS
                    .get(ix)
                    .map(|b| b.to_string())
                    .unwrap_or_else(|| "null".into());
                let _ = write!(out, "{}[{bound},{c}]", if first { "" } else { "," });
                first = false;
            }
            out.push_str("]}");
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_stats() {
        let mut h = Histogram::default();
        for v in [0, 1, 2, 3, 1000, 20_000_000] {
            h.record(v);
        }
        assert_eq!(h.count, 6);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 20_000_000);
        assert_eq!(h.sum, 20_001_006);
        // 0 and 1 share the `<= 1` bucket; 2 its own; 3 in `<= 4`;
        // 1000 in `<= 1024`; 20M in overflow.
        assert_eq!(h.counts[0], 2);
        assert_eq!(h.counts[1], 1);
        assert_eq!(h.counts[2], 1);
        assert_eq!(h.counts[10], 1);
        assert_eq!(h.counts[BUCKET_BOUNDS.len()], 1);
    }

    #[test]
    fn snapshot_json_shape() {
        let mut r = Registry::default();
        r.counter_add("abs.states".into(), 42);
        r.gauge_max("abs.max_frontier".into(), 7);
        r.histogram_record("abs.frontier_states".into(), 3);
        r.histogram_record("abs.canon_key_us".into(), 120);
        let snap = r.snapshot();
        let json = snap.to_json();
        assert!(json.starts_with("{\"counters\":{"));
        assert!(json.contains("\"abs.states\":42"));
        assert!(json.contains("\"abs.max_frontier\":7"));
        assert!(json.contains("\"abs.frontier_states\":{\"count\":1"));
        assert!(json.ends_with("}}"));
        // The timing histogram is excluded from the deterministic view.
        let det = snap.deterministic_histograms();
        assert!(det.contains_key("abs.frontier_states"));
        assert!(!det.contains_key("abs.canon_key_us"));
    }

    #[test]
    fn empty_snapshot() {
        let snap = Registry::default().snapshot();
        assert!(snap.is_empty());
        assert_eq!(
            snap.to_json(),
            "{\"counters\":{},\"gauges\":{},\"histograms\":{}}"
        );
    }
}
