//! # dcds-obs
//!
//! Std-only tracing and metrics substrate for the DCDS verification stack.
//!
//! The engines (`det_abstraction`, RCYCL, the bounded explorers, the staged
//! µ-calculus evaluator) are level-synchronised BFS/fixpoint loops whose
//! cost is wildly uneven across levels and iterations. This crate gives
//! every engine one observability story:
//!
//! * **spans** — hierarchical wall-clock intervals with key/value fields,
//!   created with the [`span!`] macro and recorded into a lock-cheap
//!   per-thread buffer; buffers merge into the shared sink when a thread
//!   exits (which for `dcds_core::par` scoped workers is exactly the join
//!   point of the parallel phase) or when [`Obs::finish`] flushes the
//!   calling thread;
//! * **metrics** — a registry of named counters, gauges, and fixed-bucket
//!   histograms ([`metrics`]). Engines update the registry only from their
//!   serial phases, so every value is bit-identical at every thread count
//!   — except histograms whose name ends in `_us`, which record wall-clock
//!   time and are excluded from the determinism contract by convention;
//! * **exporters** — Chrome `trace_event` JSON (openable in Perfetto or
//!   `chrome://tracing`, worker threads mapped to tids), line-delimited
//!   JSON events, and a human text summary ([`export`]);
//! * **progress heartbeats** — rate-limited status lines on stderr for long
//!   runs, enabled by the `DCDS_PROGRESS` environment variable
//!   ([`progress`]).
//!
//! # Zero cost when disabled
//!
//! [`Obs::disabled`] carries no allocation and every operation on it is an
//! early-return on a `None` check — no timestamps, no thread-local access,
//! no locks. The engines take `&Obs` unconditionally instead of `#[cfg]`
//! forks; the determinism tests run them with tracing both on and off and
//! assert identical outputs.
//!
//! # Example
//!
//! ```
//! use dcds_obs::{span, Obs, ObsConfig};
//!
//! let obs = Obs::enabled(ObsConfig::default());
//! {
//!     let mut outer = span!(obs, "frontier_level", level = 0u64);
//!     {
//!         let _inner = span!(obs, "step");
//!         obs.counter_add("abs.states_expanded", 17);
//!     }
//!     outer.set("new_states", 3u64);
//! }
//! let report = obs.finish().unwrap();
//! assert_eq!(report.events.len(), 2);
//! assert_eq!(report.metrics.counter("abs.states_expanded"), Some(17));
//! ```

pub mod alloc;
pub mod events;
pub mod export;
pub mod metrics;
pub mod profile;
pub mod progress;

pub use events::{EventSink, SharedBuf};
pub use export::{chrome_trace, json_lines, text_summary};
pub use metrics::{Histogram, MetricsSnapshot};
pub use profile::{aggregate, folded, top_spans, PathStats, Weight};
pub use progress::{parse_interval, RateLimiter};

// The obs crate's own unit tests exercise the counting allocator, so the
// test binary installs it; downstream binaries opt in individually.
#[cfg(test)]
#[global_allocator]
static TEST_ALLOC: alloc::CountingAlloc = alloc::CountingAlloc;

use metrics::Registry;
use std::borrow::Cow;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Weak};
use std::time::{Duration, Instant};

/// Environment variable enabling live progress heartbeats, e.g.
/// `DCDS_PROGRESS=1s` or `DCDS_PROGRESS=500ms` (a bare number is seconds).
pub const PROGRESS_ENV: &str = "DCDS_PROGRESS";

/// A value attached to a span field.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float.
    F64(f64),
    /// String.
    Str(Cow<'static, str>),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}
impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}
impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}
impl From<&'static str> for FieldValue {
    fn from(v: &'static str) -> Self {
        FieldValue::Str(Cow::Borrowed(v))
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(Cow::Owned(v))
    }
}
impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Str(Cow::Borrowed(if v { "true" } else { "false" }))
    }
}

impl std::fmt::Display for FieldValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FieldValue::U64(v) => write!(f, "{v}"),
            FieldValue::I64(v) => write!(f, "{v}"),
            FieldValue::F64(v) => write!(f, "{v}"),
            FieldValue::Str(s) => write!(f, "{s}"),
        }
    }
}

/// One completed span, as it lands in the sink.
#[derive(Debug, Clone)]
pub struct Event {
    /// Span name (e.g. `frontier_level`).
    pub name: &'static str,
    /// Microseconds since the [`Obs`] epoch at span open.
    pub start_us: u64,
    /// Span duration in microseconds.
    pub dur_us: u64,
    /// Observability thread id: 0 is the first registered thread (usually
    /// the driver), workers get fresh ids per parallel phase.
    pub tid: u32,
    /// Per-thread completion sequence number (stable sort key).
    pub seq: u64,
    /// Nesting depth at open (0 = top-level on its thread).
    pub depth: u32,
    /// Key/value annotations.
    pub fields: Vec<(&'static str, FieldValue)>,
}

/// Configuration for an enabled [`Obs`].
#[derive(Debug, Default)]
pub struct ObsConfig {
    /// Heartbeat interval; `None` disables heartbeats.
    pub progress: Option<Duration>,
    /// Snapshot per-thread allocation counters at span enter/exit and
    /// attach `alloc_bytes`/`allocs`/`peak_live_delta` fields to every
    /// span. Requires the binary to install
    /// [`alloc::CountingAlloc`]; enabling it flips the process-global
    /// counting gate for the session's lifetime.
    pub track_alloc: bool,
    /// Live structured event stream; `None` disables event emission.
    pub events: Option<EventSink>,
}

impl ObsConfig {
    /// Read heartbeat configuration from [`PROGRESS_ENV`].
    pub fn from_env() -> Self {
        ObsConfig {
            progress: std::env::var(PROGRESS_ENV)
                .ok()
                .as_deref()
                .and_then(parse_interval),
            ..ObsConfig::default()
        }
    }
}

/// Everything an [`Obs::finish`] hands back.
#[derive(Debug, Clone)]
pub struct ObsReport {
    /// All completed spans, in (tid, seq) order.
    pub events: Vec<Event>,
    /// Snapshot of the metrics registry.
    pub metrics: MetricsSnapshot,
}

struct Shared {
    /// Process-unique instance id; thread-local buffers use it to detect
    /// that they are bound to a stale instance.
    id: u64,
    epoch: Instant,
    sink: Mutex<Vec<Event>>,
    next_tid: AtomicU32,
    registry: Mutex<Registry>,
    heartbeat: Option<Mutex<RateLimiter>>,
    events: Option<EventSink>,
    track_alloc: bool,
}

/// Handle to one observability session. Cheap to clone; `disabled()` is the
/// universal no-op.
#[derive(Clone, Default)]
pub struct Obs {
    shared: Option<Arc<Shared>>,
}

static NEXT_OBS_ID: AtomicU64 = AtomicU64::new(1);

/// Flush the local buffer above this many events so a span-heavy run does
/// not hold arbitrarily much memory per thread.
const LOCAL_FLUSH_THRESHOLD: usize = 4096;

struct ThreadBuf {
    obs_id: u64,
    obs: Weak<Shared>,
    tid: u32,
    seq: u64,
    depth: u32,
    buf: Vec<Event>,
}

impl ThreadBuf {
    fn flush(&mut self) {
        if self.buf.is_empty() {
            return;
        }
        if let Some(shared) = self.obs.upgrade() {
            shared
                .sink
                .lock()
                .expect("obs sink poisoned")
                .append(&mut self.buf);
        } else {
            self.buf.clear();
        }
    }
}

impl Drop for ThreadBuf {
    fn drop(&mut self) {
        // A scoped worker exiting is the join point: merge its buffer.
        self.flush();
    }
}

thread_local! {
    static TLS: RefCell<ThreadBuf> = const {
        RefCell::new(ThreadBuf {
            obs_id: 0,
            obs: Weak::new(),
            tid: 0,
            seq: 0,
            depth: 0,
            buf: Vec::new(),
        })
    };
}

/// Run `f` with this thread's buffer bound to `shared` (flushing and
/// re-registering if the thread last recorded for a different instance).
fn with_buf<R>(shared: &Arc<Shared>, f: impl FnOnce(&mut ThreadBuf) -> R) -> R {
    TLS.with(|cell| {
        let mut b = cell.borrow_mut();
        if b.obs_id != shared.id {
            b.flush();
            b.obs_id = shared.id;
            b.obs = Arc::downgrade(shared);
            b.tid = shared.next_tid.fetch_add(1, Ordering::Relaxed);
            b.seq = 0;
            b.depth = 0;
        }
        f(&mut b)
    })
}

impl Obs {
    /// The no-op handle: every operation returns immediately.
    pub fn disabled() -> Obs {
        Obs { shared: None }
    }

    /// A recording handle.
    pub fn enabled(config: ObsConfig) -> Obs {
        if config.track_alloc {
            alloc::set_counting(true);
        }
        Obs {
            shared: Some(Arc::new(Shared {
                id: NEXT_OBS_ID.fetch_add(1, Ordering::Relaxed),
                epoch: Instant::now(),
                sink: Mutex::new(Vec::new()),
                next_tid: AtomicU32::new(0),
                registry: Mutex::new(Registry::default()),
                heartbeat: config
                    .progress
                    .map(|interval| Mutex::new(RateLimiter::new(interval))),
                events: config.events,
                track_alloc: config.track_alloc,
            })),
        }
    }

    /// Is this handle recording? The [`span!`] macro consults this before
    /// materialising field vectors, keeping the disabled path allocation-free.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.shared.is_some()
    }

    /// Open a span. Prefer the [`span!`] macro, which skips the field
    /// allocation entirely when disabled.
    pub fn span_with(
        &self,
        name: &'static str,
        fields: Vec<(&'static str, FieldValue)>,
    ) -> SpanGuard {
        let Some(shared) = &self.shared else {
            return SpanGuard { active: None };
        };
        let depth = with_buf(shared, |b| {
            let d = b.depth;
            b.depth += 1;
            d
        });
        let alloc_open = if shared.track_alloc && alloc::counting() {
            Some(alloc::span_open())
        } else {
            None
        };
        SpanGuard {
            active: Some(ActiveSpan {
                shared: Arc::clone(shared),
                name,
                start: Instant::now(),
                start_us: shared.epoch.elapsed().as_micros() as u64,
                depth,
                fields,
                alloc_open,
            }),
        }
    }

    /// Microseconds since this session's epoch; 0 when disabled.
    pub fn elapsed_us(&self) -> u64 {
        self.shared
            .as_ref()
            .map(|s| s.epoch.elapsed().as_micros() as u64)
            .unwrap_or(0)
    }

    /// Is a live event sink attached? Engines consult this (or use the
    /// [`event!`] macro) so the no-sink path never builds field vectors.
    #[inline]
    pub fn events_enabled(&self) -> bool {
        self.shared.as_ref().is_some_and(|s| s.events.is_some())
    }

    /// Emit one typed event onto the live stream, stamped with the elapsed
    /// time and the next monotonic sequence number. No-op without a sink.
    pub fn event(&self, typ: &str, fields: &[(&'static str, FieldValue)]) {
        if let Some(shared) = &self.shared {
            if let Some(sink) = &shared.events {
                sink.emit(typ, shared.epoch.elapsed().as_micros() as u64, fields);
            }
        }
    }

    /// Add `delta` to the named counter. Engines call this only from serial
    /// phases, which is what makes the registry thread-count deterministic.
    pub fn counter_add(&self, name: impl Into<Cow<'static, str>>, delta: u64) {
        if let Some(shared) = &self.shared {
            shared
                .registry
                .lock()
                .expect("obs registry poisoned")
                .counter_add(name.into(), delta);
        }
    }

    /// Raise the named gauge to at least `value` (high-water-mark gauge).
    pub fn gauge_max(&self, name: impl Into<Cow<'static, str>>, value: i64) {
        if let Some(shared) = &self.shared {
            shared
                .registry
                .lock()
                .expect("obs registry poisoned")
                .gauge_max(name.into(), value);
        }
    }

    /// Record `value` into the named fixed-bucket histogram.
    pub fn histogram(&self, name: impl Into<Cow<'static, str>>, value: u64) {
        if let Some(shared) = &self.shared {
            shared
                .registry
                .lock()
                .expect("obs registry poisoned")
                .histogram_record(name.into(), value);
        }
    }

    /// Start a wall-clock measurement for [`Obs::time_us`]; `None` when
    /// disabled, so the disabled path never reads the clock.
    #[inline]
    pub fn timer(&self) -> Option<Instant> {
        self.shared.as_ref().map(|_| Instant::now())
    }

    /// Record the elapsed microseconds since [`Obs::timer`] into a timing
    /// histogram. By convention the name ends in `_us`; such histograms are
    /// *excluded* from the bit-identical determinism contract (time varies).
    pub fn time_us(&self, name: impl Into<Cow<'static, str>>, started: Option<Instant>) {
        if let (Some(_), Some(t0)) = (&self.shared, started) {
            self.histogram(name, t0.elapsed().as_micros() as u64);
        }
    }

    /// Emit a rate-limited progress line on stderr. The message closure is
    /// only evaluated when a heartbeat is actually due. One monotonic
    /// reading drives both the limiter and the displayed elapsed time, so
    /// the printed timestamps can never run ahead of the rate-limit window.
    pub fn heartbeat(&self, message: impl FnOnce() -> String) {
        let Some(shared) = &self.shared else { return };
        let Some(limiter) = &shared.heartbeat else {
            return;
        };
        let now = Instant::now();
        let due = limiter.lock().expect("obs heartbeat poisoned").ready(now);
        if due {
            let elapsed = now.duration_since(shared.epoch);
            let msg = message();
            eprintln!("[dcds +{:.1}s] {msg}", elapsed.as_secs_f64());
            if let Some(sink) = &shared.events {
                sink.emit(
                    "heartbeat",
                    elapsed.as_micros() as u64,
                    &[("message", FieldValue::Str(Cow::Owned(msg)))],
                );
            }
        }
    }

    /// Unconditional final progress line (plus a `heartbeat` event with
    /// `"final":true` when a sink is attached), emitted at run end when
    /// heartbeats are configured. Short runs that never tripped the rate
    /// limiter still report how they ended instead of staying silent.
    pub fn progress_flush(&self, message: impl FnOnce() -> String) {
        let Some(shared) = &self.shared else { return };
        if shared.heartbeat.is_none() {
            return;
        }
        let now = Instant::now();
        let elapsed = now.duration_since(shared.epoch);
        let msg = message();
        eprintln!("[dcds +{:.1}s] {msg}", elapsed.as_secs_f64());
        if let Some(sink) = &shared.events {
            sink.emit(
                "heartbeat",
                elapsed.as_micros() as u64,
                &[
                    ("final", FieldValue::Str(Cow::Borrowed("true"))),
                    ("message", FieldValue::Str(Cow::Owned(msg))),
                ],
            );
        }
    }

    /// Flush the calling thread's buffer and take everything recorded so
    /// far: events in (tid, seq) order plus a metrics snapshot. `None` when
    /// disabled. Worker threads have already merged at their join points.
    pub fn finish(&self) -> Option<ObsReport> {
        let shared = self.shared.as_ref()?;
        TLS.with(|cell| {
            let mut b = cell.borrow_mut();
            if b.obs_id == shared.id {
                b.flush();
            }
        });
        let mut events = std::mem::take(&mut *shared.sink.lock().expect("obs sink poisoned"));
        events.sort_by_key(|e| (e.tid, e.seq));
        let metrics = shared
            .registry
            .lock()
            .expect("obs registry poisoned")
            .snapshot();
        if let Some(sink) = &shared.events {
            sink.flush();
        }
        if shared.track_alloc {
            alloc::set_counting(false);
        }
        Some(ObsReport { events, metrics })
    }
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

struct ActiveSpan {
    shared: Arc<Shared>,
    name: &'static str,
    start: Instant,
    start_us: u64,
    depth: u32,
    fields: Vec<(&'static str, FieldValue)>,
    alloc_open: Option<alloc::AllocSnap>,
}

/// RAII guard for an open span; records one [`Event`] on drop. The no-op
/// variant (from a disabled handle or [`SpanGuard::noop`]) does nothing.
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

impl SpanGuard {
    /// A guard that records nothing — what the [`span!`] macro returns when
    /// the handle is disabled.
    pub fn noop() -> SpanGuard {
        SpanGuard { active: None }
    }

    /// Attach a field after opening (e.g. results only known at close).
    pub fn set(&mut self, key: &'static str, value: impl Into<FieldValue>) {
        if let Some(a) = &mut self.active {
            a.fields.push((key, value.into()));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(mut a) = self.active.take() else {
            return;
        };
        let dur_us = a.start.elapsed().as_micros() as u64;
        if let Some(open) = a.alloc_open.take() {
            let d = alloc::span_close(open);
            a.fields.push(("alloc_bytes", FieldValue::U64(d.bytes)));
            a.fields.push(("allocs", FieldValue::U64(d.count)));
            a.fields
                .push(("peak_live_delta", FieldValue::U64(d.peak_live_delta)));
        }
        with_buf(&a.shared, |b| {
            b.depth = b.depth.saturating_sub(1);
            let seq = b.seq;
            b.seq += 1;
            b.buf.push(Event {
                name: a.name,
                start_us: a.start_us,
                dur_us,
                tid: b.tid,
                seq,
                depth: a.depth,
                fields: a.fields,
            });
            if b.buf.len() >= LOCAL_FLUSH_THRESHOLD {
                b.flush();
            }
        });
    }
}

/// Open a span on an [`Obs`] handle: `span!(obs, "name", key = value, ...)`.
///
/// Returns a [`SpanGuard`]; bind it (`let _g = span!(...)`) so the span
/// closes at scope exit. Field values are anything `Into<FieldValue>`
/// (unsigned/signed integers, floats, strings, bools). When the handle is
/// disabled nothing is evaluated beyond the `is_enabled` check.
#[macro_export]
macro_rules! span {
    ($obs:expr, $name:expr $(, $key:ident = $val:expr)* $(,)?) => {{
        let __obs: &$crate::Obs = &$obs;
        if __obs.is_enabled() {
            __obs.span_with(
                $name,
                vec![$((stringify!($key), $crate::FieldValue::from($val))),*],
            )
        } else {
            $crate::SpanGuard::noop()
        }
    }};
}

/// Emit a typed event onto the live stream:
/// `event!(obs, "level", level = 3u64, frontier = n)`.
///
/// Field values are evaluated only when a sink is attached, so engines can
/// call this unconditionally on hot paths.
#[macro_export]
macro_rules! event {
    ($obs:expr, $typ:expr $(, $key:ident = $val:expr)* $(,)?) => {{
        let __obs: &$crate::Obs = &$obs;
        if __obs.events_enabled() {
            __obs.event(
                $typ,
                &[$((stringify!($key), $crate::FieldValue::from($val))),*],
            );
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_is_inert() {
        let obs = Obs::disabled();
        assert!(!obs.is_enabled());
        {
            let mut g = span!(obs, "x", a = 1u64);
            g.set("b", 2u64);
        }
        obs.counter_add("c", 5);
        obs.histogram("h", 9);
        obs.heartbeat(|| unreachable!("closure must not run when disabled"));
        assert!(obs.finish().is_none());
        assert!(obs.timer().is_none());
    }

    #[test]
    fn spans_record_nesting_and_fields() {
        let obs = Obs::enabled(ObsConfig::default());
        {
            let mut outer = span!(obs, "outer", level = 3u64);
            {
                let _inner = span!(obs, "inner");
            }
            outer.set("done", true);
        }
        let report = obs.finish().unwrap();
        assert_eq!(report.events.len(), 2);
        // Spans complete child-first.
        let inner = &report.events[0];
        let outer = &report.events[1];
        assert_eq!(inner.name, "inner");
        assert_eq!(inner.depth, 1);
        assert_eq!(outer.name, "outer");
        assert_eq!(outer.depth, 0);
        assert_eq!(outer.fields[0], ("level", FieldValue::U64(3)));
        assert_eq!(
            outer.fields[1],
            ("done", FieldValue::Str(Cow::Borrowed("true")))
        );
        // Containment: outer starts no later and ends no earlier. Both
        // ends are `floor(start) + floor(dur)` in µs, so each may
        // undercount its true end by up to 2µs — allow that slack (the
        // close-to-close gap can be sub-µs under load).
        assert!(outer.start_us <= inner.start_us);
        assert!(outer.start_us + outer.dur_us + 2 >= inner.start_us + inner.dur_us);
    }

    #[test]
    fn worker_thread_buffers_merge_at_join() {
        let obs = Obs::enabled(ObsConfig::default());
        {
            let _root = span!(obs, "root");
            std::thread::scope(|scope| {
                for _ in 0..3 {
                    let obs = obs.clone();
                    scope.spawn(move || {
                        let _g = span!(obs, "worker");
                    });
                }
            });
        }
        let report = obs.finish().unwrap();
        assert_eq!(report.events.len(), 4);
        let tids: std::collections::BTreeSet<u32> = report.events.iter().map(|e| e.tid).collect();
        assert_eq!(tids.len(), 4, "each thread gets its own tid: {tids:?}");
        // Worker spans are top-level on their own threads.
        for e in report.events.iter().filter(|e| e.name == "worker") {
            assert_eq!(e.depth, 0);
        }
    }

    #[test]
    fn registry_roundtrip() {
        let obs = Obs::enabled(ObsConfig::default());
        obs.counter_add("a.x", 2);
        obs.counter_add("a.x", 3);
        obs.gauge_max("a.g", 7);
        obs.gauge_max("a.g", 4);
        obs.histogram("a.h", 100);
        let m = obs.finish().unwrap().metrics;
        assert_eq!(m.counter("a.x"), Some(5));
        assert_eq!(m.gauge("a.g"), Some(7));
        assert_eq!(m.histogram("a.h").unwrap().count, 1);
    }

    #[test]
    fn reusing_a_thread_across_instances_rebinds_cleanly() {
        let obs1 = Obs::enabled(ObsConfig::default());
        {
            let _g = span!(obs1, "one");
        }
        let obs2 = Obs::enabled(ObsConfig::default());
        {
            let _g = span!(obs2, "two");
        }
        // Recording for obs2 flushed the obs1 buffer first.
        let r1 = obs1.finish().unwrap();
        let r2 = obs2.finish().unwrap();
        assert_eq!(r1.events.len(), 1);
        assert_eq!(r1.events[0].name, "one");
        assert_eq!(r2.events.len(), 1);
        assert_eq!(r2.events[0].name, "two");
    }

    #[test]
    fn event_stream_records_typed_events_in_order() {
        let buf = SharedBuf::new();
        let obs = Obs::enabled(ObsConfig {
            events: Some(EventSink::new(Box::new(buf.clone()))),
            ..ObsConfig::default()
        });
        assert!(obs.events_enabled());
        event!(obs, "run_start", command = "abstract");
        event!(obs, "level", level = 0u64, frontier = 1u64);
        event!(obs, "run_end");
        obs.finish().unwrap();
        let text = buf.contents();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"type\":\"run_start\"") && lines[0].contains("\"seq\":0"));
        assert!(lines[1].contains("\"frontier\":1") && lines[1].contains("\"seq\":1"));
        assert!(lines[2].contains("\"type\":\"run_end\"") && lines[2].contains("\"seq\":2"));
    }

    #[test]
    fn event_macro_is_inert_without_sink() {
        let obs = Obs::enabled(ObsConfig::default());
        assert!(!obs.events_enabled());
        event!(obs, "level", level = 1u64);
        let disabled = Obs::disabled();
        event!(disabled, "level", level = 1u64);
        assert_eq!(obs.finish().unwrap().events.len(), 0);
    }

    #[test]
    fn track_alloc_attaches_alloc_fields_to_spans() {
        let _gate = alloc::TEST_GATE.lock().unwrap_or_else(|e| e.into_inner());
        let obs = Obs::enabled(ObsConfig {
            track_alloc: true,
            ..ObsConfig::default()
        });
        {
            let _g = span!(obs, "work");
            let v: Vec<u8> = Vec::with_capacity(50_000);
            drop(v);
        }
        let report = obs.finish().unwrap();
        let e = &report.events[0];
        let bytes = e
            .fields
            .iter()
            .find(|(k, _)| *k == "alloc_bytes")
            .map(|(_, v)| match v {
                FieldValue::U64(n) => *n,
                _ => 0,
            })
            .unwrap();
        assert!(bytes >= 50_000, "span attributed {bytes} bytes");
        assert!(e.fields.iter().any(|(k, _)| *k == "allocs"));
        assert!(e.fields.iter().any(|(k, _)| *k == "peak_live_delta"));
        assert!(!alloc::counting(), "finish turns the gate back off");
    }

    #[test]
    fn progress_flush_always_prints_when_progress_configured() {
        // With no heartbeat configured, flush is silent and inert.
        let obs = Obs::enabled(ObsConfig::default());
        obs.progress_flush(|| unreachable!("no progress configured"));
        // With a huge interval the limiter never fires, but the flush event
        // still lands on the stream.
        let buf = SharedBuf::new();
        let obs = Obs::enabled(ObsConfig {
            progress: Some(Duration::from_secs(3600)),
            events: Some(EventSink::new(Box::new(buf.clone()))),
            ..ObsConfig::default()
        });
        obs.heartbeat(|| "mid".into());
        obs.progress_flush(|| "done: 42 states".into());
        obs.finish().unwrap();
        let text = buf.contents();
        assert!(
            !text.contains("\"message\":\"mid\""),
            "rate-limited heartbeat must not fire early: {text}"
        );
        assert!(text.contains("\"type\":\"heartbeat\""), "{text}");
        assert!(text.contains("\"final\":\"true\""), "{text}");
        assert!(text.contains("done: 42 states"), "{text}");
    }

    #[test]
    fn finish_can_be_called_repeatedly() {
        let obs = Obs::enabled(ObsConfig::default());
        {
            let _g = span!(obs, "a");
        }
        assert_eq!(obs.finish().unwrap().events.len(), 1);
        {
            let _g = span!(obs, "b");
        }
        let again = obs.finish().unwrap();
        assert_eq!(again.events.len(), 1);
        assert_eq!(again.events[0].name, "b");
    }
}
