//! Live progress heartbeats: interval parsing and the rate limiter.
//!
//! Heartbeats are off by default and enabled by `DCDS_PROGRESS=<interval>`
//! (see [`crate::PROGRESS_ENV`]): `1s`, `500ms`, or a bare number of
//! seconds. The engines call `Obs::heartbeat` at their natural cadence
//! (every BFS level, every RCYCL state, every fixpoint iteration); the
//! [`RateLimiter`] here decides which of those calls actually print.

use std::time::{Duration, Instant};

/// Parse a heartbeat interval: `"250ms"`, `"2s"`, or a bare `"2"`
/// (seconds). Returns `None` for unparsable or zero intervals.
pub fn parse_interval(s: &str) -> Option<Duration> {
    let s = s.trim();
    let (digits, unit_ms) = if let Some(rest) = s.strip_suffix("ms") {
        (rest, 1u64)
    } else if let Some(rest) = s.strip_suffix('s') {
        (rest, 1000u64)
    } else {
        (s, 1000u64)
    };
    let n: u64 = digits.trim().parse().ok()?;
    let ms = n.checked_mul(unit_ms)?;
    if ms == 0 {
        None
    } else {
        Some(Duration::from_millis(ms))
    }
}

/// Emit-at-most-once-per-interval limiter. Pure over an explicit `now` so
/// the rate-limiting logic is unit-testable without sleeping.
#[derive(Debug, Clone)]
pub struct RateLimiter {
    interval: Duration,
    last: Option<Instant>,
}

impl RateLimiter {
    /// A limiter that fires at most once per `interval`. The first call to
    /// [`RateLimiter::ready`] only *arms* the limiter — a heartbeat right
    /// at process start would always print, making short runs noisy.
    pub fn new(interval: Duration) -> Self {
        RateLimiter {
            interval,
            last: None,
        }
    }

    /// Should an event at time `now` be emitted? Advances the window when
    /// it returns `true`.
    pub fn ready(&mut self, now: Instant) -> bool {
        match self.last {
            None => {
                self.last = Some(now);
                false
            }
            Some(last) => {
                if now.duration_since(last) >= self.interval {
                    self.last = Some(now);
                    true
                } else {
                    false
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_intervals() {
        assert_eq!(parse_interval("1s"), Some(Duration::from_secs(1)));
        assert_eq!(parse_interval("250ms"), Some(Duration::from_millis(250)));
        assert_eq!(parse_interval("2"), Some(Duration::from_secs(2)));
        assert_eq!(parse_interval(" 3s "), Some(Duration::from_secs(3)));
        assert_eq!(parse_interval("0"), None);
        assert_eq!(parse_interval("0ms"), None);
        assert_eq!(parse_interval("fast"), None);
        assert_eq!(parse_interval(""), None);
    }

    #[test]
    fn rate_limiting_is_at_most_once_per_interval() {
        let mut rl = RateLimiter::new(Duration::from_millis(100));
        let t0 = Instant::now();
        // 1kHz of events over one simulated second: at most 10 fire, and
        // the first call only arms the limiter.
        let mut fired = 0;
        for i in 0..1000 {
            if rl.ready(t0 + Duration::from_millis(i)) {
                fired += 1;
            }
        }
        assert!(fired <= 10, "{fired} heartbeats in 1s at 100ms interval");
        assert!(fired >= 9, "{fired} heartbeats in 1s at 100ms interval");
    }

    #[test]
    fn first_event_arms_not_fires() {
        let mut rl = RateLimiter::new(Duration::from_secs(1));
        let t0 = Instant::now();
        assert!(!rl.ready(t0));
        assert!(!rl.ready(t0 + Duration::from_millis(10)));
        assert!(rl.ready(t0 + Duration::from_secs(2)));
        // Window advanced: immediately after firing, quiet again.
        assert!(!rl.ready(t0 + Duration::from_secs(2) + Duration::from_millis(1)));
    }
}
