//! Arity/consistency pass: every name must be declared exactly once and
//! used with its declared arity.

use crate::diagnostic::{codes, Diagnostic, Payload};
use crate::LintContext;
use dcds_core::spec::{DcdsSpec, SpecTerm};

/// Run the pass.
pub fn run(ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
    let spec = ctx.spec;

    // Duplicate declarations (the first one wins; later ones are flagged).
    for (ix, d) in spec.relations.iter().enumerate() {
        if let Some(first) = spec.relations[..ix].iter().find(|e| e.name == d.name) {
            out.push(
                Diagnostic::error(
                    codes::DUPLICATE_RELATION,
                    format!(
                        "relation `{}` is declared more than once (first declared with arity {} at {})",
                        d.name, first.arity, first.span
                    ),
                )
                .at(d.span)
                .with("name", Payload::Str(d.name.clone())),
            );
        }
    }
    for (ix, d) in spec.services.iter().enumerate() {
        if let Some(first) = spec.services[..ix].iter().find(|e| e.name == d.name) {
            out.push(
                Diagnostic::error(
                    codes::DUPLICATE_SERVICE,
                    format!(
                        "service `{}` is declared more than once (first declared at {})",
                        d.name, first.span
                    ),
                )
                .at(d.span)
                .with("name", Payload::Str(d.name.clone())),
            );
        }
    }
    for (ix, a) in spec.actions.iter().enumerate() {
        if let Some(first) = spec.actions[..ix].iter().find(|e| e.name == a.name) {
            out.push(
                Diagnostic::error(
                    codes::DUPLICATE_ACTION,
                    format!(
                        "action `{}` is declared more than once (first declared at {})",
                        a.name, first.span
                    ),
                )
                .at(a.span)
                .with("name", Payload::Str(a.name.clone())),
            );
        }
    }

    // Relation atoms in formulas (constraints, asserts, effect bodies,
    // rule conditions) — the tolerant parser recorded every use.
    for u in spec.formula_uses() {
        match spec.declared_relation(&u.name) {
            None => out.push(
                Diagnostic::error(
                    codes::UNKNOWN_RELATION,
                    format!("unknown relation `{}`", u.name),
                )
                .at(u.span)
                .with("name", Payload::Str(u.name.clone())),
            ),
            Some(d) if d.arity != u.arity => out.push(
                Diagnostic::error(
                    codes::ARITY_MISMATCH,
                    format!(
                        "relation `{}` is used with {} arguments, but is declared with arity {} at {}",
                        u.name, u.arity, d.arity, d.span
                    ),
                )
                .at(u.span)
                .with("name", Payload::Str(u.name.clone()))
                .with("used_arity", Payload::Int(u.arity as i64))
                .with("declared_arity", Payload::Int(d.arity as i64)),
            ),
            Some(_) => {}
        }
    }

    // Init facts.
    for f in &spec.init {
        match spec.declared_relation(&f.rel) {
            None => out.push(
                Diagnostic::error(
                    codes::UNKNOWN_RELATION,
                    format!("unknown relation `{}` in init fact", f.rel),
                )
                .at(f.span)
                .with("name", Payload::Str(f.rel.clone())),
            ),
            Some(d) if d.arity != f.args.len() => out.push(
                Diagnostic::error(
                    codes::ARITY_MISMATCH,
                    format!(
                        "init fact over `{}` has {} constants, but the relation is declared with arity {}",
                        f.rel,
                        f.args.len(),
                        d.arity
                    ),
                )
                .at(f.span)
                .with("name", Payload::Str(f.rel.clone())),
            ),
            Some(_) => {}
        }
    }

    // Effect heads and the service calls inside them.
    for a in &spec.actions {
        for e in &a.effects {
            for h in &e.heads {
                match spec.declared_relation(&h.rel) {
                    None => out.push(
                        Diagnostic::error(
                            codes::UNKNOWN_RELATION,
                            format!("unknown relation `{}` in effect head", h.rel),
                        )
                        .at(h.span)
                        .with("name", Payload::Str(h.rel.clone())),
                    ),
                    Some(d) if d.arity != h.terms.len() => out.push(
                        Diagnostic::error(
                            codes::ARITY_MISMATCH,
                            format!(
                                "head fact over `{}` has {} terms, but the relation is declared with arity {}",
                                h.rel,
                                h.terms.len(),
                                d.arity
                            ),
                        )
                        .at(h.span)
                        .with("name", Payload::Str(h.rel.clone())),
                    ),
                    Some(_) => {}
                }
                for t in &h.terms {
                    check_service_calls(spec, t, out);
                }
            }
        }
    }

    // Rules: action resolution and the free-variable/parameter contract
    // (free(condition) ⊆ params here; the ⊇ direction is a binding lint).
    for r in &spec.rules {
        match spec.action(&r.action) {
            None => out.push(
                Diagnostic::error(
                    codes::UNKNOWN_ACTION,
                    format!("rule references unknown action `{}`", r.action),
                )
                .at(r.action_span)
                .with("name", Payload::Str(r.action.clone())),
            ),
            Some(a) => {
                let extra: Vec<String> = r
                    .condition
                    .free_vars()
                    .into_iter()
                    .filter(|v| !a.params.contains(v))
                    .map(|v| v.name().to_owned())
                    .collect();
                if !extra.is_empty() {
                    out.push(
                        Diagnostic::error(
                            codes::RULE_EXTRA_FREE_VARS,
                            format!(
                                "rule condition has free variable(s) {} that are not parameters of action `{}`",
                                extra.join(", "),
                                a.name
                            ),
                        )
                        .at(r.span)
                        .with(
                            "variables",
                            Payload::List(extra.into_iter().map(Payload::Str).collect()),
                        )
                        .with("action", Payload::Str(a.name.clone())),
                    );
                }
            }
        }
    }
}

fn check_service_calls(spec: &DcdsSpec, t: &SpecTerm, out: &mut Vec<Diagnostic>) {
    if let SpecTerm::Call {
        service,
        span,
        args,
    } = t
    {
        match spec.declared_service(service) {
            None => out.push(
                Diagnostic::error(
                    codes::UNKNOWN_SERVICE,
                    format!("unknown service `{service}`"),
                )
                .at(*span)
                .with("name", Payload::Str(service.clone())),
            ),
            Some(d) if d.arity != args.len() => out.push(
                Diagnostic::error(
                    codes::SERVICE_ARITY_MISMATCH,
                    format!(
                        "service `{service}` is called with {} arguments, but is declared with arity {}",
                        args.len(),
                        d.arity
                    ),
                )
                .at(*span)
                .with("name", Payload::Str(service.clone())),
            ),
            Some(_) => {}
        }
        for a in args {
            check_service_calls(spec, a, out);
        }
    }
}
