//! Trivially unsatisfiable rule conditions, found by a cheap congruence
//! closure (union-find) over the equalities and inequalities of the
//! condition's top-level conjunction. No query evaluation is involved, so
//! the check is linear-ish and sound-but-incomplete: anything flagged here
//! really is unsatisfiable; plenty of unsatisfiable conditions pass.
//!
//! The closure itself lives in [`dcds_analysis::cc`] (it is shared with
//! the symbolic safety engine); this pass is a thin client that maps
//! `QTerm`s onto closure terms and renders the findings.

use crate::diagnostic::{codes, Diagnostic, Payload};
use crate::LintContext;
use dcds_analysis::cc::Cc;
use dcds_folang::{Formula, QTerm};
use dcds_reldata::ConstantPool;

/// Run the pass.
pub fn run(ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
    let spec = ctx.spec;
    for r in &spec.rules {
        if let Some(reason) = unsat_reason(&r.condition, &spec.pool) {
            out.push(
                Diagnostic::warning(
                    codes::UNSATISFIABLE_CONDITION,
                    format!(
                        "rule condition is trivially unsatisfiable ({reason}); the rule can never fire"
                    ),
                )
                .at(r.span)
                .with("reason", Payload::Str(reason)),
            );
        }
    }
}

/// Why the top-level conjunction of `f` cannot be satisfied, if the
/// congruence closure finds a contradiction.
pub fn unsat_reason(f: &Formula, pool: &ConstantPool) -> Option<String> {
    let mut eqs: Vec<(&QTerm, &QTerm)> = Vec::new();
    let mut neqs: Vec<(&QTerm, &QTerm)> = Vec::new();
    let mut has_false = false;
    collect(f, &mut eqs, &mut neqs, &mut has_false);
    if has_false {
        return Some("it contains `false`".to_owned());
    }

    // Map `QTerm`s (deduplicated by equality, in first-occurrence order)
    // onto closure terms. Constants intern by value; variables are fresh
    // leaves deduplicated here, so closure ids coincide with positions in
    // `terms` and the closure's registration-order scans reproduce the
    // historical reporting order exactly.
    let mut cc = Cc::new();
    let mut terms: Vec<&QTerm> = Vec::new();
    fn index_of<'f>(cc: &mut Cc, terms: &mut Vec<&'f QTerm>, t: &'f QTerm) -> usize {
        match terms.iter().position(|u| *u == t) {
            Some(ix) => ix,
            None => {
                let id = match t {
                    QTerm::Const(c) => cc.constant(c.index() as u64),
                    QTerm::Var(_) => cc.fresh_var(),
                };
                debug_assert_eq!(id, terms.len());
                terms.push(t);
                id
            }
        }
    }
    let mut pairs = Vec::new();
    for (t1, t2) in &eqs {
        let a = index_of(&mut cc, &mut terms, t1);
        let b = index_of(&mut cc, &mut terms, t2);
        pairs.push((a, b));
    }
    let mut neq_pairs = Vec::new();
    for (t1, t2) in &neqs {
        let a = index_of(&mut cc, &mut terms, t1);
        let b = index_of(&mut cc, &mut terms, t2);
        neq_pairs.push((a, b, *t1, *t2));
    }
    for (a, b) in pairs {
        cc.merge(a, b);
    }

    let render = |t: &QTerm| match t {
        QTerm::Var(v) => v.name().to_owned(),
        QTerm::Const(c) => pool.name(*c).to_owned(),
    };

    // Two distinct constants merged into one class (first pair in term
    // registration order, as scanned by the closure).
    if let Some((i, j)) = cc.first_const_conflict() {
        return Some(format!(
            "the equalities force distinct constants {} = {}",
            render(terms[i]),
            render(terms[j])
        ));
    }

    // An inequality whose sides the equalities identify (collection order).
    for (a, b, t1, t2) in neq_pairs {
        if cc.same_class(a, b) {
            return Some(format!(
                "{} != {} contradicts the equalities",
                render(t1),
                render(t2)
            ));
        }
    }
    None
}

/// Collect (in)equalities of the top-level conjunction. Disjunctions,
/// quantifiers, atoms and other shapes contribute nothing (the closure
/// only reasons about what must hold in *every* model of the condition).
fn collect<'f>(
    f: &'f Formula,
    eqs: &mut Vec<(&'f QTerm, &'f QTerm)>,
    neqs: &mut Vec<(&'f QTerm, &'f QTerm)>,
    has_false: &mut bool,
) {
    match f {
        Formula::And(g, h) => {
            collect(g, eqs, neqs, has_false);
            collect(h, eqs, neqs, has_false);
        }
        Formula::Eq(t1, t2) => eqs.push((t1, t2)),
        Formula::Not(inner) => {
            if let Formula::Eq(t1, t2) = inner.as_ref() {
                neqs.push((t1, t2));
            }
        }
        Formula::False => *has_false = true,
        _ => {}
    }
}
