//! Trivially unsatisfiable rule conditions, found by a cheap congruence
//! closure (union-find) over the equalities and inequalities of the
//! condition's top-level conjunction. No query evaluation is involved, so
//! the check is linear-ish and sound-but-incomplete: anything flagged here
//! really is unsatisfiable; plenty of unsatisfiable conditions pass.

use crate::diagnostic::{codes, Diagnostic, Payload};
use crate::LintContext;
use dcds_folang::{Formula, QTerm};
use dcds_reldata::ConstantPool;

/// Run the pass.
pub fn run(ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
    let spec = ctx.spec;
    for r in &spec.rules {
        if let Some(reason) = unsat_reason(&r.condition, &spec.pool) {
            out.push(
                Diagnostic::warning(
                    codes::UNSATISFIABLE_CONDITION,
                    format!(
                        "rule condition is trivially unsatisfiable ({reason}); the rule can never fire"
                    ),
                )
                .at(r.span)
                .with("reason", Payload::Str(reason)),
            );
        }
    }
}

/// Why the top-level conjunction of `f` cannot be satisfied, if the
/// congruence closure finds a contradiction.
pub fn unsat_reason(f: &Formula, pool: &ConstantPool) -> Option<String> {
    let mut eqs: Vec<(&QTerm, &QTerm)> = Vec::new();
    let mut neqs: Vec<(&QTerm, &QTerm)> = Vec::new();
    let mut has_false = false;
    collect(f, &mut eqs, &mut neqs, &mut has_false);
    if has_false {
        return Some("it contains `false`".to_owned());
    }

    // Union-find over the terms mentioned by (in)equalities.
    fn index_of<'f>(terms: &mut Vec<&'f QTerm>, t: &'f QTerm) -> usize {
        match terms.iter().position(|u| *u == t) {
            Some(ix) => ix,
            None => {
                terms.push(t);
                terms.len() - 1
            }
        }
    }
    let mut terms: Vec<&QTerm> = Vec::new();
    let mut pairs = Vec::new();
    for (t1, t2) in &eqs {
        let a = index_of(&mut terms, t1);
        let b = index_of(&mut terms, t2);
        pairs.push((a, b));
    }
    let mut neq_pairs = Vec::new();
    for (t1, t2) in &neqs {
        let a = index_of(&mut terms, t1);
        let b = index_of(&mut terms, t2);
        neq_pairs.push((a, b, *t1, *t2));
    }
    let mut parent: Vec<usize> = (0..terms.len()).collect();
    fn find(parent: &mut Vec<usize>, x: usize) -> usize {
        if parent[x] != x {
            let root = find(parent, parent[x]);
            parent[x] = root;
        }
        parent[x]
    }
    for (a, b) in pairs {
        let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
        parent[ra] = rb;
    }

    let render = |t: &QTerm| match t {
        QTerm::Var(v) => v.name().to_owned(),
        QTerm::Const(c) => pool.name(*c).to_owned(),
    };

    // Two distinct constants merged into one class.
    for i in 0..terms.len() {
        for j in i + 1..terms.len() {
            if let (QTerm::Const(a), QTerm::Const(b)) = (terms[i], terms[j]) {
                if a != b && find(&mut parent, i) == find(&mut parent, j) {
                    return Some(format!(
                        "the equalities force distinct constants {} = {}",
                        render(terms[i]),
                        render(terms[j])
                    ));
                }
            }
        }
    }

    // An inequality whose sides the equalities identify.
    for (a, b, t1, t2) in neq_pairs {
        if find(&mut parent, a) == find(&mut parent, b) {
            return Some(format!(
                "{} != {} contradicts the equalities",
                render(t1),
                render(t2)
            ));
        }
    }
    None
}

/// Collect (in)equalities of the top-level conjunction. Disjunctions,
/// quantifiers, atoms and other shapes contribute nothing (the closure
/// only reasons about what must hold in *every* model of the condition).
fn collect<'f>(
    f: &'f Formula,
    eqs: &mut Vec<(&'f QTerm, &'f QTerm)>,
    neqs: &mut Vec<(&'f QTerm, &'f QTerm)>,
    has_false: &mut bool,
) {
    match f {
        Formula::And(g, h) => {
            collect(g, eqs, neqs, has_false);
            collect(h, eqs, neqs, has_false);
        }
        Formula::Eq(t1, t2) => eqs.push((t1, t2)),
        Formula::Not(inner) => {
            if let Formula::Eq(t1, t2) = inner.as_ref() {
                neqs.push((t1, t2));
            }
        }
        Formula::False => *has_false = true,
        _ => {}
    }
}
