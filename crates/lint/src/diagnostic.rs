//! Structured, span-carrying diagnostics with stable `DCDS0xx` codes.

use dcds_folang::lexer::Span;
use std::fmt;

/// How serious a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// The spec cannot be given a semantics; `lower()` would reject it.
    Error,
    /// The spec is valid but almost certainly not what the author meant,
    /// or carries a divergence risk (boundedness advisories).
    Warning,
    /// Informational — e.g. a concrete run/state bound estimate.
    Note,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Error => write!(f, "error"),
            Severity::Warning => write!(f, "warning"),
            Severity::Note => write!(f, "note"),
        }
    }
}

/// A machine-readable payload value attached to a diagnostic.
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// A string (rendered witness, name, …).
    Str(String),
    /// An integer (counts, indices).
    Int(i64),
    /// A float (bound estimates).
    Num(f64),
    /// A list of values (cycle positions, …).
    List(Vec<Payload>),
}

impl Payload {
    /// Serialize as a JSON value.
    pub fn to_json(&self) -> String {
        match self {
            Payload::Str(s) => json_string(s),
            Payload::Int(i) => i.to_string(),
            Payload::Num(n) => {
                if n.is_finite() {
                    // `{:e}` keeps astronomically loose bounds readable and
                    // still parseable as a JSON number.
                    format!("{n:e}")
                } else {
                    json_string(&n.to_string())
                }
            }
            Payload::List(xs) => {
                let items: Vec<String> = xs.iter().map(Payload::to_json).collect();
                format!("[{}]", items.join(","))
            }
        }
    }
}

/// Escape a string as a JSON string literal.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// One finding of a lint pass.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Stable code, e.g. `DCDS002`.
    pub code: &'static str,
    /// Severity class.
    pub severity: Severity,
    /// Human-readable message.
    pub message: String,
    /// Source position, when the finding is about a specific construct.
    pub span: Option<Span>,
    /// Machine-readable key/value payload (kept ordered for stable output).
    pub payload: Vec<(&'static str, Payload)>,
}

impl Diagnostic {
    /// Build an error diagnostic.
    pub fn error(code: &'static str, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: Severity::Error,
            message: message.into(),
            span: None,
            payload: Vec::new(),
        }
    }

    /// Build a warning diagnostic.
    pub fn warning(code: &'static str, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Warning,
            ..Diagnostic::error(code, message)
        }
    }

    /// Build a note diagnostic.
    pub fn note(code: &'static str, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Note,
            ..Diagnostic::error(code, message)
        }
    }

    /// Attach a source span.
    pub fn at(mut self, span: Span) -> Self {
        self.span = Some(span);
        self
    }

    /// Attach a payload entry.
    pub fn with(mut self, key: &'static str, value: Payload) -> Self {
        self.payload.push((key, value));
        self
    }
}

/// The stable code table. Codes are grouped by pass family:
/// `DCDS000` parse, `DCDS00x` arity/consistency, `DCDS02x` binding,
/// `DCDS04x` dead code, `DCDS06x` boundedness advisories, `DCDS08x`
/// engine-routing advisories, `DCDS099` lowering/validation catch-all.
pub mod codes {
    /// Syntax error — the spec could not be parsed at all.
    pub const PARSE_ERROR: &str = "DCDS000";
    /// An atom or init/head fact names an undeclared relation.
    pub const UNKNOWN_RELATION: &str = "DCDS001";
    /// A relation is used with the wrong number of arguments.
    pub const ARITY_MISMATCH: &str = "DCDS002";
    /// A relation is declared more than once.
    pub const DUPLICATE_RELATION: &str = "DCDS003";
    /// A head term calls an undeclared service.
    pub const UNKNOWN_SERVICE: &str = "DCDS004";
    /// A service call has the wrong number of arguments.
    pub const SERVICE_ARITY_MISMATCH: &str = "DCDS005";
    /// A service is declared more than once.
    pub const DUPLICATE_SERVICE: &str = "DCDS006";
    /// An action is declared more than once.
    pub const DUPLICATE_ACTION: &str = "DCDS007";
    /// A CA rule invokes an action that is never declared.
    pub const UNKNOWN_ACTION: &str = "DCDS008";
    /// A rule condition has free variables beyond the action's parameters.
    pub const RULE_EXTRA_FREE_VARS: &str = "DCDS009";
    /// An action parameter is not bound by the invoking rule's condition.
    pub const PARAM_UNBOUND: &str = "DCDS020";
    /// An effect head variable is bound by neither the effect body's
    /// positive atoms nor the action parameters.
    pub const HEAD_VAR_UNBOUND: &str = "DCDS021";
    /// A service call argument variable is unbound.
    pub const SERVICE_ARG_UNBOUND: &str = "DCDS022";
    /// An effect filter (`Q⁻`) uses a variable no positive atom binds.
    pub const FILTER_VAR_UNBOUND: &str = "DCDS023";
    /// An effect body is disjunctive at the top level.
    pub const EFFECT_DISJUNCTIVE: &str = "DCDS024";
    /// An action is never invoked by any CA rule.
    pub const DEAD_ACTION: &str = "DCDS040";
    /// A relation is read but never written (neither init nor any head).
    pub const RELATION_NEVER_WRITTEN: &str = "DCDS041";
    /// A relation is written but never read by any formula.
    pub const RELATION_NEVER_READ: &str = "DCDS042";
    /// A rule condition is trivially unsatisfiable (congruence closure).
    pub const UNSATISFIABLE_CONDITION: &str = "DCDS043";
    /// Deterministic services and the dependency graph is not weakly
    /// acyclic: run-boundedness (Thm 4.7) is not guaranteed.
    pub const NOT_WEAKLY_ACYCLIC: &str = "DCDS060";
    /// Nondeterministic services and the dataflow graph is not
    /// GR⁺-acyclic: state-boundedness (Thm 5.6) is not guaranteed.
    pub const NOT_GR_PLUS_ACYCLIC: &str = "DCDS061";
    /// Weakly acyclic — the Theorem 4.7 run bound estimate.
    pub const RUN_BOUND: &str = "DCDS062";
    /// GR(⁺)-acyclic — state-bounded, with the Theorem 5.6 estimate when
    /// GR-acyclicity gives one.
    pub const STATE_BOUND: &str = "DCDS063";
    /// The boundedness certificate is missing, but AG/EF safety properties
    /// remain checkable via `dcds check --engine symbolic`.
    pub const SYMBOLIC_FALLBACK: &str = "DCDS080";
    /// The spec passed the per-construct passes but strict lowering /
    /// validation still rejected it.
    pub const LOWERING_ERROR: &str = "DCDS099";
}

/// All codes the engine can emit, with one-line descriptions (drives the
/// README table and the coverage test).
pub const CODE_TABLE: &[(&str, Severity, &str)] = &[
    (codes::PARSE_ERROR, Severity::Error, "syntax error"),
    (codes::UNKNOWN_RELATION, Severity::Error, "unknown relation"),
    (
        codes::ARITY_MISMATCH,
        Severity::Error,
        "relation arity mismatch",
    ),
    (
        codes::DUPLICATE_RELATION,
        Severity::Error,
        "duplicate relation declaration",
    ),
    (codes::UNKNOWN_SERVICE, Severity::Error, "unknown service"),
    (
        codes::SERVICE_ARITY_MISMATCH,
        Severity::Error,
        "service call arity mismatch",
    ),
    (
        codes::DUPLICATE_SERVICE,
        Severity::Error,
        "duplicate service declaration",
    ),
    (
        codes::DUPLICATE_ACTION,
        Severity::Error,
        "duplicate action declaration",
    ),
    (
        codes::UNKNOWN_ACTION,
        Severity::Error,
        "rule invokes unknown action",
    ),
    (
        codes::RULE_EXTRA_FREE_VARS,
        Severity::Error,
        "rule condition free variables beyond action parameters",
    ),
    (
        codes::PARAM_UNBOUND,
        Severity::Error,
        "action parameter unbound by rule condition",
    ),
    (
        codes::HEAD_VAR_UNBOUND,
        Severity::Error,
        "effect head variable unbound",
    ),
    (
        codes::SERVICE_ARG_UNBOUND,
        Severity::Error,
        "service call over unbound variable",
    ),
    (
        codes::FILTER_VAR_UNBOUND,
        Severity::Error,
        "effect filter variable unbound",
    ),
    (
        codes::EFFECT_DISJUNCTIVE,
        Severity::Error,
        "disjunctive effect body",
    ),
    (
        codes::DEAD_ACTION,
        Severity::Warning,
        "action never invoked by any rule",
    ),
    (
        codes::RELATION_NEVER_WRITTEN,
        Severity::Warning,
        "relation read but never written",
    ),
    (
        codes::RELATION_NEVER_READ,
        Severity::Warning,
        "relation written but never read",
    ),
    (
        codes::UNSATISFIABLE_CONDITION,
        Severity::Warning,
        "trivially unsatisfiable rule condition",
    ),
    (
        codes::NOT_WEAKLY_ACYCLIC,
        Severity::Warning,
        "not weakly acyclic (run-boundedness not guaranteed)",
    ),
    (
        codes::NOT_GR_PLUS_ACYCLIC,
        Severity::Warning,
        "not GR+-acyclic (state-boundedness not guaranteed)",
    ),
    (
        codes::RUN_BOUND,
        Severity::Note,
        "run-bounded, with Theorem 4.7 estimate",
    ),
    (
        codes::STATE_BOUND,
        Severity::Note,
        "state-bounded, with Theorem 5.6 estimate",
    ),
    (
        codes::SYMBOLIC_FALLBACK,
        Severity::Note,
        "unbounded spec: AG/EF safety still decidable via --engine symbolic",
    ),
    (
        codes::LOWERING_ERROR,
        Severity::Error,
        "spec rejected by strict lowering/validation",
    ),
];
