//! # dcds-lint
//!
//! A rustc-style, multi-pass lint engine for `.dcds` specifications.
//!
//! The engine runs a registry of independent passes over the tolerant,
//! span-carrying [`DcdsSpec`] AST (see `dcds_core::spec`) and emits
//! structured [`Diagnostic`]s — each with a stable `DCDS0xx` code, a
//! severity, a message, an optional `line:col` span, and a
//! machine-readable payload. Pass families:
//!
//! * **arity/consistency** ([`consistency`]): unknown/duplicate relations,
//!   services and actions; wrong arities in atoms, init facts, effect
//!   heads and service calls; rule/parameter mismatches;
//! * **binding** ([`binding`]): action parameters not bound by the rule
//!   condition, effect-head and filter variables not bound by the effect
//!   body, service calls over unbound variables;
//! * **dead code** ([`dead`], [`unsat`]): actions no rule invokes,
//!   relations never written or never read, trivially unsatisfiable rule
//!   conditions (congruence closure over equalities/inequalities);
//! * **boundedness advisories** ([`bounded`]): reuses `dcds-analysis` to
//!   warn when the spec is neither weakly acyclic (deterministic
//!   services, Theorem 4.7) nor GR⁺-acyclic (nondeterministic services,
//!   Theorem 5.6), attaching the concrete cycle witness, and to report
//!   the estimated run/state bound when one exists;
//! * **engine routing** ([`symbolic`]): when the boundedness certificate
//!   is missing, a note points at `dcds check --engine symbolic`, which
//!   decides AG/EF safety properties without boundedness.
//!
//! Rendering to rustc-style text or line-delimited JSON lives in
//! [`render`]; the `dcds lint` subcommand drives everything.

pub mod binding;
pub mod bounded;
pub mod consistency;
pub mod dead;
pub mod diagnostic;
pub mod render;
pub mod symbolic;
pub mod unsat;

pub use diagnostic::{codes, Diagnostic, Payload, Severity, CODE_TABLE};
pub use render::{render_json, render_text};

use dcds_core::spec::DcdsSpec;
use dcds_core::Dcds;

/// What a pass sees: the surface spec, plus the validated [`Dcds`] for
/// whole-system passes (only once every spec-level pass found no error).
pub struct LintContext<'a> {
    /// The tolerant, span-carrying AST.
    pub spec: &'a DcdsSpec,
    /// The lowered system, when lowering succeeded.
    pub dcds: Option<&'a Dcds>,
}

/// A registered lint pass.
pub struct LintPass {
    /// Short pass name (shown in `--help`-style listings).
    pub name: &'static str,
    /// One-line description.
    pub description: &'static str,
    /// Whether the pass needs the lowered [`Dcds`] (runs only when the
    /// spec-level passes found no errors and lowering succeeded).
    pub needs_dcds: bool,
    /// The pass body.
    pub run: fn(&LintContext<'_>, &mut Vec<Diagnostic>),
}

/// The pass registry, in execution order.
pub fn registry() -> &'static [LintPass] {
    &[
        LintPass {
            name: "consistency",
            description: "unknown/duplicate names, arity mismatches",
            needs_dcds: false,
            run: consistency::run,
        },
        LintPass {
            name: "binding",
            description: "unbound parameters, head/filter/service-call variables",
            needs_dcds: false,
            run: binding::run,
        },
        LintPass {
            name: "dead-code",
            description: "dead actions, never-written/never-read relations",
            needs_dcds: false,
            run: dead::run,
        },
        LintPass {
            name: "unsat",
            description: "trivially unsatisfiable rule conditions",
            needs_dcds: false,
            run: unsat::run,
        },
        LintPass {
            name: "boundedness",
            description: "weak/GR+ acyclicity advisories with witnesses and bounds",
            needs_dcds: true,
            run: bounded::run,
        },
        LintPass {
            name: "symbolic-fallback",
            description: "points unbounded specs at `dcds check --engine symbolic`",
            needs_dcds: true,
            run: symbolic::run,
        },
    ]
}

/// The outcome of linting one spec.
#[derive(Debug, Clone)]
pub struct LintReport {
    /// All findings, sorted by source position then code.
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// Number of error-severity findings.
    pub fn errors(&self) -> usize {
        self.count(Severity::Error)
    }

    /// Number of warning-severity findings.
    pub fn warnings(&self) -> usize {
        self.count(Severity::Warning)
    }

    /// Number of notes.
    pub fn notes(&self) -> usize {
        self.count(Severity::Note)
    }

    /// Any errors?
    pub fn has_errors(&self) -> bool {
        self.errors() > 0
    }

    fn count(&self, s: Severity) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == s).count()
    }
}

/// Run every registered pass over a parsed spec.
///
/// Spec-level passes always run. The whole-system passes (boundedness)
/// need a validated [`Dcds`], so they run only when no spec-level pass
/// reported an error and [`DcdsSpec::lower`] succeeds; a lowering failure
/// at that point becomes a `DCDS099` diagnostic (the spec-level passes
/// missed the defect, but the strict semantics still rejects it).
pub fn lint_spec(spec: &DcdsSpec) -> LintReport {
    let mut diagnostics = Vec::new();
    let ctx = LintContext { spec, dcds: None };
    for pass in registry().iter().filter(|p| !p.needs_dcds) {
        (pass.run)(&ctx, &mut diagnostics);
    }
    if !diagnostics.iter().any(|d| d.severity == Severity::Error) {
        match spec.lower() {
            Ok(dcds) => {
                let ctx = LintContext {
                    spec,
                    dcds: Some(&dcds),
                };
                for pass in registry().iter().filter(|p| p.needs_dcds) {
                    (pass.run)(&ctx, &mut diagnostics);
                }
            }
            Err(e) => {
                let mut d = Diagnostic::error(codes::LOWERING_ERROR, e.message);
                if let Some(span) = e.span {
                    d = d.at(span);
                }
                diagnostics.push(d);
            }
        }
    }
    diagnostics.sort_by(|a, b| {
        let key = |d: &Diagnostic| {
            (
                d.span.map_or((u32::MAX, u32::MAX), |s| (s.line, s.col)),
                d.code,
            )
        };
        key(a).cmp(&key(b))
    });
    LintReport { diagnostics }
}

/// Parse and lint a source string. `Err` is a *syntax* error (exit-code 2
/// territory for the CLI); semantic defects come back as diagnostics.
pub fn lint_source(src: &str) -> Result<LintReport, dcds_folang::ParseError> {
    let spec = dcds_core::spec::parse_spec(src)?;
    Ok(lint_spec(&spec))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes_of(src: &str) -> Vec<&'static str> {
        lint_source(src)
            .expect("spec should parse")
            .diagnostics
            .iter()
            .map(|d| d.code)
            .collect()
    }

    #[test]
    fn unknown_relation_and_arity_mismatch() {
        let found = codes_of(
            "schema { P 1; }\n\
             init { P(a); }\n\
             action go() { P(X, Y) ~> P(X); Nope(X) ~> P(X); }\n\
             rule true => go;\n",
        );
        assert!(found.contains(&codes::ARITY_MISMATCH), "{found:?}");
        assert!(found.contains(&codes::UNKNOWN_RELATION), "{found:?}");
    }

    #[test]
    fn duplicate_declarations() {
        let found = codes_of(
            "schema { P 1; P 2; }\n\
             services { f 1 det; f 1 det; }\n\
             init { P(a); }\n\
             action go() { P(X) ~> P(f(X)); }\n\
             action go() { P(X) ~> P(X); }\n\
             rule true => go;\n",
        );
        assert!(found.contains(&codes::DUPLICATE_RELATION), "{found:?}");
        assert!(found.contains(&codes::DUPLICATE_SERVICE), "{found:?}");
        assert!(found.contains(&codes::DUPLICATE_ACTION), "{found:?}");
    }

    #[test]
    fn rule_errors() {
        let found = codes_of(
            "schema { P 1; }\n\
             init { P(a); }\n\
             action go(X) { P(X) ~> P(X); }\n\
             rule true => go;\n\
             rule P(X) & P(Y) => go;\n\
             rule true => gone;\n",
        );
        assert!(found.contains(&codes::PARAM_UNBOUND), "{found:?}");
        assert!(found.contains(&codes::RULE_EXTRA_FREE_VARS), "{found:?}");
        assert!(found.contains(&codes::UNKNOWN_ACTION), "{found:?}");
    }

    #[test]
    fn binding_errors_in_effects() {
        let found = codes_of(
            "schema { P 1; R 1; }\n\
             services { f 1 det; }\n\
             init { P(a); }\n\
             action go() {\n\
                 P(X) ~> R(Z);\n\
                 P(X) ~> R(f(W));\n\
                 P(X) & !R(V) ~> R(X);\n\
             }\n\
             rule true => go;\n",
        );
        assert!(found.contains(&codes::HEAD_VAR_UNBOUND), "{found:?}");
        assert!(found.contains(&codes::SERVICE_ARG_UNBOUND), "{found:?}");
        assert!(found.contains(&codes::FILTER_VAR_UNBOUND), "{found:?}");
    }

    #[test]
    fn dead_code_findings() {
        let report = lint_source(
            "schema { P 1; Q 1; S 1; }\n\
             init { P(a); }\n\
             action alive() { P(X) & !S(X) ~> P(X); }\n\
             action ghost() { P(X) ~> Q(X); }\n\
             rule true => alive;\n",
        )
        .unwrap();
        let found: Vec<_> = report.diagnostics.iter().map(|d| d.code).collect();
        assert!(found.contains(&codes::DEAD_ACTION), "{found:?}");
        assert!(found.contains(&codes::RELATION_NEVER_WRITTEN), "{found:?}");
        assert!(found.contains(&codes::RELATION_NEVER_READ), "{found:?}");
        // Warnings only: the spec still lowers, so the boundedness pass ran.
        assert!(!report.has_errors());
        assert!(found.contains(&codes::RUN_BOUND), "{found:?}");
    }

    #[test]
    fn unsatisfiable_condition() {
        let found = codes_of(
            "schema { P 1; }\n\
             init { P(a); }\n\
             action go() { P(X) ~> P(X); }\n\
             rule P(b) & b = c => go;\n",
        );
        assert!(found.contains(&codes::UNSATISFIABLE_CONDITION), "{found:?}");
    }

    #[test]
    fn weak_acyclicity_warning_with_witness() {
        // Example 4.3 with a deterministic service: not weakly acyclic.
        let report = lint_source(
            "schema { R 1; Q 1; }\n\
             services { f 1 det; }\n\
             init { R(a); }\n\
             action alpha() { R(X) ~> Q(f(X)); Q(X) ~> R(X); }\n\
             rule true => alpha;\n",
        )
        .unwrap();
        let d = report
            .diagnostics
            .iter()
            .find(|d| d.code == codes::NOT_WEAKLY_ACYCLIC)
            .expect("expected DCDS060");
        assert_eq!(d.severity, Severity::Warning);
        assert!(d.payload.iter().any(|(k, _)| *k == "cycle"));
    }

    #[test]
    fn gr_plus_warning_on_accumulator() {
        let report = lint_source(
            "schema { R 1; Q 1; }\n\
             services { f 1 nondet; }\n\
             init { R(a); }\n\
             action alpha() { R(X) ~> R(X); R(X) ~> Q(f(X)); Q(X) ~> Q(X); }\n\
             rule true => alpha;\n",
        )
        .unwrap();
        let d = report
            .diagnostics
            .iter()
            .find(|d| d.code == codes::NOT_GR_PLUS_ACYCLIC)
            .expect("expected DCDS061");
        assert!(d
            .payload
            .iter()
            .any(|(k, v)| *k == "witness" && matches!(v, Payload::Str(s) if s.contains("pi3"))));
    }

    #[test]
    fn symbolic_fallback_note_accompanies_boundedness_warnings() {
        // Deterministic, not weakly acyclic → DCDS060 + DCDS080.
        let det = lint_source(
            "schema { R 1; Flag 1; }\n\
             services { f 1 det; }\n\
             init { R(a); Flag(ok); }\n\
             action step() { R(X) ~> R(f(X)); Flag(Y) ~> Flag(Y); }\n\
             rule true => step;\n",
        )
        .unwrap();
        let d = det
            .diagnostics
            .iter()
            .find(|d| d.code == codes::SYMBOLIC_FALLBACK)
            .expect("expected DCDS080");
        assert_eq!(d.severity, Severity::Note);
        assert!(d.message.contains("--engine symbolic"), "{}", d.message);

        // Nondeterministic accumulator, not GR+-acyclic → DCDS061 + DCDS080.
        let nondet = lint_source(
            "schema { R 1; Q 1; }\n\
             services { f 1 nondet; }\n\
             init { R(a); }\n\
             action alpha() { R(X) ~> R(X); R(X) ~> Q(f(X)); Q(X) ~> Q(X); }\n\
             rule true => alpha;\n",
        )
        .unwrap();
        let found: Vec<_> = nondet.diagnostics.iter().map(|d| d.code).collect();
        assert!(found.contains(&codes::SYMBOLIC_FALLBACK), "{found:?}");

        // Bounded specs stay quiet.
        let bounded = lint_source(
            "schema { P 1; }\n\
             services { f 1 det; }\n\
             init { P(a); }\n\
             action go() { P(X) ~> P(f(a)); }\n\
             rule true => go;\n",
        )
        .unwrap();
        assert!(bounded
            .diagnostics
            .iter()
            .all(|d| d.code != codes::SYMBOLIC_FALLBACK));
    }

    #[test]
    fn state_bound_note_on_ping_pong() {
        // Example 4.3 under nondeterministic services: GR-acyclic.
        let report = lint_source(
            "schema { R 1; Q 1; }\n\
             services { f 1 nondet; }\n\
             init { R(a); }\n\
             action alpha() { R(X) ~> Q(f(X)); Q(X) ~> R(X); }\n\
             rule true => alpha;\n",
        )
        .unwrap();
        assert!(!report.has_errors());
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.code == codes::STATE_BOUND));
    }

    #[test]
    fn clean_spec_yields_only_notes() {
        let report = lint_source(
            "schema { P 1; }\n\
             services { f 1 det; }\n\
             init { P(a); }\n\
             action go() { P(X) ~> P(f(a)); }\n\
             rule true => go;\n",
        )
        .unwrap();
        assert_eq!(report.errors(), 0);
        assert_eq!(report.warnings(), 0);
    }

    #[test]
    fn disjunctive_effect_is_flagged() {
        let found = codes_of(
            "schema { P 1; Q 1; }\n\
             init { P(a); }\n\
             action go() { P(X) | Q(X) ~> P(X); }\n\
             rule true => go;\n",
        );
        assert!(found.contains(&codes::EFFECT_DISJUNCTIVE), "{found:?}");
    }

    #[test]
    fn diagnostics_are_sorted_by_position() {
        let report = lint_source(
            "schema { P 1; }\n\
             init { P(a); }\n\
             action go() { Nope(X) ~> P(X); P(X, Y) ~> P(X); }\n\
             rule true => go;\n",
        )
        .unwrap();
        let spans: Vec<_> = report.diagnostics.iter().filter_map(|d| d.span).collect();
        let mut sorted = spans.clone();
        sorted.sort_by_key(|s| (s.line, s.col));
        assert_eq!(spans, sorted);
    }
}
