//! Boundedness advisories, reusing `dcds-analysis`.
//!
//! Deterministic services: weak acyclicity of the dependency graph
//! guarantees run-boundedness (Theorem 4.7) and hence decidable μL
//! verification; a violation comes with the cycle through a special edge.
//! Nondeterministic services: GR⁺-acyclicity of the dataflow graph
//! guarantees state-boundedness (Theorem 5.6) and decidable μLₚ
//! verification; a violation comes with the π₁π₂π₃ witness.
//!
//! These are advisories, not errors: an unbounded spec is still a valid
//! DCDS, it just falls outside the decidable fragments.

use crate::diagnostic::{codes, Diagnostic, Payload};
use crate::LintContext;
use dcds_analysis::{
    dataflow_graph, dependency_graph, gr_plus_witness, is_gr_acyclic, render_dep_cycle,
    render_witness, run_bound_estimate, state_bound_estimate, weak_cycle_witness,
};

/// Run the pass. Only reached with a lowered [`dcds_core::Dcds`] in the
/// context (the registry marks it `needs_dcds`).
pub fn run(ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
    let Some(dcds) = ctx.dcds else { return };

    if dcds.is_deterministic() {
        let dg = dependency_graph(dcds);
        match weak_cycle_witness(&dg) {
            Some(cycle) => {
                let rendered = render_dep_cycle(&cycle, &dg, &dcds.data.schema);
                let positions: Vec<Payload> = cycle
                    .iter()
                    .map(|&eid| {
                        let (from, _) = dg.graph.edge(eid);
                        let (rel, i) = dg.positions[from];
                        Payload::Str(format!("{}.{}", dcds.data.schema.name(rel), i + 1))
                    })
                    .collect();
                out.push(
                    Diagnostic::warning(
                        codes::NOT_WEAKLY_ACYCLIC,
                        format!(
                            "spec is not weakly acyclic: the dependency graph has a cycle through a special edge ({rendered}); runs may grow without bound and verification falls outside the decidable fragment of Theorem 4.7"
                        ),
                    )
                    .with("cycle", Payload::List(positions))
                    .with("rendered", Payload::Str(rendered)),
                );
            }
            None => {
                let mut d = Diagnostic::note(
                    codes::RUN_BOUND,
                    "spec is weakly acyclic: every run is bounded and mu-calculus verification is decidable (Theorem 4.7)",
                );
                if let Some(bound) = run_bound_estimate(dcds, &dg) {
                    d = d
                        .with("run_bound", Payload::Num(bound))
                        .with("kind", Payload::Str("run".to_owned()));
                }
                out.push(d);
            }
        }
        return;
    }

    // Nondeterministic (or mixed) services: the dataflow-graph route.
    let df = dataflow_graph(dcds);
    match gr_plus_witness(&df) {
        Some(w) => {
            let rendered = render_witness(&w, &df, dcds);
            out.push(
                Diagnostic::warning(
                    codes::NOT_GR_PLUS_ACYCLIC,
                    format!(
                        "spec is not GR+-acyclic: the dataflow graph carries a generate/recall witness:\n{rendered}\nstates may grow without bound and verification falls outside the decidable fragment of Theorem 5.6"
                    ),
                )
                .with("witness", Payload::Str(rendered)),
            );
        }
        None => {
            let mut d = Diagnostic::note(
                codes::STATE_BOUND,
                if is_gr_acyclic(&df) {
                    "spec is GR-acyclic: every state is bounded and mu-calculus (persistent fragment) verification is decidable (Theorem 5.6)"
                } else {
                    "spec is GR+-acyclic (GR-cyclic, but every witness is excused): states stay bounded and verification is decidable (Theorem 5.6)"
                },
            );
            if is_gr_acyclic(&df) {
                if let Some(bound) = state_bound_estimate(dcds, &df) {
                    d = d
                        .with("state_bound", Payload::Num(bound))
                        .with("kind", Payload::Str("state".to_owned()));
                }
            }
            out.push(d);
        }
    }
}
