//! Rendering diagnostics: rustc-style text and line-delimited JSON.

use crate::diagnostic::{json_string, Diagnostic};

/// Render a diagnostic rustc-style:
///
/// ```text
/// error[DCDS002]: relation `P` is used with 2 arguments, but ...
///   --> specs/bad/arity_mismatch.dcds:6:18
///    |
///  6 |     P(X, Y) ~> R(X);
///    |     ^
///    = name: P
/// ```
///
/// `src` is the full spec source (for the quoted line); pass `""` when it
/// is unavailable and the snippet is omitted.
pub fn render_text(d: &Diagnostic, path: &str, src: &str) -> String {
    let mut out = format!("{}[{}]: {}\n", d.severity, d.code, d.message);
    if let Some(span) = d.span {
        out.push_str(&format!("  --> {path}:{}:{}\n", span.line, span.col));
        if let Some(line) = src.lines().nth(span.line as usize - 1) {
            let gutter = span.line.to_string();
            let pad = " ".repeat(gutter.len());
            out.push_str(&format!(" {pad} |\n"));
            out.push_str(&format!(" {gutter} | {line}\n"));
            let caret_pad = " ".repeat(span.col as usize - 1);
            out.push_str(&format!(" {pad} | {caret_pad}^\n"));
        }
    }
    for (key, value) in &d.payload {
        out.push_str(&format!("  = {key}: {}\n", value.to_json()));
    }
    out
}

/// Render a diagnostic as a single-line JSON object:
///
/// ```text
/// {"code":"DCDS002","severity":"error","message":"...","file":"specs/x.dcds","line":6,"col":18,"payload":{"name":"P"}}
/// ```
///
/// `line`/`col` are omitted when the diagnostic has no span.
pub fn render_json(d: &Diagnostic, path: &str) -> String {
    let mut out = String::from("{");
    out.push_str(&format!("\"code\":{}", json_string(d.code)));
    out.push_str(&format!(
        ",\"severity\":{}",
        json_string(&d.severity.to_string())
    ));
    out.push_str(&format!(",\"message\":{}", json_string(&d.message)));
    out.push_str(&format!(",\"file\":{}", json_string(path)));
    if let Some(span) = d.span {
        out.push_str(&format!(",\"line\":{},\"col\":{}", span.line, span.col));
    }
    out.push_str(",\"payload\":{");
    let entries: Vec<String> = d
        .payload
        .iter()
        .map(|(k, v)| format!("{}:{}", json_string(k), v.to_json()))
        .collect();
    out.push_str(&entries.join(","));
    out.push_str("}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnostic::{codes, Diagnostic, Payload};
    use dcds_folang::Span;

    #[test]
    fn text_has_span_snippet_and_payload() {
        let d = Diagnostic::error(codes::ARITY_MISMATCH, "bad arity")
            .at(Span::new(2, 5))
            .with("name", Payload::Str("P".to_owned()));
        let rendered = render_text(&d, "x.dcds", "schema {\n    P 1;\n}\n");
        assert!(rendered.starts_with("error[DCDS002]: bad arity\n"));
        assert!(rendered.contains("  --> x.dcds:2:5\n"));
        assert!(rendered.contains(" 2 |     P 1;\n"));
        assert!(rendered.contains(" | ^") || rendered.contains("|     ^"));
        assert!(rendered.contains("  = name: \"P\"\n"));
    }

    #[test]
    fn text_without_span_or_source() {
        let d = Diagnostic::note(codes::RUN_BOUND, "bounded");
        assert_eq!(render_text(&d, "x.dcds", ""), "note[DCDS062]: bounded\n");
    }

    #[test]
    fn json_is_one_line_and_escaped() {
        let d = Diagnostic::warning(codes::DEAD_ACTION, "action `a` is \"dead\"\nreally")
            .at(Span::new(7, 1))
            .with("action", Payload::Str("a".to_owned()))
            .with("count", Payload::Int(3));
        let rendered = render_json(&d, "x.dcds");
        assert!(!rendered.contains('\n'));
        assert_eq!(
            rendered,
            "{\"code\":\"DCDS040\",\"severity\":\"warning\",\"message\":\"action `a` is \\\"dead\\\"\\nreally\",\"file\":\"x.dcds\",\"line\":7,\"col\":1,\"payload\":{\"action\":\"a\",\"count\":3}}"
        );
    }

    #[test]
    fn json_omits_span_when_absent() {
        let d = Diagnostic::note(codes::STATE_BOUND, "ok");
        let rendered = render_json(&d, "x.dcds");
        assert!(!rendered.contains("\"line\""));
        assert!(rendered.contains("\"payload\":{}"));
    }
}
