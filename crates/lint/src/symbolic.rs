//! Symbolic-engine advisory.
//!
//! When a spec misses the boundedness certificate its service kind calls
//! for — deterministic services without weak acyclicity (Theorem 4.7), or
//! nondeterministic/mixed services without GR⁺-acyclicity (Theorem 5.6) —
//! the explicit abstraction engines can only answer up to a state budget.
//! The AG/EF safety fragment is still decidable-in-practice there via
//! regression-based backward reachability, so this pass points the user at
//! `dcds check --engine symbolic` whenever the boundedness pass has warned.
//!
//! A note, not a warning: the spec is fine, this is routing advice.

use crate::diagnostic::{codes, Diagnostic, Payload};
use crate::LintContext;
use dcds_analysis::{dataflow_graph, dependency_graph, gr_plus_witness, weak_cycle_witness};

/// Run the pass. Only reached with a lowered [`dcds_core::Dcds`] in the
/// context (the registry marks it `needs_dcds`).
pub fn run(ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
    let Some(dcds) = ctx.dcds else { return };

    let unbounded_reason = if dcds.is_deterministic() {
        weak_cycle_witness(&dependency_graph(dcds)).map(|_| "not weakly acyclic")
    } else {
        gr_plus_witness(&dataflow_graph(dcds)).map(|_| "not GR+-acyclic")
    };
    let Some(reason) = unbounded_reason else {
        return;
    };

    out.push(
        Diagnostic::note(
            codes::SYMBOLIC_FALLBACK,
            format!(
                "boundedness certificate missing ({reason}): explicit abstraction may be \
                 truncated; AG/EF safety properties can still be decided by backward \
                 reachability with `dcds check --engine symbolic`"
            ),
        )
        .with("reason", Payload::Str(reason.to_owned()))
        .with(
            "engine",
            Payload::Str("dcds check --engine symbolic".to_owned()),
        ),
    );
}
