//! Dead-code pass: declared things the process can never exercise.

use crate::diagnostic::{codes, Diagnostic, Payload};
use crate::LintContext;
use std::collections::BTreeSet;

/// Run the pass.
pub fn run(ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
    let spec = ctx.spec;

    // Actions never referenced by any CA rule can never execute (the
    // process layer only acts through rules).
    let invoked: BTreeSet<&str> = spec.rules.iter().map(|r| r.action.as_str()).collect();
    for a in &spec.actions {
        if !invoked.contains(a.name.as_str()) {
            out.push(
                Diagnostic::warning(
                    codes::DEAD_ACTION,
                    format!("action `{}` is never invoked by any rule", a.name),
                )
                .at(a.span)
                .with("action", Payload::Str(a.name.clone())),
            );
        }
    }

    // Writers: init facts and effect heads. Readers: every formula atom.
    let written: BTreeSet<&str> = spec
        .init
        .iter()
        .map(|f| f.rel.as_str())
        .chain(
            spec.actions
                .iter()
                .flat_map(|a| a.effects.iter())
                .flat_map(|e| e.heads.iter())
                .map(|h| h.rel.as_str()),
        )
        .collect();
    let read: BTreeSet<&str> = spec.formula_uses().map(|u| u.name.as_str()).collect();

    let mut seen = BTreeSet::new();
    for d in &spec.relations {
        // Report each relation once, at its first declaration (duplicate
        // declarations are a consistency-pass error already).
        if !seen.insert(d.name.as_str()) {
            continue;
        }
        if !written.contains(d.name.as_str()) {
            out.push(
                Diagnostic::warning(
                    codes::RELATION_NEVER_WRITTEN,
                    format!(
                        "relation `{}` is never written: no init fact or effect head mentions it, so it is empty in every state",
                        d.name
                    ),
                )
                .at(d.span)
                .with("relation", Payload::Str(d.name.clone())),
            );
        }
        if !read.contains(d.name.as_str()) {
            out.push(
                Diagnostic::warning(
                    codes::RELATION_NEVER_READ,
                    format!(
                        "relation `{}` is never read: no constraint, rule condition or effect body mentions it",
                        d.name
                    ),
                )
                .at(d.span)
                .with("relation", Payload::Str(d.name.clone())),
            );
        }
    }
}
