//! Binding pass: every variable that feeds the next state must be bound.
//!
//! Mirrors the strict semantics of `effect_from_body` and `Dcds::validate`
//! without aborting at the first defect: the binding set of an effect is
//! the variables of its top-level positive atoms plus the action
//! parameters; head variables, service-call arguments and filter (`Q⁻`)
//! free variables must all come from it.

use crate::diagnostic::{codes, Diagnostic, Payload};
use crate::LintContext;
use dcds_core::spec::SpecTerm;
use dcds_folang::{Formula, QTerm, Var};
use std::collections::BTreeSet;

/// Run the pass.
pub fn run(ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
    let spec = ctx.spec;

    // Action parameters must be bound by every invoking rule's condition.
    for r in &spec.rules {
        if let Some(a) = spec.action(&r.action) {
            let free = r.condition.free_vars();
            for p in &a.params {
                if !free.contains(p) {
                    out.push(
                        Diagnostic::error(
                            codes::PARAM_UNBOUND,
                            format!(
                                "parameter {} of action `{}` is not bound by the rule condition",
                                p.name(),
                                a.name
                            ),
                        )
                        .at(r.span)
                        .with("parameter", Payload::Str(p.name().to_owned()))
                        .with("action", Payload::Str(a.name.clone())),
                    );
                }
            }
        }
    }

    // Effect bodies: positive atoms bind; heads, calls and filters consume.
    for a in &spec.actions {
        for e in &a.effects {
            let mut atom_vars: BTreeSet<Var> = BTreeSet::new();
            let mut filters: Vec<&Formula> = Vec::new();
            let mut equalities: Vec<(&QTerm, &QTerm)> = Vec::new();
            if !split_body(&e.body, &mut atom_vars, &mut equalities, &mut filters) {
                out.push(
                    Diagnostic::error(
                        codes::EFFECT_DISJUNCTIVE,
                        "effect body is disjunctive at the top level; write one effect per disjunct",
                    )
                    .at(e.span),
                );
                continue;
            }
            let bound = |v: &Var| atom_vars.contains(v) || a.params.contains(v);

            // Equalities whose variables are all bound join q⁺; the rest
            // fall back to the filter, where their variables must be bound
            // anyway — so for linting, every equality behaves like a filter.
            for (t1, t2) in equalities {
                for t in [t1, t2] {
                    if let QTerm::Var(v) = t {
                        if !bound(v) {
                            out.push(
                                Diagnostic::error(
                                    codes::FILTER_VAR_UNBOUND,
                                    format!(
                                        "effect equality uses variable {} which no positive atom binds",
                                        v.name()
                                    ),
                                )
                                .at(e.span)
                                .with("variable", Payload::Str(v.name().to_owned())),
                            );
                        }
                    }
                }
            }
            for f in filters {
                for v in f.free_vars() {
                    if !bound(&v) {
                        out.push(
                            Diagnostic::error(
                                codes::FILTER_VAR_UNBOUND,
                                format!(
                                    "effect filter uses variable {} which no positive atom binds",
                                    v.name()
                                ),
                            )
                            .at(e.span)
                            .with("variable", Payload::Str(v.name().to_owned())),
                        );
                    }
                }
            }

            for h in &e.heads {
                for t in &h.terms {
                    check_head_term(t, &bound, out);
                }
            }
        }
    }
}

fn check_head_term(t: &SpecTerm, bound: &dyn Fn(&Var) -> bool, out: &mut Vec<Diagnostic>) {
    match t {
        SpecTerm::Var { name, span } => {
            if !bound(&Var::new(name)) {
                out.push(
                    Diagnostic::error(
                        codes::HEAD_VAR_UNBOUND,
                        format!("head variable {name} is not bound by the effect body"),
                    )
                    .at(*span)
                    .with("variable", Payload::Str(name.clone())),
                );
            }
        }
        SpecTerm::Const { .. } => {}
        SpecTerm::Call { service, args, .. } => {
            for arg in args {
                match arg {
                    SpecTerm::Var { name, span } => {
                        if !bound(&Var::new(name)) {
                            out.push(
                                Diagnostic::error(
                                    codes::SERVICE_ARG_UNBOUND,
                                    format!(
                                        "service call {service}(…) uses variable {name} which the effect body does not bind"
                                    ),
                                )
                                .at(*span)
                                .with("variable", Payload::Str(name.clone()))
                                .with("service", Payload::Str(service.clone())),
                            );
                        }
                    }
                    // Nested calls are a parse-time impossibility, and
                    // constant arguments bind nothing.
                    _ => check_head_term(arg, bound, out),
                }
            }
        }
    }
}

/// Collect the top-level conjunctive structure of an effect body. Returns
/// `false` on a top-level disjunction (the body has no conjunctive
/// reading).
fn split_body<'f>(
    f: &'f Formula,
    atom_vars: &mut BTreeSet<Var>,
    equalities: &mut Vec<(&'f QTerm, &'f QTerm)>,
    filters: &mut Vec<&'f Formula>,
) -> bool {
    match f {
        Formula::And(g, h) => {
            split_body(g, atom_vars, equalities, filters)
                && split_body(h, atom_vars, equalities, filters)
        }
        Formula::Atom(_, terms) => {
            for t in terms {
                if let QTerm::Var(v) = t {
                    atom_vars.insert(v.clone());
                }
            }
            true
        }
        Formula::Eq(t1, t2) => {
            equalities.push((t1, t2));
            true
        }
        Formula::True => true,
        Formula::Or(_, _) => false,
        other => {
            filters.push(other);
            true
        }
    }
}
