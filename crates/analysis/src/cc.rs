//! A small congruence-closure engine shared by the lint pass `DCDS043`
//! (trivially unsatisfiable rule conditions) and the symbolic safety
//! engine (`dcds-symbolic`), which uses it for clause satisfiability,
//! entailment, and deterministic-service reasoning.
//!
//! The engine reasons about three kinds of terms:
//!
//! * **constants** — leaves carrying a caller-chosen `u64` payload; two
//!   constants with *different* payloads merged into one class is a
//!   conflict (the unique-name assumption of the paper's countably
//!   infinite domain `C`);
//! * **variables** — uninterpreted leaves (callers intern them however
//!   they like; [`Cc::variable`] dedups by key, [`Cc::fresh_var`] never
//!   dedups);
//! * **applications** `f(t₁, …, tₙ)` — uninterpreted function terms,
//!   hash-consed, closed under congruence: whenever the arguments of two
//!   applications of the same function are pairwise merged, the
//!   applications are merged too. Deterministic service calls are exactly
//!   such terms — congruence is the whole-run consistency of the service
//!   call map `M` (Section 4.1).
//!
//! Term ids are dense and assigned in creation order, so callers that
//! need a deterministic scan (the lint pass reports the *first* pair of
//! distinct constants forced equal, in term-registration order) can
//! iterate `0..num_terms()`.
//!
//! Complexity is deliberately simple: path-compressed union-find plus a
//! quadratic congruence fixpoint per merge batch. Both clients work on
//! conjunctions with at most a few dozen terms; asymptotics are not the
//! bottleneck, determinism and auditability are.

/// Dense id of a registered term, in creation order.
pub type TermId = usize;

/// What a registered term is (exposed for callers that map ids back to
/// their own syntax).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CcTerm {
    /// A constant with a caller-chosen payload.
    Const(u64),
    /// An uninterpreted leaf.
    Var,
    /// An application `f(args…)` of an uninterpreted function.
    App(u64, Vec<TermId>),
}

/// The kind of contradiction a closure can reach.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CcConflict {
    /// Two distinct constants were merged into one class.
    DistinctConstants(TermId, TermId),
    /// A registered disequality has both sides in one class.
    Disequality(TermId, TermId),
}

/// A congruence closure over constants, variables, and applications.
#[derive(Debug, Clone, Default)]
pub struct Cc {
    terms: Vec<CcTerm>,
    parent: Vec<TermId>,
    /// Disequalities, in registration order.
    neqs: Vec<(TermId, TermId)>,
    /// Interning table for constants (payload → id).
    const_ids: Vec<(u64, TermId)>,
    /// Interning table for keyed variables (key → id).
    var_ids: Vec<(u64, TermId)>,
}

impl Cc {
    /// An empty closure.
    pub fn new() -> Self {
        Cc::default()
    }

    /// Number of registered terms (ids are `0..num_terms()`).
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// The term behind an id.
    pub fn term(&self, t: TermId) -> &CcTerm {
        &self.terms[t]
    }

    fn push(&mut self, t: CcTerm) -> TermId {
        let id = self.terms.len();
        self.terms.push(t);
        self.parent.push(id);
        id
    }

    /// Register (or retrieve) the constant with the given payload.
    pub fn constant(&mut self, payload: u64) -> TermId {
        if let Some(&(_, id)) = self.const_ids.iter().find(|(p, _)| *p == payload) {
            return id;
        }
        let id = self.push(CcTerm::Const(payload));
        self.const_ids.push((payload, id));
        id
    }

    /// Register (or retrieve) the variable with the given key.
    pub fn variable(&mut self, key: u64) -> TermId {
        if let Some(&(_, id)) = self.var_ids.iter().find(|(k, _)| *k == key) {
            return id;
        }
        let id = self.push(CcTerm::Var);
        self.var_ids.push((key, id));
        id
    }

    /// Register a fresh, never-deduplicated variable.
    pub fn fresh_var(&mut self) -> TermId {
        self.push(CcTerm::Var)
    }

    /// Register (or retrieve) the application `f(args…)`. Hash-consed on
    /// the *syntactic* argument ids; congruence merging of distinct nodes
    /// happens in the closure, not here.
    pub fn app(&mut self, func: u64, args: &[TermId]) -> TermId {
        for (id, t) in self.terms.iter().enumerate() {
            if let CcTerm::App(f, a) = t {
                if *f == func && a.as_slice() == args {
                    return id;
                }
            }
        }
        let id = self.push(CcTerm::App(func, args.to_vec()));
        self.congruence_fixpoint();
        id
    }

    /// Class representative (path-compressed).
    pub fn find(&mut self, mut x: TermId) -> TermId {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    /// True when two terms are in the same class.
    pub fn same_class(&mut self, a: TermId, b: TermId) -> bool {
        self.find(a) == self.find(b)
    }

    /// Merge the classes of two terms and re-close under congruence.
    pub fn merge(&mut self, a: TermId, b: TermId) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        // Root choice: lower id wins, keeping representatives deterministic.
        let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
        self.parent[hi] = lo;
        self.congruence_fixpoint();
    }

    /// Close under congruence: merge applications of the same function
    /// whose arguments are pairwise merged. Quadratic per round; term
    /// counts are small for both clients.
    fn congruence_fixpoint(&mut self) {
        loop {
            let mut to_merge: Option<(TermId, TermId)> = None;
            'outer: for i in 0..self.terms.len() {
                let CcTerm::App(fi, ai) = self.terms[i].clone() else {
                    continue;
                };
                for j in i + 1..self.terms.len() {
                    let CcTerm::App(fj, aj) = self.terms[j].clone() else {
                        continue;
                    };
                    if fi != fj || ai.len() != aj.len() || self.same_class(i, j) {
                        continue;
                    }
                    let congruent = ai
                        .iter()
                        .zip(aj.iter())
                        .all(|(&x, &y)| self.find(x) == self.find(y));
                    if congruent {
                        to_merge = Some((i, j));
                        break 'outer;
                    }
                }
            }
            match to_merge {
                Some((i, j)) => {
                    let (ri, rj) = (self.find(i), self.find(j));
                    let (lo, hi) = if ri < rj { (ri, rj) } else { (rj, ri) };
                    self.parent[hi] = lo;
                }
                None => break,
            }
        }
    }

    /// Record a disequality `a ≠ b` (checked lazily by [`Cc::conflict`]).
    pub fn add_neq(&mut self, a: TermId, b: TermId) {
        self.neqs.push((a, b));
    }

    /// The constant payload merged into `t`'s class, if any.
    pub fn class_constant(&mut self, t: TermId) -> Option<u64> {
        let r = self.find(t);
        for i in 0..self.terms.len() {
            if let CcTerm::Const(p) = self.terms[i] {
                if self.find(i) == r {
                    return Some(p);
                }
            }
        }
        None
    }

    /// The first pair of *distinct* constants forced into one class, in
    /// term-registration order (`i < j`), if any.
    pub fn first_const_conflict(&mut self) -> Option<(TermId, TermId)> {
        for i in 0..self.terms.len() {
            let CcTerm::Const(pi) = self.terms[i] else {
                continue;
            };
            for j in i + 1..self.terms.len() {
                let CcTerm::Const(pj) = self.terms[j] else {
                    continue;
                };
                if pi != pj && self.same_class(i, j) {
                    return Some((i, j));
                }
            }
        }
        None
    }

    /// The first registered disequality whose sides the closure has
    /// identified, if any (registration order).
    pub fn first_neq_conflict(&mut self) -> Option<(TermId, TermId)> {
        for k in 0..self.neqs.len() {
            let (a, b) = self.neqs[k];
            if self.same_class(a, b) {
                return Some((a, b));
            }
        }
        None
    }

    /// The first contradiction reachable from the current state: distinct
    /// constants merged (scanned in registration order) take precedence
    /// over violated disequalities, matching the lint pass's reporting
    /// order.
    pub fn conflict(&mut self) -> Option<CcConflict> {
        if let Some((i, j)) = self.first_const_conflict() {
            return Some(CcConflict::DistinctConstants(i, j));
        }
        if let Some((a, b)) = self.first_neq_conflict() {
            return Some(CcConflict::Disequality(a, b));
        }
        None
    }

    /// True when `a ≠ b` is *entailed*: the classes contain distinct
    /// constants, or some registered disequality connects the two classes.
    pub fn entails_neq(&mut self, a: TermId, b: TermId) -> bool {
        if self.same_class(a, b) {
            return false;
        }
        if let (Some(ca), Some(cb)) = (self.class_constant(a), self.class_constant(b)) {
            if ca != cb {
                return true;
            }
        }
        let ra = self.find(a);
        let rb = self.find(b);
        for k in 0..self.neqs.len() {
            let (x, y) = self.neqs[k];
            let (rx, ry) = (self.find(x), self.find(y));
            if (rx == ra && ry == rb) || (rx == rb && ry == ra) {
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transitivity_of_equalities() {
        // x = y, y = z ⟹ x = z; and an unrelated w stays apart.
        let mut cc = Cc::new();
        let x = cc.variable(0);
        let y = cc.variable(1);
        let z = cc.variable(2);
        let w = cc.variable(3);
        cc.merge(x, y);
        cc.merge(y, z);
        assert!(cc.same_class(x, z));
        assert!(!cc.same_class(x, w));
        assert!(cc.conflict().is_none());
    }

    #[test]
    fn disequality_conflict() {
        // x ≠ y together with x = z, z = y is a contradiction.
        let mut cc = Cc::new();
        let x = cc.variable(0);
        let y = cc.variable(1);
        let z = cc.variable(2);
        cc.add_neq(x, y);
        assert!(cc.conflict().is_none());
        cc.merge(x, z);
        cc.merge(z, y);
        assert_eq!(cc.conflict(), Some(CcConflict::Disequality(x, y)));
    }

    #[test]
    fn distinct_constants_conflict_and_scan_order() {
        // a = x, b = x forces a = b for distinct constants a, b; the first
        // conflicting pair in registration order is reported.
        let mut cc = Cc::new();
        let a = cc.constant(10);
        let b = cc.constant(20);
        let x = cc.variable(0);
        cc.merge(a, x);
        assert!(cc.conflict().is_none());
        cc.merge(b, x);
        assert_eq!(cc.conflict(), Some(CcConflict::DistinctConstants(a, b)));
        assert_eq!(cc.first_const_conflict(), Some((a, b)));
    }

    #[test]
    fn function_free_atoms_intern_by_key() {
        // Constants intern by payload, keyed variables by key, fresh vars
        // never — the function-free fragment the lint pass lives in.
        let mut cc = Cc::new();
        assert_eq!(cc.constant(7), cc.constant(7));
        assert_ne!(cc.constant(7), cc.constant(8));
        assert_eq!(cc.variable(1), cc.variable(1));
        assert_ne!(cc.variable(1), cc.variable(2));
        assert_ne!(cc.fresh_var(), cc.fresh_var());
        assert_eq!(cc.num_terms(), 6);
    }

    #[test]
    fn congruence_propagates_through_applications() {
        // x = y ⟹ f(x) = f(y); then f(x) = a, f(y) = b conflicts for
        // distinct constants a, b.
        let mut cc = Cc::new();
        let x = cc.variable(0);
        let y = cc.variable(1);
        let fx = cc.app(0, &[x]);
        let fy = cc.app(0, &[y]);
        assert!(!cc.same_class(fx, fy));
        cc.merge(x, y);
        assert!(cc.same_class(fx, fy));
        let a = cc.constant(1);
        let b = cc.constant(2);
        cc.merge(fx, a);
        assert!(cc.conflict().is_none());
        cc.merge(fy, b);
        assert!(matches!(
            cc.conflict(),
            Some(CcConflict::DistinctConstants(_, _))
        ));
    }

    #[test]
    fn congruence_is_nested_and_lazy() {
        // g(f(x)) = a and later x = y makes g(f(y)) = a too, even when
        // g(f(y)) is registered before the merge.
        let mut cc = Cc::new();
        let x = cc.variable(0);
        let y = cc.variable(1);
        let fx = cc.app(0, &[x]);
        let gfx = cc.app(1, &[fx]);
        let fy = cc.app(0, &[y]);
        let gfy = cc.app(1, &[fy]);
        let a = cc.constant(9);
        cc.merge(gfx, a);
        assert!(!cc.same_class(gfy, a));
        cc.merge(x, y);
        assert!(cc.same_class(gfy, a));
    }

    #[test]
    fn entailed_disequalities() {
        let mut cc = Cc::new();
        let a = cc.constant(1);
        let b = cc.constant(2);
        let x = cc.variable(0);
        let y = cc.variable(1);
        let z = cc.variable(2);
        cc.merge(x, a);
        cc.merge(y, b);
        // Distinct constants in the classes.
        assert!(cc.entails_neq(x, y));
        // Registered disequality connecting the classes.
        cc.add_neq(y, z);
        assert!(cc.entails_neq(z, b));
        // Nothing known between x and z.
        assert!(!cc.entails_neq(x, z));
    }

    #[test]
    fn class_constant_lookup() {
        let mut cc = Cc::new();
        let a = cc.constant(42);
        let x = cc.variable(0);
        let y = cc.variable(1);
        cc.merge(x, a);
        assert_eq!(cc.class_constant(x), Some(42));
        assert_eq!(cc.class_constant(y), None);
    }
}
