//! # dcds-analysis
//!
//! Static analysis of DCDS process layers — the effectively-checkable
//! sufficient conditions of the paper:
//!
//! * the **positive approximate** `S⁺` (Section 4.3), an over-approximating
//!   transformation that drops equality constraints, parameters, and
//!   negative filters ([`approximate`]);
//! * the **dependency graph** over relation *positions* with ordinary and
//!   special edges, and **weak acyclicity** — sufficient for
//!   run-boundedness with deterministic services (Theorem 4.7), checked in
//!   PTIME ([`depgraph`], [`weak_acyclicity`]);
//! * the **dataflow graph** over relations, and **GR-acyclicity** —
//!   sufficient for state-boundedness with nondeterministic services
//!   (Theorem 5.6) — plus the **GR⁺** relaxation based on
//!   never-simultaneously-active edges (Section 5.4) ([`dataflow`],
//!   [`gr_acyclicity`]);
//! * Graphviz export of both graphs, regenerating the shapes of Figures 5,
//!   8, 9 and 10 ([`dot`]);
//! * small digraph utilities (SCCs, reachability, cycle and path
//!   enumeration) shared by the checks ([`graph`]);
//! * a **congruence-closure engine** over constants, variables, and
//!   uninterpreted applications ([`cc`]), shared by the `DCDS043` lint
//!   pass and the symbolic safety engine (`dcds-symbolic`).

pub mod approximate;
pub mod cc;
pub mod dataflow;
pub mod depgraph;
pub mod dot;
pub mod gr_acyclicity;
pub mod graph;
pub mod state_bound;
pub mod weak_acyclicity;

pub use approximate::positive_approximate;
pub use cc::{Cc, CcConflict, CcTerm, TermId};
pub use dataflow::{dataflow_graph, DataflowGraph, DfEdge};
pub use depgraph::{dependency_graph, DepGraph, Position};
pub use dot::{dataflow_dot, depgraph_dot};
pub use gr_acyclicity::{
    gr_plus_witness, gr_witness, is_gr_acyclic, is_gr_plus_acyclic, render_witness, GrWitness,
};
pub use state_bound::state_bound_estimate;
pub use weak_acyclicity::{
    is_weakly_acyclic, position_ranks, render_dep_cycle, run_bound_estimate, weak_cycle_witness,
};
