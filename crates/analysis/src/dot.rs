//! Graphviz export of the analysis graphs (Figures 5, 8, 9, 10).

use crate::dataflow::DataflowGraph;
use crate::depgraph::DepGraph;
use dcds_core::Dcds;

/// Render a dependency graph as DOT: positions `R,i` as nodes, special
/// edges starred/dashed (Figure 5 / Figure 10 style).
pub fn depgraph_dot(dg: &DepGraph, dcds: &Dcds) -> String {
    let schema = &dcds.data.schema;
    let mut out = String::from("digraph depgraph {\n  rankdir=LR;\n");
    for (ix, (rel, pos)) in dg.positions.iter().enumerate() {
        out.push_str(&format!(
            "  n{ix} [shape=ellipse, label=\"{},{}\"];\n",
            schema.name(*rel),
            pos + 1
        ));
    }
    for eid in 0..dg.graph.num_edges() {
        let (u, v) = dg.graph.edge(eid);
        if dg.special[eid] {
            out.push_str(&format!("  n{u} -> n{v} [label=\"*\", style=dashed];\n"));
        } else {
            out.push_str(&format!("  n{u} -> n{v};\n"));
        }
    }
    out.push_str("}\n");
    out
}

/// Render a dataflow graph as DOT: relations as nodes, special edges
/// starred/dashed, edges annotated with their actions (Figure 8 / Figure 9
/// style).
pub fn dataflow_dot(df: &DataflowGraph, dcds: &Dcds) -> String {
    let schema = &dcds.data.schema;
    let mut out = String::from("digraph dataflow {\n  rankdir=LR;\n");
    for (ix, rel) in df.rels.iter().enumerate() {
        out.push_str(&format!(
            "  n{ix} [shape=ellipse, label=\"{}\"];\n",
            schema.name(*rel)
        ));
    }
    for (eid, edge) in df.edges.iter().enumerate() {
        let (u, v) = df.graph.edge(eid);
        let actions: Vec<&str> = edge
            .actions
            .iter()
            .map(|a| dcds.process.actions[a.index()].name.as_str())
            .collect();
        let label = if edge.special {
            format!("* {}", actions.join(","))
        } else {
            actions.join(",")
        };
        let style = if edge.special { ", style=dashed" } else { "" };
        out.push_str(&format!("  n{u} -> n{v} [label=\"{label}\"{style}];\n"));
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataflow::dataflow_graph;
    use crate::depgraph::dependency_graph;
    use dcds_core::{DcdsBuilder, ServiceKind};

    fn example() -> Dcds {
        DcdsBuilder::new()
            .relation("R", 1)
            .relation("Q", 1)
            .service("f", 1, ServiceKind::Deterministic)
            .init_fact("R", &["a"])
            .action("alpha", &[], |a| {
                a.effect("R(X)", "Q(f(X))");
                a.effect("Q(X)", "R(X)");
            })
            .rule("true", "alpha")
            .build()
            .unwrap()
    }

    #[test]
    fn depgraph_dot_contains_positions_and_star() {
        let dcds = example();
        let dot = depgraph_dot(&dependency_graph(&dcds), &dcds);
        assert!(dot.contains("R,1"));
        assert!(dot.contains("Q,1"));
        assert!(dot.contains('*'));
        assert!(dot.starts_with("digraph"));
    }

    #[test]
    fn dataflow_dot_contains_action_names() {
        let dcds = example();
        let dot = dataflow_dot(&dataflow_graph(&dcds), &dcds);
        assert!(dot.contains("alpha"));
        assert!(dot.contains("style=dashed"));
    }
}
