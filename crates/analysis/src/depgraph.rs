//! The dependency graph over schema *positions* (Section 4.3).
//!
//! Nodes are pairs `⟨R, i⟩` (relation, component). For every effect
//! `q⁺ ⇝ E` of the positive approximate and every variable `x`:
//!
//! * `x` at position `⟨R₁, j⟩` of a `q⁺` atom and directly at position
//!   `⟨R₂, k⟩` of a head fact → **ordinary** edge `⟨R₁,j⟩ → ⟨R₂,k⟩`
//!   (a value may be copied);
//! * `x` at `⟨R₁, j⟩` of `q⁺` and inside a service call whose result lands
//!   at `⟨R₂, k⟩` → **special** edge (a value feeds the generation of a
//!   possibly-new value).
//!
//! Weak acyclicity = no cycle through a special edge (checked over this
//! graph in [`crate::weak_acyclicity`]).

use crate::graph::DiGraph;
use dcds_core::{Dcds, ETerm};
use dcds_folang::QTerm;
use dcds_reldata::RelId;
use std::collections::BTreeMap;

/// A position `⟨R, i⟩` (0-based component index).
pub type Position = (RelId, usize);

/// The dependency graph.
#[derive(Debug, Clone)]
pub struct DepGraph {
    /// All positions of the schema, in node order.
    pub positions: Vec<Position>,
    /// Underlying digraph (node indices follow `positions`).
    pub graph: DiGraph,
    /// Which edge ids are special.
    pub special: Vec<bool>,
}

impl DepGraph {
    /// Node index of a position.
    pub fn node_of(&self, pos: Position) -> Option<usize> {
        self.positions.iter().position(|&p| p == pos)
    }

    /// Number of special edges.
    pub fn num_special(&self) -> usize {
        self.special.iter().filter(|&&s| s).count()
    }
}

/// Build the dependency graph of (the positive approximate of) a DCDS.
///
/// Following the paper's remark that the definition "can be stated directly
/// over the original DCDS", we read `q⁺` and `E` straight from the original
/// actions — exactly the data the positive approximate retains.
pub fn dependency_graph(dcds: &Dcds) -> DepGraph {
    let schema = &dcds.data.schema;
    let mut positions = Vec::new();
    let mut node_ix: BTreeMap<Position, usize> = BTreeMap::new();
    for (rel, rs) in schema.iter() {
        for i in 0..rs.arity() {
            node_ix.insert((rel, i), positions.len());
            positions.push((rel, i));
        }
    }
    let mut graph = DiGraph::new(positions.len());
    let mut special = Vec::new();
    for action in &dcds.process.actions {
        for effect in &action.effects {
            // Occurrences of each variable in the q+ atoms.
            let mut var_positions: BTreeMap<&dcds_folang::Var, Vec<Position>> = BTreeMap::new();
            for cq in &effect.qplus.disjuncts {
                for (rel, terms) in &cq.atoms {
                    for (j, t) in terms.iter().enumerate() {
                        if let QTerm::Var(v) = t {
                            var_positions.entry(v).or_default().push((*rel, j));
                        }
                    }
                }
            }
            for (rel2, terms) in &effect.head {
                for (k, t) in terms.iter().enumerate() {
                    match t {
                        ETerm::Base(dcds_core::BaseTerm::Var(v)) => {
                            for &src in var_positions.get(v).into_iter().flatten() {
                                graph.add_edge(node_ix[&src], node_ix[&(*rel2, k)]);
                                special.push(false);
                            }
                        }
                        ETerm::Base(dcds_core::BaseTerm::Const(_)) => {}
                        ETerm::Call(_, args) => {
                            for arg in args {
                                if let dcds_core::BaseTerm::Var(v) = arg {
                                    for &src in var_positions.get(v).into_iter().flatten() {
                                        graph.add_edge(node_ix[&src], node_ix[&(*rel2, k)]);
                                        special.push(true);
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    DepGraph {
        positions,
        graph,
        special,
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use dcds_core::{DcdsBuilder, ServiceKind};

    /// Example 4.1 / 4.2's shared graph (Figure 5a).
    pub(crate) fn example_4_1() -> Dcds {
        DcdsBuilder::new()
            .relation("Q", 2)
            .relation("P", 1)
            .relation("R", 1)
            .service("f", 1, ServiceKind::Deterministic)
            .service("g", 1, ServiceKind::Deterministic)
            .init_fact("P", &["a"])
            .init_fact("Q", &["a", "a"])
            .action("alpha", &[], |a| {
                a.effect("Q(a,a) & P(X)", "R(X)");
                a.effect("P(X)", "P(X), Q(f(X), g(X))");
            })
            .rule("true", "alpha")
            .build()
            .unwrap()
    }

    /// Example 4.3's graph (Figure 5b).
    pub(crate) fn example_4_3() -> Dcds {
        DcdsBuilder::new()
            .relation("R", 1)
            .relation("Q", 1)
            .service("f", 1, ServiceKind::Deterministic)
            .init_fact("R", &["a"])
            .action("alpha", &[], |a| {
                a.effect("R(X)", "Q(f(X))");
                a.effect("Q(X)", "R(X)");
            })
            .rule("true", "alpha")
            .build()
            .unwrap()
    }

    #[test]
    fn figure_5a_shape() {
        let dcds = example_4_1();
        let dg = dependency_graph(&dcds);
        // Positions: Q1, Q2, P1, R1 → 4 nodes.
        assert_eq!(dg.positions.len(), 4);
        // Edges: P1→R1 ordinary, P1→P1 ordinary, P1→*Q1 special,
        // P1→*Q2 special.
        assert_eq!(dg.graph.num_edges(), 4);
        assert_eq!(dg.num_special(), 2);
    }

    #[test]
    fn figure_5b_shape() {
        let dcds = example_4_3();
        let dg = dependency_graph(&dcds);
        // Positions: R1, Q1. Edges: R1→*Q1 special, Q1→R1 ordinary.
        assert_eq!(dg.positions.len(), 2);
        assert_eq!(dg.graph.num_edges(), 2);
        assert_eq!(dg.num_special(), 1);
    }

    #[test]
    fn constants_produce_no_edges() {
        let dcds = DcdsBuilder::new()
            .relation("P", 1)
            .relation("R", 1)
            .init_fact("P", &["a"])
            .action("alpha", &[], |a| {
                a.effect("P(X)", "R(a)");
            })
            .rule("true", "alpha")
            .build()
            .unwrap();
        let dg = dependency_graph(&dcds);
        assert_eq!(dg.graph.num_edges(), 0);
    }
}
