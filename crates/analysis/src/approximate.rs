//! The positive approximate `S⁺` (Section 4.3).
//!
//! `S⁺` over-approximates the data flow of `S`: it drops the equality (and
//! FO) constraints, turns every condition–action rule into `true ↦ α⁺`,
//! strips the parameters from action signatures (the parameter variables of
//! `q⁺` become free variables), and deletes the negative filters `Q⁻`.
//! Lemma 4.1: if `S⁺` is run-bounded, so is `S`.

use dcds_core::{Action, ActionId, CaRule, DataLayer, Dcds, Effect, ProcessLayer};
use dcds_folang::{ConjunctiveQuery, Formula, Ucq, Var};
use std::collections::BTreeSet;

/// Build the positive approximate of a DCDS.
///
/// The result is assembled directly (without re-validation): stripping the
/// parameters can leave a head variable unbound when an action writes a
/// parameter that no positive atom constrains — the approximate is then a
/// purely *analytic* object (its graphs are still well-defined), which is
/// how the paper uses it.
pub fn positive_approximate(dcds: &Dcds) -> Dcds {
    let data = DataLayer {
        pool: dcds.working_pool(),
        schema: dcds.data.schema.clone(),
        constraints: Vec::new(),
        fo_constraints: Vec::new(),
        initial: dcds.data.initial.clone(),
    };
    let mut actions = Vec::new();
    for action in &dcds.process.actions {
        let params: BTreeSet<Var> = action.params.iter().cloned().collect();
        let effects = action
            .effects
            .iter()
            .map(|e| {
                // Parameters used by the effect become head variables of q+
                // where they occur in atoms; head terms keep them as free
                // variables either way.
                let disjuncts = e
                    .qplus
                    .disjuncts
                    .iter()
                    .map(|cq| {
                        let mut head = cq.head.clone();
                        for v in cq.atom_vars() {
                            if params.contains(&v) && !head.contains(&v) {
                                head.push(v);
                            }
                        }
                        ConjunctiveQuery {
                            head,
                            atoms: cq.atoms.clone(),
                            equalities: cq.equalities.clone(),
                        }
                    })
                    .collect();
                Effect {
                    qplus: Ucq { disjuncts },
                    qminus: Formula::True,
                    head: e.head.clone(),
                }
            })
            .collect();
        actions.push(Action::new(
            &format!("{}+", action.name),
            Vec::new(),
            effects,
        ));
    }
    let rules = (0..actions.len())
        .map(|ix| CaRule {
            condition: Formula::True,
            action: ActionId::from_index(ix),
        })
        .collect();
    Dcds::from_parts(
        data,
        ProcessLayer {
            services: dcds.process.services.clone(),
            actions,
            rules,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcds_core::{DcdsBuilder, ServiceKind};

    #[test]
    fn approximate_strips_filters_and_guards() {
        let dcds = DcdsBuilder::new()
            .relation("P", 1)
            .relation("R", 1)
            .init_fact("P", &["a"])
            .constraint("P(X) & R(Y) -> X = Y")
            .action("alpha", &[], |a| {
                a.effect("P(X) & !R(X)", "R(X)");
            })
            .rule("P(X) & X = a", "alpha")
            .build();
        // The rule has a free var X but alpha has no params: invalid — use a
        // parameterised variant instead.
        assert!(dcds.is_err());

        let dcds = DcdsBuilder::new()
            .relation("P", 1)
            .relation("R", 1)
            .init_fact("P", &["a"])
            .constraint("P(X) & R(Y) -> X = Y")
            .action("alpha", &["X"], |a| {
                a.effect("P(X) & !R(X)", "R(X)");
            })
            .rule("P(X)", "alpha")
            .build()
            .unwrap();
        let plus = positive_approximate(&dcds);
        assert!(plus.data.constraints.is_empty());
        assert_eq!(plus.process.rules.len(), 1);
        assert_eq!(plus.process.rules[0].condition, Formula::True);
        let e = &plus.process.actions[0].effects[0];
        assert_eq!(e.qminus, Formula::True);
        // X was a parameter occurring in the atom: now a head variable.
        assert!(e.qplus.disjuncts[0].head.contains(&Var::new("X")));
        assert!(plus.process.actions[0].params.is_empty());
    }

    #[test]
    fn approximate_is_executable_on_example_4_3() {
        let dcds = DcdsBuilder::new()
            .relation("R", 1)
            .relation("Q", 1)
            .service("f", 1, ServiceKind::Deterministic)
            .init_fact("R", &["a"])
            .action("alpha", &[], |a| {
                a.effect("R(X)", "Q(f(X))");
                a.effect("Q(X)", "R(X)");
            })
            .rule("true", "alpha")
            .build()
            .unwrap();
        let plus = positive_approximate(&dcds);
        // The approximate of a parameterless, filterless DCDS is itself (up
        // to action renaming) and still validates.
        assert!(plus.validate().is_ok());
    }
}
