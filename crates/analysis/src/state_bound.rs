//! The explicit state bound from the proof of Theorem 5.6.
//!
//! For a GR-acyclic DCDS, the proof bounds the number of distinct values
//! co-existing in any state by
//!
//! ```text
//!     |ADOM(I₀)| · n^(2d+1) · b^(2d)
//! ```
//!
//! where `n` is the number of dataflow-graph nodes, `d` the longest path
//! after deleting cycles, and `b` one plus the maximum number of special
//! edges leaving a node. Like the Theorem 4.7 run bound, this is a proof
//! artifact — astronomically conservative — but finite, computable, and a
//! useful sanity anchor for the empirical monitors in
//! `dcds-abstraction::bounds`.

use crate::dataflow::DataflowGraph;
use crate::gr_acyclicity::is_gr_acyclic;
use dcds_core::Dcds;
use std::collections::BTreeSet;

/// Compute the Theorem 5.6 bound, or `None` when the system is not
/// GR-acyclic (the bound is then meaningless — the proof does not apply).
pub fn state_bound_estimate(dcds: &Dcds, df: &DataflowGraph) -> Option<f64> {
    if !is_gr_acyclic(df) {
        return None;
    }
    let n = df.graph.num_nodes().max(1) as f64;
    let d = longest_acyclic_path(df) as f64;
    let b = (max_special_out_degree(df) + 1) as f64;
    let adom0 = dcds.data.initial.active_domain().len().max(1) as f64;
    Some(adom0 * n.powf(2.0 * d + 1.0) * b.powf(2.0 * d))
}

/// Longest path in the dataflow graph "after deleting the cycles": longest
/// path in the condensation (SCC contraction), counting edges between
/// distinct components.
pub fn longest_acyclic_path(df: &DataflowGraph) -> usize {
    let sccs = df.graph.sccs();
    let mut comp_of = vec![0usize; df.graph.num_nodes()];
    for (cix, comp) in sccs.iter().enumerate() {
        for &node in comp {
            comp_of[node] = cix;
        }
    }
    // Edges of the condensation.
    let mut edges: BTreeSet<(usize, usize)> = BTreeSet::new();
    for eid in 0..df.graph.num_edges() {
        let (u, v) = df.graph.edge(eid);
        if comp_of[u] != comp_of[v] {
            edges.insert((comp_of[u], comp_of[v]));
        }
    }
    // Longest path over the DAG (components are in reverse topological
    // order from Tarjan; do a simple DP with memoization).
    let k = sccs.len();
    let mut adj = vec![Vec::new(); k];
    for &(u, v) in &edges {
        adj[u].push(v);
    }
    let mut memo = vec![usize::MAX; k];
    fn dp(u: usize, adj: &[Vec<usize>], memo: &mut [usize]) -> usize {
        if memo[u] != usize::MAX {
            return memo[u];
        }
        // Mark to guard (the condensation is acyclic, so no cycles occur).
        let best = adj[u]
            .iter()
            .map(|&v| 1 + dp(v, adj, memo))
            .max()
            .unwrap_or(0);
        memo[u] = best;
        best
    }
    (0..k).map(|u| dp(u, &adj, &mut memo)).max().unwrap_or(0)
}

/// The maximum number of special edges leaving one node.
pub fn max_special_out_degree(df: &DataflowGraph) -> usize {
    let mut out = vec![0usize; df.graph.num_nodes()];
    for (eid, edge) in df.edges.iter().enumerate() {
        if edge.special {
            out[df.graph.edge(eid).0] += 1;
        }
    }
    out.into_iter().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataflow::dataflow_graph;
    use dcds_core::{DcdsBuilder, ServiceKind};

    fn example_5_1() -> Dcds {
        DcdsBuilder::new()
            .relation("R", 1)
            .relation("Q", 1)
            .service("f", 1, ServiceKind::Nondeterministic)
            .init_fact("R", &["a"])
            .action("alpha", &[], |a| {
                a.effect("R(X)", "Q(f(X))");
                a.effect("Q(X)", "R(X)");
            })
            .rule("true", "alpha")
            .build()
            .unwrap()
    }

    fn example_5_2() -> Dcds {
        DcdsBuilder::new()
            .relation("R", 1)
            .relation("Q", 1)
            .service("f", 1, ServiceKind::Nondeterministic)
            .init_fact("R", &["a"])
            .action("alpha", &[], |a| {
                a.effect("R(X)", "R(X)");
                a.effect("R(X)", "Q(f(X))");
                a.effect("Q(X)", "Q(X)");
            })
            .rule("true", "alpha")
            .build()
            .unwrap()
    }

    #[test]
    fn bound_exists_for_gr_acyclic() {
        let dcds = example_5_1();
        let df = dataflow_graph(&dcds);
        let bound = state_bound_estimate(&dcds, &df).unwrap();
        assert!(bound.is_finite());
        // The bound dominates the empirically observed state size (1).
        assert!(bound >= 1.0);
    }

    #[test]
    fn no_bound_for_gr_cyclic() {
        let dcds = example_5_2();
        let df = dataflow_graph(&dcds);
        assert!(state_bound_estimate(&dcds, &df).is_none());
    }

    #[test]
    fn condensation_path_length() {
        // Chain A →* B → C: the R/Q 2-cycle contracts to one component, so
        // build an acyclic 3-relation pipeline instead.
        let dcds = DcdsBuilder::new()
            .relation("A", 1)
            .relation("B", 1)
            .relation("C", 1)
            .service("f", 1, ServiceKind::Nondeterministic)
            .init_fact("A", &["a"])
            .action("alpha", &[], |a| {
                a.effect("A(X)", "B(f(X))");
                a.effect("B(X)", "C(X)");
            })
            .rule("true", "alpha")
            .build()
            .unwrap();
        let df = dataflow_graph(&dcds);
        assert_eq!(longest_acyclic_path(&df), 2);
        assert_eq!(max_special_out_degree(&df), 1);
    }
}
