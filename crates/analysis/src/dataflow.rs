//! The dataflow graph over *relations* (Section 5.4).
//!
//! Nodes are relation names. For each effect of the positive approximate,
//! each atom `R(...)` in its body, each fact `Q(...)` in its head, and each
//! head position `i`:
//!
//! * head term a constant or free variable → ordinary edge `R → Q`;
//! * head term a service call → **special** edge `R → Q`.
//!
//! Each edge is a distinct identified 4-tuple `(R₁, id, R₂, special)` — the
//! graph is a multigraph — and carries the set of actions it corresponds to
//! (needed by the GR⁺ relaxation's `actions(e)` disjointness test).

use crate::graph::DiGraph;
use dcds_core::{ActionId, Dcds, ETerm};
use dcds_reldata::RelId;
use std::collections::BTreeSet;

/// One identified dataflow edge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DfEdge {
    /// Source relation.
    pub from: RelId,
    /// Target relation.
    pub to: RelId,
    /// Whether the edge is special (service-call mediated).
    pub special: bool,
    /// Actions whose effects induce this edge.
    pub actions: BTreeSet<ActionId>,
}

/// The dataflow graph.
#[derive(Debug, Clone)]
pub struct DataflowGraph {
    /// Relation per node index.
    pub rels: Vec<RelId>,
    /// Underlying digraph; edge ids index into `edges`.
    pub graph: DiGraph,
    /// Edge metadata, parallel to the digraph's edge ids.
    pub edges: Vec<DfEdge>,
}

impl DataflowGraph {
    /// Node index of a relation.
    pub fn node_of(&self, rel: RelId) -> Option<usize> {
        self.rels.iter().position(|&r| r == rel)
    }

    /// Number of special edges.
    pub fn num_special(&self) -> usize {
        self.edges.iter().filter(|e| e.special).count()
    }
}

/// Build the dataflow graph of a DCDS (read off the positive approximate's
/// data, i.e. `q⁺` bodies and heads of the original actions). Every
/// syntactic occurrence gets its own identified edge, exactly as in the
/// paper — parallel edges matter (cf. Example 5.3).
pub fn dataflow_graph(dcds: &Dcds) -> DataflowGraph {
    let schema = &dcds.data.schema;
    let rels: Vec<RelId> = schema.rel_ids().collect();
    let mut graph = DiGraph::new(rels.len());
    let mut edges: Vec<DfEdge> = Vec::new();
    for (aix, action) in dcds.process.actions.iter().enumerate() {
        let action_id = ActionId::from_index(aix);
        for effect in &action.effects {
            let mut body_rels: BTreeSet<RelId> = BTreeSet::new();
            for cq in &effect.qplus.disjuncts {
                body_rels.extend(cq.atoms.iter().map(|(r, _)| *r));
            }
            for (head_rel, terms) in &effect.head {
                if terms.is_empty() {
                    // A nullary head fact (e.g. the paper's built-in `true`)
                    // carries no values but is *sustained* by the body: model
                    // it as an ordinary presence-copy edge, which is what
                    // Figure 9 draws for the `true` self-loop.
                    for &body_rel in &body_rels {
                        push_edge(
                            &mut graph, &mut edges, &rels, body_rel, *head_rel, false, action_id,
                        );
                    }
                    continue;
                }
                for t in terms {
                    let special = match t {
                        ETerm::Base(_) => false,
                        ETerm::Call(_, _) => true,
                    };
                    for &body_rel in &body_rels {
                        push_edge(
                            &mut graph, &mut edges, &rels, body_rel, *head_rel, special, action_id,
                        );
                    }
                }
            }
        }
    }
    DataflowGraph { rels, graph, edges }
}

fn push_edge(
    graph: &mut DiGraph,
    edges: &mut Vec<DfEdge>,
    rels: &[RelId],
    from: RelId,
    to: RelId,
    special: bool,
    action: ActionId,
) {
    // One edge per syntactic occurrence, each with a fresh id — parallel
    // edges are meaningful: Example 5.3's two special self-loops on R are
    // exactly what makes it non-GR-acyclic (π1 via f, π3 via g).
    let from_ix = rels.iter().position(|&r| r == from).expect("known rel");
    let to_ix = rels.iter().position(|&r| r == to).expect("known rel");
    let id = graph.add_edge(from_ix, to_ix);
    debug_assert_eq!(id, edges.len());
    edges.push(DfEdge {
        from,
        to,
        special,
        actions: [action].into_iter().collect(),
    });
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use dcds_core::{DcdsBuilder, ServiceKind};

    /// Example 5.2 (Figure 8b): R→R, R→*Q, Q→Q.
    pub(crate) fn example_5_2() -> Dcds {
        DcdsBuilder::new()
            .relation("R", 1)
            .relation("Q", 1)
            .service("f", 1, ServiceKind::Nondeterministic)
            .init_fact("R", &["a"])
            .action("alpha", &[], |a| {
                a.effect("R(X)", "R(X)");
                a.effect("R(X)", "Q(f(X))");
                a.effect("Q(X)", "Q(X)");
            })
            .rule("true", "alpha")
            .build()
            .unwrap()
    }

    /// Example 5.3 (Figure 8c): two special self-loops on R.
    pub(crate) fn example_5_3() -> Dcds {
        DcdsBuilder::new()
            .relation("R", 1)
            .service("f", 1, ServiceKind::Nondeterministic)
            .service("g", 1, ServiceKind::Nondeterministic)
            .init_fact("R", &["a"])
            .action("alpha", &[], |a| {
                a.effect("R(X)", "R(f(X)), R(g(X))");
            })
            .rule("true", "alpha")
            .build()
            .unwrap()
    }

    #[test]
    fn figure_8b_shape() {
        let dcds = example_5_2();
        let df = dataflow_graph(&dcds);
        assert_eq!(df.rels.len(), 2);
        assert_eq!(df.edges.len(), 3);
        assert_eq!(df.num_special(), 1);
    }

    #[test]
    fn figure_8c_shape() {
        let dcds = example_5_3();
        let df = dataflow_graph(&dcds);
        assert_eq!(df.rels.len(), 1);
        // The two head terms R(f(X)) and R(g(X)) each contribute their own
        // special self-loop (π1 via f, π3 via g — the multiplicity is what
        // makes the system non-GR-acyclic).
        assert_eq!(df.num_special(), 2);
    }

    #[test]
    fn actions_recorded_on_edges() {
        let dcds = example_5_2();
        let df = dataflow_graph(&dcds);
        for e in &df.edges {
            assert_eq!(e.actions.len(), 1);
        }
    }
}
