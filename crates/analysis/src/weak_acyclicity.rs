//! Weak acyclicity (Section 4.3) and the run bound of Theorem 4.7.

use crate::depgraph::DepGraph;
use dcds_core::Dcds;
use dcds_reldata::Schema;
use std::collections::BTreeSet;

/// Is the dependency graph weakly acyclic — i.e. no cycle goes through a
/// special edge? Equivalently: no special edge has both endpoints in the
/// same strongly connected component. PTIME in the size of the process
/// layer (Theorem 4.8's premise).
pub fn is_weakly_acyclic(dg: &DepGraph) -> bool {
    let mut comp_of = vec![usize::MAX; dg.graph.num_nodes()];
    for (cix, comp) in dg.graph.sccs().into_iter().enumerate() {
        for node in comp {
            comp_of[node] = cix;
        }
    }
    for eid in 0..dg.graph.num_edges() {
        if dg.special[eid] {
            let (u, v) = dg.graph.edge(eid);
            // A special self-loop is itself a cycle; otherwise u,v in the
            // same SCC means a v→u path exists, closing a cycle through the
            // special edge.
            if u == v || comp_of[u] == comp_of[v] {
                return false;
            }
        }
    }
    true
}

/// A concrete cycle through a special edge, witnessing *failure* of weak
/// acyclicity: an edge-id sequence whose first edge is special and whose
/// edges close a cycle in the dependency graph. `None` iff weakly acyclic.
pub fn weak_cycle_witness(dg: &DepGraph) -> Option<Vec<usize>> {
    let mut comp_of = vec![usize::MAX; dg.graph.num_nodes()];
    for (cix, comp) in dg.graph.sccs().into_iter().enumerate() {
        for node in comp {
            comp_of[node] = cix;
        }
    }
    for eid in 0..dg.graph.num_edges() {
        if !dg.special[eid] {
            continue;
        }
        let (u, v) = dg.graph.edge(eid);
        if u == v {
            return Some(vec![eid]);
        }
        if comp_of[u] == comp_of[v] {
            // Same SCC ⇒ a simple return path v→u exists; the shortest one
            // keeps the witness small.
            if let Some(back) = dg
                .graph
                .simple_paths(v, u)
                .into_iter()
                .min_by_key(|p| p.len())
            {
                let mut cycle = vec![eid];
                cycle.extend(back);
                return Some(cycle);
            }
        }
    }
    None
}

/// Render a dependency-graph edge cycle as `P.1 =[special]=> Q.1 -> P.1`
/// with 1-based position components.
pub fn render_dep_cycle(cycle: &[usize], dg: &DepGraph, schema: &Schema) -> String {
    let pos_name = |node: usize| {
        let (rel, i) = dg.positions[node];
        format!("{}.{}", schema.name(rel), i + 1)
    };
    let mut out = String::new();
    for (ix, &eid) in cycle.iter().enumerate() {
        let (u, v) = dg.graph.edge(eid);
        if ix == 0 {
            out.push_str(&pos_name(u));
        }
        out.push_str(if dg.special[eid] {
            " =[special]=> "
        } else {
            " -> "
        });
        out.push_str(&pos_name(v));
    }
    out
}

/// The *rank* of each position: the maximum number of special edges on any
/// incoming path (proof of Theorem 4.7). Defined (finite) iff the graph is
/// weakly acyclic; returns `None` otherwise.
pub fn position_ranks(dg: &DepGraph) -> Option<Vec<usize>> {
    if !is_weakly_acyclic(dg) {
        return None;
    }
    // Longest-path DP where special edges weigh 1 and ordinary edges 0.
    // Weak acyclicity ⇒ every cycle has total weight 0, so Bellman-Ford
    // relaxation converges within |V| · |V| rounds.
    let n = dg.graph.num_nodes();
    let mut rank = vec![0usize; n];
    for _ in 0..=n {
        let mut changed = false;
        for eid in 0..dg.graph.num_edges() {
            let (u, v) = dg.graph.edge(eid);
            let w = usize::from(dg.special[eid]);
            if rank[u] + w > rank[v] {
                rank[v] = rank[u] + w;
                changed = true;
            }
        }
        if !changed {
            return Some(rank);
        }
    }
    // Still changing after n rounds would mean a positive cycle — excluded
    // by weak acyclicity.
    Some(rank)
}

/// A conservative bound on the number of distinct values occurring along
/// any run of a weakly acyclic DCDS, following the polynomial `P_r` built
/// in the proof of Theorem 4.7. Returns `None` when not weakly acyclic.
///
/// The bound is astronomically loose (it is a proof artifact, not an
/// estimate), but it is finite, computable, and monotone in the inputs the
/// proof identifies: `|ADOM(I₀)|`, the maximum special in-degree `ba`, and
/// the total head size `tf`.
pub fn run_bound_estimate(dcds: &Dcds, dg: &DepGraph) -> Option<f64> {
    let ranks = position_ranks(dg)?;
    let r = ranks.iter().copied().max().unwrap_or(0);
    let n0 = dcds.data.initial.active_domain().len() as f64;
    // ba: max number of special edges entering a position (≥ service arity
    // bound used in the proof), at least 1 to keep powers sane.
    let mut special_in = vec![0usize; dg.graph.num_nodes()];
    for eid in 0..dg.graph.num_edges() {
        if dg.special[eid] {
            special_in[dg.graph.edge(eid).1] += 1;
        }
    }
    let ba = special_in.iter().copied().max().unwrap_or(0).max(1) as f64;
    // tf: total number of facts mentioned in effect heads.
    let tf = dcds
        .process
        .actions
        .iter()
        .flat_map(|a| a.effects.iter())
        .map(|e| e.head.len())
        .sum::<usize>()
        .max(1) as f64;
    let num_positions = dg.positions.len().max(1) as f64;
    // P_0 = n0; P_{i} = n0 + G + H with H = Σ_{j<i} P_j and
    // G = |N_i| · tf · H^{ba} ≤ positions · tf · H^{ba}.
    let mut p: Vec<f64> = vec![n0];
    for _ in 1..=r {
        let h: f64 = p.iter().sum();
        let g = num_positions * tf * h.powf(ba);
        p.push(n0 + g + h);
    }
    Some(p.iter().sum())
}

/// Positions whose rank is 0 — they can only ever hold initial-instance
/// values (base case of the Theorem 4.7 induction).
pub fn rank_zero_positions(dg: &DepGraph) -> Option<BTreeSet<usize>> {
    let ranks = position_ranks(dg)?;
    Some(
        ranks
            .iter()
            .enumerate()
            .filter(|(_, &r)| r == 0)
            .map(|(i, _)| i)
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::depgraph::{dependency_graph, tests as dep_tests};

    #[test]
    fn example_4_1_is_weakly_acyclic() {
        let dcds = dep_tests::example_4_1();
        let dg = dependency_graph(&dcds);
        assert!(is_weakly_acyclic(&dg));
        let ranks = position_ranks(&dg).unwrap();
        // P1 has rank 0 (only fed by itself via ordinary loop), Q1/Q2 rank 1
        // (special edges from P1), R1 rank 0.
        let p1 = dg
            .node_of((dcds.data.schema.rel_id("P").unwrap(), 0))
            .unwrap();
        let q1 = dg
            .node_of((dcds.data.schema.rel_id("Q").unwrap(), 0))
            .unwrap();
        assert_eq!(ranks[p1], 0);
        assert_eq!(ranks[q1], 1);
    }

    #[test]
    fn example_4_3_is_not_weakly_acyclic() {
        let dcds = dep_tests::example_4_3();
        let dg = dependency_graph(&dcds);
        assert!(!is_weakly_acyclic(&dg));
        assert!(position_ranks(&dg).is_none());
        assert!(run_bound_estimate(&dcds, &dg).is_none());
    }

    #[test]
    fn witness_cycle_goes_through_a_special_edge() {
        let dcds = dep_tests::example_4_3();
        let dg = dependency_graph(&dcds);
        let cycle = weak_cycle_witness(&dg).expect("not weakly acyclic");
        assert!(dg.special[cycle[0]]);
        // The edges close a cycle: each edge's target is the next's source.
        for w in cycle.windows(2) {
            assert_eq!(dg.graph.edge(w[0]).1, dg.graph.edge(w[1]).0);
        }
        assert_eq!(
            dg.graph.edge(*cycle.last().unwrap()).1,
            dg.graph.edge(cycle[0]).0
        );
        let text = render_dep_cycle(&cycle, &dg, &dcds.data.schema);
        assert_eq!(text, "R.1 =[special]=> Q.1 -> R.1");

        let wa = dependency_graph(&dep_tests::example_4_1());
        assert!(weak_cycle_witness(&wa).is_none());
    }

    #[test]
    fn run_bound_is_finite_for_weakly_acyclic() {
        let dcds = dep_tests::example_4_1();
        let dg = dependency_graph(&dcds);
        let bound = run_bound_estimate(&dcds, &dg).unwrap();
        assert!(bound.is_finite());
        assert!(bound >= 1.0);
    }

    #[test]
    fn rank_zero_positions_hold_initial_values() {
        let dcds = dep_tests::example_4_1();
        let dg = dependency_graph(&dcds);
        let zero = rank_zero_positions(&dg).unwrap();
        let p1 = dg
            .node_of((dcds.data.schema.rel_id("P").unwrap(), 0))
            .unwrap();
        assert!(zero.contains(&p1));
    }
}
