//! GR-acyclicity and the GR⁺ relaxation (Section 5.4).
//!
//! A process layer is **GR-acyclic** when its dataflow graph contains no
//! path `π = π₁ π₂ π₃` where `π₁`, `π₃` are simple cycles and `π₂` is a
//! path containing a special edge disjoint from the edges of `π₁`: a
//! *generate cycle* (`π₁π₂`) feeding a *recall cycle* (`π₃`). Theorem 5.6:
//! GR-acyclic ⇒ state-bounded.
//!
//! **GR⁺** additionally allows such a path when some edge `e` of `π₂`
//! cannot be active simultaneously with any edge after it in `π₂π₃` —
//! firing `e` then flushes the recall cycle before the next wave of fresh
//! values arrives. The syntactic sufficient condition for
//! "not simultaneously active" is disjointness of the `actions(·)` sets.

use crate::dataflow::DataflowGraph;
use std::collections::BTreeSet;

/// A witness that a system is NOT GR(⁺)-acyclic: the offending
/// `π₁ π₂ π₃` decomposition, as edge-id sequences into
/// [`DataflowGraph::edges`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GrWitness {
    /// The generate cycle `π₁`.
    pub pi1: Vec<usize>,
    /// The connecting path `π₂` (contains the special edge).
    pub pi2: Vec<usize>,
    /// The recall cycle `π₃`.
    pub pi3: Vec<usize>,
}

/// Check GR-acyclicity; on failure, return a witness path.
pub fn gr_witness(df: &DataflowGraph) -> Option<GrWitness> {
    find_witness(df, false)
}

/// Is the dataflow graph GR-acyclic?
pub fn is_gr_acyclic(df: &DataflowGraph) -> bool {
    gr_witness(df).is_none()
}

/// Check GR⁺-acyclicity; on failure, return an *unexcused* witness.
pub fn gr_plus_witness(df: &DataflowGraph) -> Option<GrWitness> {
    find_witness(df, true)
}

/// Is the dataflow graph GR⁺-acyclic (every GR witness is excused by a
/// flushing edge)?
pub fn is_gr_plus_acyclic(df: &DataflowGraph) -> bool {
    gr_plus_witness(df).is_none()
}

/// Enumerate `π₁ π₂ π₃` patterns. When `with_excuse` is set, a pattern is
/// skipped if some edge `e ∈ π₂` has an `actions` set disjoint from those
/// of every subsequent edge of `π₂` and every edge of `π₃` (the GR⁺
/// flushing condition); the first unexcused pattern is returned.
fn find_witness(df: &DataflowGraph, with_excuse: bool) -> Option<GrWitness> {
    let cycles = df.graph.simple_cycles();
    if cycles.is_empty() {
        return None;
    }
    // Node sets of each cycle, and the start node of each cycle walk: a
    // cycle edge list c = [e1..ek] visits nodes from = edge(e1).0.
    for c1 in &cycles {
        let c1_edges: BTreeSet<usize> = c1.iter().copied().collect();
        let c1_nodes: BTreeSet<usize> = c1
            .iter()
            .flat_map(|&e| {
                let (u, v) = df.graph.edge(e);
                [u, v]
            })
            .collect();
        for c3 in &cycles {
            let c3_nodes: BTreeSet<usize> = c3
                .iter()
                .flat_map(|&e| {
                    let (u, v) = df.graph.edge(e);
                    [u, v]
                })
                .collect();
            for &u in &c1_nodes {
                for &v in &c3_nodes {
                    // π₂ candidates: simple paths u → v; when u = v, also
                    // closed walks — i.e. simple cycles through u (needed
                    // e.g. for Example 5.3's parallel special self-loops).
                    let mut candidates = df.graph.simple_paths(u, v);
                    if u == v {
                        for c in &cycles {
                            let touches_u = c.iter().any(|&e| {
                                let (a, b) = df.graph.edge(e);
                                a == u || b == u
                            });
                            if touches_u {
                                candidates.push(c.clone());
                            }
                        }
                    }
                    for path in candidates {
                        // π₂ must contain a special edge not in π₁.
                        let has_special = path
                            .iter()
                            .any(|&e| df.edges[e].special && !c1_edges.contains(&e));
                        if !has_special {
                            continue;
                        }
                        if with_excuse && excused(df, &path, c3) {
                            continue;
                        }
                        return Some(GrWitness {
                            pi1: c1.clone(),
                            pi2: path,
                            pi3: c3.clone(),
                        });
                    }
                }
            }
        }
    }
    None
}

/// Render a witness with relation and action names, e.g.
/// `pi1: R -[alpha]-> R ; pi2: R =[alpha]=> Q ; pi3: Q -[alpha]-> Q`
/// (special edges drawn with `=…=>`).
pub fn render_witness(w: &GrWitness, df: &DataflowGraph, dcds: &dcds_core::Dcds) -> String {
    let edge = |e: usize| {
        let meta = &df.edges[e];
        let actions: Vec<&str> = meta
            .actions
            .iter()
            .map(|a| dcds.process.actions[a.index()].name.as_str())
            .collect();
        let (arrow_l, arrow_r) = if meta.special {
            ("=[", "]=>")
        } else {
            ("-[", "]->")
        };
        format!(
            "{} {}{}{} {}",
            dcds.data.schema.name(meta.from),
            arrow_l,
            actions.join(","),
            arrow_r,
            dcds.data.schema.name(meta.to)
        )
    };
    let seg = |edges: &[usize]| {
        edges
            .iter()
            .map(|&e| edge(e))
            .collect::<Vec<_>>()
            .join(" ; ")
    };
    format!(
        "generate cycle pi1: {}\nconnecting path pi2: {}\nrecall cycle pi3: {}",
        seg(&w.pi1),
        seg(&w.pi2),
        seg(&w.pi3)
    )
}

/// GR⁺ excuse: some edge of `pi2` is never simultaneously active with any
/// subsequent edge of `pi2` nor any edge of `pi3` (approximated
/// syntactically by disjoint `actions` sets).
fn excused(df: &DataflowGraph, pi2: &[usize], pi3: &[usize]) -> bool {
    for (ix, &e) in pi2.iter().enumerate() {
        let acts = &df.edges[e].actions;
        let later_disjoint = pi2[ix + 1..]
            .iter()
            .chain(pi3.iter())
            .all(|&f| acts.is_disjoint(&df.edges[f].actions));
        if later_disjoint {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataflow::{dataflow_graph, tests as df_tests};
    use dcds_core::{DcdsBuilder, ServiceKind};

    /// Example 4.3 with nondeterministic f (Figure 8a): GR-acyclic.
    fn example_5_1() -> dcds_core::Dcds {
        DcdsBuilder::new()
            .relation("R", 1)
            .relation("Q", 1)
            .service("f", 1, ServiceKind::Nondeterministic)
            .init_fact("R", &["a"])
            .action("alpha", &[], |a| {
                a.effect("R(X)", "Q(f(X))");
                a.effect("Q(X)", "R(X)");
            })
            .rule("true", "alpha")
            .build()
            .unwrap()
    }

    #[test]
    fn example_5_1_is_gr_acyclic() {
        let df = dataflow_graph(&example_5_1());
        assert!(is_gr_acyclic(&df));
        assert!(is_gr_plus_acyclic(&df));
    }

    #[test]
    fn example_5_2_is_not_gr_acyclic() {
        let dcds = df_tests::example_5_2();
        let df = dataflow_graph(&dcds);
        let w = gr_witness(&df).expect("witness exists");
        // The connecting path contains the special R→Q edge.
        assert!(w.pi2.iter().any(|&e| df.edges[e].special));
        // Single action: not excusable → not GR+ either.
        assert!(!is_gr_plus_acyclic(&df));
        // And the rendering names the relations and the action.
        let rendered = render_witness(&w, &df, &dcds);
        assert!(rendered.contains("alpha"));
        assert!(rendered.contains("=["), "special edge drawn specially");
    }

    #[test]
    fn example_5_3_is_not_gr_acyclic() {
        let df = dataflow_graph(&df_tests::example_5_3());
        assert!(!is_gr_acyclic(&df));
        assert!(!is_gr_plus_acyclic(&df));
    }

    #[test]
    fn gr_plus_excuses_disjoint_actions() {
        // A two-action system imitating the travel-request pattern:
        // `init` generates into Travel from True (special), while `work`
        // copies Travel; True loops via both. π₁ = True-loop, π₂ = special
        // True→Travel (action init), π₃ = Travel-loop (action work):
        // excused because actions(init) ∩ actions(work) = ∅.
        let dcds = DcdsBuilder::new()
            .relation("Tru", 0)
            .relation("Travel", 1)
            .service("inp", 0, ServiceKind::Nondeterministic)
            .init_fact("Tru", &[])
            .action("init", &[], |a| {
                a.effect("Tru()", "Tru(), Travel(inp())");
            })
            .action("work", &[], |a| {
                a.effect("Tru()", "Tru()");
                a.effect("Travel(X)", "Travel(X)");
            })
            .rule("true", "init")
            .rule("true", "work")
            .build()
            .unwrap();
        let df = dataflow_graph(&dcds);
        assert!(!is_gr_acyclic(&df), "GR finds the pattern");
        assert!(is_gr_plus_acyclic(&df), "GR+ excuses it");
    }

    #[test]
    fn acyclic_graph_trivially_gr_acyclic() {
        let dcds = DcdsBuilder::new()
            .relation("P", 1)
            .relation("R", 1)
            .service("f", 1, ServiceKind::Nondeterministic)
            .init_fact("P", &["a"])
            .action("alpha", &[], |a| {
                a.effect("P(X)", "R(f(X))");
            })
            .rule("true", "alpha")
            .build()
            .unwrap();
        let df = dataflow_graph(&dcds);
        assert!(is_gr_acyclic(&df));
    }
}
