//! Small digraph utilities shared by the static analyses.
//!
//! The graphs analysed here are tiny (nodes are schema positions or
//! relations), so clarity beats asymptotics: Tarjan SCCs, BFS reachability,
//! and explicit enumeration of simple cycles and simple paths.

use std::collections::BTreeSet;

/// A digraph over nodes `0..n` with identified edges (parallel edges
/// allowed, each carrying its own id).
#[derive(Debug, Clone, Default)]
pub struct DiGraph {
    num_nodes: usize,
    /// Edge list: `edges[id] = (from, to)`.
    edges: Vec<(usize, usize)>,
    /// Outgoing edge ids per node.
    out: Vec<Vec<usize>>,
}

impl DiGraph {
    /// A graph with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        DiGraph {
            num_nodes: n,
            edges: Vec::new(),
            out: vec![Vec::new(); n],
        }
    }

    /// Add an edge, returning its id.
    pub fn add_edge(&mut self, from: usize, to: usize) -> usize {
        let id = self.edges.len();
        self.edges.push((from, to));
        self.out[from].push(id);
        id
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Endpoints of an edge.
    pub fn edge(&self, id: usize) -> (usize, usize) {
        self.edges[id]
    }

    /// Outgoing edge ids of a node.
    pub fn out_edges(&self, node: usize) -> &[usize] {
        &self.out[node]
    }

    /// Nodes reachable from `start` (including itself).
    pub fn reachable_from(&self, start: usize) -> BTreeSet<usize> {
        let mut seen = BTreeSet::new();
        let mut stack = vec![start];
        while let Some(u) = stack.pop() {
            if seen.insert(u) {
                for &e in &self.out[u] {
                    stack.push(self.edges[e].1);
                }
            }
        }
        seen
    }

    /// Strongly connected components (each a sorted node list), in reverse
    /// topological order, skipping a set of forbidden edge ids.
    pub fn sccs_without(&self, forbidden: &BTreeSet<usize>) -> Vec<Vec<usize>> {
        // Iterative Tarjan.
        #[derive(Clone, Copy)]
        struct Frame {
            node: usize,
            edge_ix: usize,
        }
        let n = self.num_nodes;
        let mut index = vec![usize::MAX; n];
        let mut low = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut next_index = 0;
        let mut out = Vec::new();
        for root in 0..n {
            if index[root] != usize::MAX {
                continue;
            }
            let mut call: Vec<Frame> = vec![Frame {
                node: root,
                edge_ix: 0,
            }];
            index[root] = next_index;
            low[root] = next_index;
            next_index += 1;
            stack.push(root);
            on_stack[root] = true;
            while let Some(frame) = call.last_mut() {
                let u = frame.node;
                if frame.edge_ix < self.out[u].len() {
                    let eid = self.out[u][frame.edge_ix];
                    frame.edge_ix += 1;
                    if forbidden.contains(&eid) {
                        continue;
                    }
                    let v = self.edges[eid].1;
                    if index[v] == usize::MAX {
                        index[v] = next_index;
                        low[v] = next_index;
                        next_index += 1;
                        stack.push(v);
                        on_stack[v] = true;
                        call.push(Frame {
                            node: v,
                            edge_ix: 0,
                        });
                    } else if on_stack[v] {
                        low[u] = low[u].min(index[v]);
                    }
                } else {
                    call.pop();
                    if let Some(parent) = call.last() {
                        low[parent.node] = low[parent.node].min(low[u]);
                    }
                    if low[u] == index[u] {
                        let mut comp = Vec::new();
                        loop {
                            let w = stack.pop().expect("tarjan stack nonempty");
                            on_stack[w] = false;
                            comp.push(w);
                            if w == u {
                                break;
                            }
                        }
                        comp.sort_unstable();
                        out.push(comp);
                    }
                }
            }
        }
        out
    }

    /// Strongly connected components.
    pub fn sccs(&self) -> Vec<Vec<usize>> {
        self.sccs_without(&BTreeSet::new())
    }

    /// Nodes lying on some cycle, optionally ignoring a set of edges: nodes
    /// in a multi-node SCC or with a (non-forbidden) self-loop.
    pub fn cyclic_nodes_without(&self, forbidden: &BTreeSet<usize>) -> BTreeSet<usize> {
        let mut out = BTreeSet::new();
        for comp in self.sccs_without(forbidden) {
            if comp.len() > 1 {
                out.extend(comp);
            } else {
                let u = comp[0];
                let has_loop = self.out[u]
                    .iter()
                    .any(|&e| !forbidden.contains(&e) && self.edges[e].1 == u);
                if has_loop {
                    out.insert(u);
                }
            }
        }
        out
    }

    /// Enumerate all simple cycles as edge-id sequences (node-simple except
    /// for the repeated start). Exponential in general; the analysed graphs
    /// are small.
    pub fn simple_cycles(&self) -> Vec<Vec<usize>> {
        let mut out = Vec::new();
        for start in 0..self.num_nodes {
            let mut path_edges = Vec::new();
            let mut visited = BTreeSet::new();
            visited.insert(start);
            self.cycle_dfs(start, start, &mut visited, &mut path_edges, &mut out);
        }
        out
    }

    fn cycle_dfs(
        &self,
        start: usize,
        u: usize,
        visited: &mut BTreeSet<usize>,
        path_edges: &mut Vec<usize>,
        out: &mut Vec<Vec<usize>>,
    ) {
        for &e in &self.out[u] {
            let v = self.edges[e].1;
            if v == start {
                path_edges.push(e);
                out.push(path_edges.clone());
                path_edges.pop();
            } else if v > start && !visited.contains(&v) {
                // Only explore nodes > start so each cycle is produced once
                // (rooted at its minimal node).
                visited.insert(v);
                path_edges.push(e);
                self.cycle_dfs(start, v, visited, path_edges, out);
                path_edges.pop();
                visited.remove(&v);
            }
        }
    }

    /// Enumerate all node-simple paths from `from` to `to` as edge-id
    /// sequences. `from == to` yields the empty path only.
    pub fn simple_paths(&self, from: usize, to: usize) -> Vec<Vec<usize>> {
        let mut out = Vec::new();
        if from == to {
            out.push(Vec::new());
            return out;
        }
        let mut visited = BTreeSet::new();
        visited.insert(from);
        let mut path = Vec::new();
        self.path_dfs(from, to, &mut visited, &mut path, &mut out);
        out
    }

    fn path_dfs(
        &self,
        u: usize,
        to: usize,
        visited: &mut BTreeSet<usize>,
        path: &mut Vec<usize>,
        out: &mut Vec<Vec<usize>>,
    ) {
        for &e in &self.out[u] {
            let v = self.edges[e].1;
            if v == to {
                path.push(e);
                out.push(path.clone());
                path.pop();
            } else if !visited.contains(&v) {
                visited.insert(v);
                path.push(e);
                self.path_dfs(v, to, visited, path, out);
                path.pop();
                visited.remove(&v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> DiGraph {
        // 0 -> 1 -> 3, 0 -> 2 -> 3, 3 -> 0 (one big cycle), 1 self-loop.
        let mut g = DiGraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 3);
        g.add_edge(0, 2);
        g.add_edge(2, 3);
        g.add_edge(3, 0);
        g.add_edge(1, 1);
        g
    }

    #[test]
    fn reachability() {
        let g = diamond();
        assert_eq!(g.reachable_from(0).len(), 4);
        let mut h = DiGraph::new(3);
        h.add_edge(0, 1);
        assert_eq!(h.reachable_from(0), [0, 1].into_iter().collect());
        assert_eq!(h.reachable_from(2), [2].into_iter().collect());
    }

    #[test]
    fn sccs_detect_cycles() {
        let g = diamond();
        let sccs = g.sccs();
        // All of 0,1,2,3 in one SCC.
        assert!(sccs.iter().any(|c| c.len() == 4));
        assert_eq!(g.cyclic_nodes_without(&BTreeSet::new()).len(), 4);
    }

    #[test]
    fn forbidden_edges_break_cycles() {
        let g = diamond();
        // Removing edge 3->0 (id 4) leaves only the self-loop on 1.
        let forbidden: BTreeSet<usize> = [4].into_iter().collect();
        assert_eq!(
            g.cyclic_nodes_without(&forbidden),
            [1].into_iter().collect()
        );
    }

    #[test]
    fn simple_cycles_enumeration() {
        let g = diamond();
        let cycles = g.simple_cycles();
        // Two big cycles (via 1 and via 2) + the self-loop on 1.
        assert_eq!(cycles.len(), 3);
        assert!(cycles.iter().any(|c| c.len() == 1));
        assert_eq!(cycles.iter().filter(|c| c.len() == 3).count(), 2);
    }

    #[test]
    fn simple_paths_enumeration() {
        let g = diamond();
        let paths = g.simple_paths(0, 3);
        assert_eq!(paths.len(), 2);
        // 1 → 3 → 0 → 2 is the unique simple path from 1 to 2.
        assert_eq!(g.simple_paths(1, 2).len(), 1);
        assert_eq!(g.simple_paths(2, 2), vec![Vec::<usize>::new()]);
    }

    #[test]
    fn parallel_edges_have_distinct_ids() {
        let mut g = DiGraph::new(1);
        let e1 = g.add_edge(0, 0);
        let e2 = g.add_edge(0, 0);
        assert_ne!(e1, e2);
        assert_eq!(g.simple_cycles().len(), 2);
    }
}
