//! Staged µ-calculus model-checking engine: memoized, parallel evaluation
//! of the Figure 1 extension function.
//!
//! The naive evaluator in [`crate::mc`] recomputes every FO query on every
//! state in every Kleene iteration. This engine exploits the two facts that
//! make verification over a *fixed* finite abstraction special (Thm 4.4 /
//! `PROP(Φ)`): `ADOM(Θ)` and the state databases never change during a run,
//! so
//!
//! 1. **query-extension caching** — the extension of any subformula with no
//!    free predicate variables is a pure function of (subformula, values of
//!    its free individual variables). Extensions are cached under that key,
//!    so `Mu::Query` / `Mu::Live` atoms are evaluated once per distinct
//!    binding instead of once per fixpoint iteration. The same cache
//!    *hoists closed subformulas out of fixpoint loops*: after the first
//!    iteration every predicate-closed subtree is a lookup.
//! 2. **parallel extension computation** — the per-state `holds` evaluation
//!    of an FO query is embarrassingly parallel; it runs on the
//!    deterministic [`dcds_core::par`] scoped-thread pool. Results come
//!    back in state order, so the output (verdict, extension, counters) is
//!    bit-identical at every thread count.
//!
//! Fixpoints keep the naive early-exit paths (∃ stops at `all`, ∀ stops at
//! `∅`), which never change the computed extension.
//!
//! [`crate::mc::eval`] remains in-tree as the differential-testing oracle;
//! `tests/mc_engine_differential.rs` and the unit tests below check
//! agreement on random and hand-written formulas.

use crate::ast::{Mu, PredVar};
use crate::mc::Valuation;
use dcds_core::par::par_map;
use dcds_core::{StateId, Ts};
use dcds_folang::{holds, Assignment, CompiledPlan, EvalCtx, PlanStats, QTerm, Ucq, Var};
use dcds_obs::{event, span, Obs};
use dcds_reldata::{AccessPath, InstanceIndex, Value};
use std::collections::{BTreeSet, HashMap};
use std::fmt;

/// Why a formula was rejected before evaluation: model checking is defined
/// for *closed* formulas only, and an open one silently evaluates to a
/// wrong verdict (e.g. a free-variable atom under `Not` becomes "all
/// states").
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckError {
    /// Free individual (first-order) variables, sorted by name.
    FreeIndividuals(Vec<Var>),
    /// Free predicate (fixpoint) variables, sorted by name.
    FreePredicates(Vec<PredVar>),
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckError::FreeIndividuals(vs) => {
                let names: Vec<&str> = vs.iter().map(|v| v.name()).collect();
                write!(
                    f,
                    "formula is not closed: free individual variable{} {} \
                     (quantify, e.g. `exists {} . live({}) & ...`)",
                    if names.len() == 1 { "" } else { "s" },
                    names.join(", "),
                    names[0],
                    names[0],
                )
            }
            CheckError::FreePredicates(zs) => {
                let names: Vec<&str> = zs.iter().map(|z| z.name()).collect();
                write!(
                    f,
                    "formula is not closed: free predicate variable{} {} \
                     (bind with `mu {} . ...` or `nu {} . ...`)",
                    if names.len() == 1 { "" } else { "s" },
                    names.join(", "),
                    names[0],
                    names[0],
                )
            }
        }
    }
}

impl std::error::Error for CheckError {}

/// Options for [`check_with_opts`] / [`eval_with_opts`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct McOptions {
    /// Worker threads for per-state query evaluation (values `< 1` are
    /// treated as 1). The output is identical at every thread count.
    pub threads: usize,
}

impl Default for McOptions {
    fn default() -> Self {
        McOptions { threads: 1 }
    }
}

/// Observability counters for one model-checking run. All counts are exact
/// and independent of the thread count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct McCounters {
    /// Per-state FO query / `LIVE` evaluations actually performed.
    pub query_state_evals: u64,
    /// Extension requests answered from the query-extension cache.
    pub cache_hits: u64,
    /// Extension requests that missed the cache and were computed.
    pub cache_misses: u64,
    /// Total Kleene iterations across all fixpoint subformulas.
    pub fixpoint_iterations: u64,
    /// States × subformulas visited: each computed subformula extension
    /// contributes the number of states it ranges over.
    pub state_subformula_visits: u64,
}

impl McCounters {
    /// The counters as `(name, value)` pairs — single source of truth for
    /// [`McCounters::to_json`] and [`McCounters::publish`].
    pub fn entries(&self) -> [(&'static str, u64); 5] {
        [
            ("query_state_evals", self.query_state_evals),
            ("cache_hits", self.cache_hits),
            ("cache_misses", self.cache_misses),
            ("fixpoint_iterations", self.fixpoint_iterations),
            ("state_subformula_visits", self.state_subformula_visits),
        ]
    }

    /// Serde-free JSON object, e.g. `{"query_state_evals":42,...}` — used
    /// by `dcds check --format json`.
    pub fn to_json(&self) -> String {
        let body: Vec<String> = self
            .entries()
            .iter()
            .map(|(k, v)| format!("\"{k}\":{v}"))
            .collect();
        format!("{{{}}}", body.join(","))
    }

    /// Publish every counter into the observability registry under
    /// `<prefix>.<name>`. Called from serial code only.
    pub fn publish(&self, obs: &Obs, prefix: &str) {
        if !obs.is_enabled() {
            return;
        }
        for (k, v) in self.entries() {
            obs.counter_add(format!("{prefix}.{k}"), v);
        }
    }

    /// Fraction of cacheable extension requests answered from the cache,
    /// in `[0, 1]`; `None` when there were no cacheable requests.
    pub fn cache_hit_rate(&self) -> Option<f64> {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            None
        } else {
            Some(self.cache_hits as f64 / total as f64)
        }
    }
}

impl fmt::Display for McCounters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} query-state evals, cache {} hits / {} misses, {} fixpoint iterations, \
             {} state×subformula visits",
            self.query_state_evals,
            self.cache_hits,
            self.cache_misses,
            self.fixpoint_iterations,
            self.state_subformula_visits,
        )
    }
}

/// Result of a staged model-checking run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct McRun {
    /// Does the formula hold in the initial state?
    pub holds: bool,
    /// The full extension `(Φ)ᵥ` (states satisfying the formula).
    pub extension: BTreeSet<StateId>,
    /// What the run cost.
    pub counters: McCounters,
}

/// Model-check a **closed** formula with the staged engine, returning the
/// verdict, the extension, and the run counters.
pub fn check_with_opts(f: &Mu, ts: &Ts, opts: McOptions) -> Result<McRun, CheckError> {
    check_traced(f, ts, opts, &Obs::disabled())
}

/// [`check_with_opts`] with an observability handle: an overall `mc_check`
/// span, one span per fixpoint evaluation, iteration heartbeats, and the
/// run counters published under `mc.*`. A disabled handle makes this
/// exactly `check_with_opts`.
pub fn check_traced(f: &Mu, ts: &Ts, opts: McOptions, obs: &Obs) -> Result<McRun, CheckError> {
    let free = f.free_vars();
    if !free.is_empty() {
        return Err(CheckError::FreeIndividuals(free.into_iter().collect()));
    }
    let free_preds = f.free_pred_vars();
    if !free_preds.is_empty() {
        return Err(CheckError::FreePredicates(free_preds.into_iter().collect()));
    }
    let (extension, counters) = eval_traced(f, ts, &mut Valuation::default(), opts, obs);
    Ok(McRun {
        holds: extension.contains(&ts.initial()),
        extension,
        counters,
    })
}

/// Evaluate the extension of a (possibly open) formula with the staged
/// engine under an explicit valuation — the drop-in counterpart of
/// [`crate::mc::eval`] used by the differential tests.
pub fn eval_with_opts(
    f: &Mu,
    ts: &Ts,
    val: &mut Valuation,
    opts: McOptions,
) -> (BTreeSet<StateId>, McCounters) {
    eval_traced(f, ts, val, opts, &Obs::disabled())
}

/// [`eval_with_opts`] with an observability handle.
pub fn eval_traced(
    f: &Mu,
    ts: &Ts,
    val: &mut Valuation,
    opts: McOptions,
    obs: &Obs,
) -> (BTreeSet<StateId>, McCounters) {
    let mut run_span = span!(
        obs,
        "mc_eval",
        states = ts.num_states(),
        threads = opts.threads
    );
    let mut infos = Vec::new();
    index(f, &mut infos);
    // Compile each query leaf once per run (pre-order ids mirror `index`);
    // leaves outside the compilable UCQ fragment stay on the `holds` path.
    let mut plans = Vec::new();
    compile_plans(f, &mut plans);
    let threads = opts.threads.max(1);
    let states: Vec<StateId> = ts.state_ids().collect();
    let all: BTreeSet<StateId> = states.iter().copied().collect();
    let domain: Vec<Value> = {
        let mut d = ts.adom_union();
        d.extend(val.individuals.values().copied());
        d.into_iter().collect()
    };
    // One hash index per state, covering every access path any compiled
    // plan probes; built in parallel up front, reused by every query
    // evaluation and every fixpoint iteration of the run.
    let state_idx: Vec<InstanceIndex> = if plans.iter().any(Option::is_some) {
        let paths: BTreeSet<AccessPath> = plans
            .iter()
            .flatten()
            .flat_map(|p| p.access_paths())
            .collect();
        par_map(&states, threads, |&s| {
            InstanceIndex::build(ts.db(s), paths.iter().cloned())
        })
    } else {
        Vec::new()
    };
    let mut engine = Engine {
        ts,
        states,
        all,
        domain,
        infos,
        plans,
        state_idx,
        plan_stats: PlanStats::default(),
        threads,
        cache: HashMap::new(),
        counters: McCounters::default(),
        obs: obs.clone(),
    };
    let ext = engine.eval_node(f, 0, val);
    run_span.set("extension", ext.len() as u64);
    let fixpoint_iterations = engine.counters.fixpoint_iterations;
    engine.counters.publish(obs, "mc");
    obs.progress_flush(|| {
        format!(
            "mc done: |ext| = {} over {} states, {fixpoint_iterations} fixpoint iterations",
            ext.len(),
            engine.ts.num_states()
        )
    });
    // Plan-cache counters are totals of the work performed — independent of
    // the thread count — published here from serial code.
    if obs.is_enabled() {
        let compiled = engine.plans.iter().flatten().count() as u64;
        obs.counter_add("mc.plans_compiled", compiled);
        for (name, v) in engine.plan_stats.snapshot() {
            obs.counter_add(format!("mc.query.{name}"), v);
        }
    }
    (ext, engine.counters)
}

/// Compile each `Mu::Query` leaf whose formula falls in the compilable UCQ
/// fragment, pushing one entry per node in the pre-order of [`index`]. The
/// query's free variables become plan parameters, so evaluation under a
/// full assignment is a boolean existence check.
fn compile_plans(f: &Mu, plans: &mut Vec<Option<CompiledPlan>>) {
    let plan = match f {
        Mu::Query(q) => {
            Ucq::from_formula(q).and_then(|ucq| CompiledPlan::compile(&ucq, &q.free_vars()).ok())
        }
        _ => None,
    };
    plans.push(plan);
    match f {
        Mu::Query(_) | Mu::Live(_) | Mu::Pvar(_) => {}
        Mu::Not(g)
        | Mu::Diamond(g)
        | Mu::Box_(g)
        | Mu::Exists(_, g)
        | Mu::Forall(_, g)
        | Mu::Lfp(_, g)
        | Mu::Gfp(_, g) => compile_plans(g, plans),
        Mu::And(g, h) | Mu::Or(g, h) | Mu::Implies(g, h) => {
            compile_plans(g, plans);
            compile_plans(h, plans);
        }
    }
}

/// Static per-subformula facts, computed once per run by [`index`].
struct NodeInfo {
    /// Subtree size in nodes (this node included) — pre-order child ids
    /// are derived from it.
    size: u32,
    /// Free individual variables, sorted: the relevant slice of the
    /// valuation for the cache key.
    free: Vec<Var>,
    /// No free predicate variables ⇒ the extension depends only on the
    /// individual valuation ⇒ safe to cache for the whole run.
    cacheable: bool,
}

/// Pre-order-number the formula, returning the subtree size.
fn index(f: &Mu, infos: &mut Vec<NodeInfo>) -> u32 {
    let my = infos.len();
    infos.push(NodeInfo {
        size: 0,
        free: Vec::new(),
        cacheable: false,
    });
    let kids = match f {
        Mu::Query(_) | Mu::Live(_) | Mu::Pvar(_) => 0,
        Mu::Not(g)
        | Mu::Diamond(g)
        | Mu::Box_(g)
        | Mu::Exists(_, g)
        | Mu::Forall(_, g)
        | Mu::Lfp(_, g)
        | Mu::Gfp(_, g) => index(g, infos),
        Mu::And(g, h) | Mu::Or(g, h) | Mu::Implies(g, h) => index(g, infos) + index(h, infos),
    };
    let size = 1 + kids;
    infos[my] = NodeInfo {
        size,
        free: f.free_vars().into_iter().collect(),
        cacheable: f.free_pred_vars().is_empty(),
    };
    size
}

type CacheKey = (u32, Vec<Option<Value>>);

struct Engine<'a> {
    ts: &'a Ts,
    states: Vec<StateId>,
    all: BTreeSet<StateId>,
    domain: Vec<Value>,
    infos: Vec<NodeInfo>,
    /// Compiled plan per pre-order node id; `Some` only at `Mu::Query`
    /// leaves in the compilable fragment.
    plans: Vec<Option<CompiledPlan>>,
    /// Per-state hash indexes aligned with `states`; empty when no leaf
    /// compiled.
    state_idx: Vec<InstanceIndex>,
    plan_stats: PlanStats,
    threads: usize,
    cache: HashMap<CacheKey, BTreeSet<StateId>>,
    counters: McCounters,
    obs: Obs,
}

impl Engine<'_> {
    /// Pre-order id of the first child of `id`.
    fn kid1(&self, id: u32) -> u32 {
        id + 1
    }

    /// Pre-order id of the second child of `id`.
    fn kid2(&self, id: u32) -> u32 {
        id + 1 + self.infos[(id + 1) as usize].size
    }

    fn eval_node(&mut self, f: &Mu, id: u32, val: &mut Valuation) -> BTreeSet<StateId> {
        // Cache lookup: sound only for predicate-closed subformulas, keyed
        // by the valuation restricted to the node's free variables.
        let key: Option<CacheKey> = if self.infos[id as usize].cacheable {
            let slice: Vec<Option<Value>> = self.infos[id as usize]
                .free
                .iter()
                .map(|v| val.individuals.get(v).copied())
                .collect();
            let key = (id, slice);
            if let Some(hit) = self.cache.get(&key) {
                self.counters.cache_hits += 1;
                return hit.clone();
            }
            self.counters.cache_misses += 1;
            Some(key)
        } else {
            None
        };
        self.counters.state_subformula_visits += self.states.len() as u64;
        let out = self.compute(f, id, val);
        if let Some(key) = key {
            self.cache.insert(key, out.clone());
        }
        out
    }

    fn compute(&mut self, f: &Mu, id: u32, val: &mut Valuation) -> BTreeSet<StateId> {
        match f {
            Mu::Query(q) => {
                let mut asg = Assignment::new();
                for v in &q.free_vars() {
                    match val.individuals.get(v) {
                        Some(&d) => {
                            asg.insert(v.clone(), d);
                        }
                        // An unassigned free variable cannot be satisfied.
                        None => return BTreeSet::new(),
                    }
                }
                self.counters.query_state_evals += self.states.len() as u64;
                let ts = self.ts;
                let sat = match &self.plans[id as usize] {
                    Some(plan) if self.state_idx.len() == self.states.len() => {
                        let (idxs, stats) = (&self.state_idx, &self.plan_stats);
                        let states = &self.states;
                        let ord: Vec<usize> = (0..states.len()).collect();
                        par_map(&ord, self.threads, |&i| {
                            let ctx = EvalCtx::with_index(ts.db(states[i]), &idxs[i]).stats(stats);
                            plan.holds(&ctx, &asg)
                        })
                    }
                    _ => par_map(&self.states, self.threads, |&s| {
                        holds(q, ts.db(s), &asg).unwrap_or(false)
                    }),
                };
                self.states
                    .iter()
                    .zip(sat)
                    .filter_map(|(&s, ok)| ok.then_some(s))
                    .collect()
            }
            Mu::Live(t) => {
                let d = match t {
                    QTerm::Const(c) => Some(*c),
                    QTerm::Var(v) => val.individuals.get(v).copied(),
                };
                match d {
                    // Per Section 3.1: an unassigned LIVE(x) imposes no
                    // requirement.
                    None => self.all.clone(),
                    Some(d) => {
                        self.counters.query_state_evals += self.states.len() as u64;
                        self.states
                            .iter()
                            .copied()
                            .filter(|&s| self.ts.db(s).active_domain().contains(&d))
                            .collect()
                    }
                }
            }
            Mu::Not(g) => &self.all.clone() - &self.eval_node(g, self.kid1(id), val),
            Mu::And(g, h) => {
                let (k1, k2) = (self.kid1(id), self.kid2(id));
                &self.eval_node(g, k1, val) & &self.eval_node(h, k2, val)
            }
            Mu::Or(g, h) => {
                let (k1, k2) = (self.kid1(id), self.kid2(id));
                &self.eval_node(g, k1, val) | &self.eval_node(h, k2, val)
            }
            Mu::Implies(g, h) => {
                let (k1, k2) = (self.kid1(id), self.kid2(id));
                let ng = &self.all.clone() - &self.eval_node(g, k1, val);
                &ng | &self.eval_node(h, k2, val)
            }
            Mu::Exists(v, g) => {
                let kid = self.kid1(id);
                let saved = val.individuals.get(v).copied();
                let mut out = BTreeSet::new();
                let domain = self.domain.clone();
                for d in domain {
                    val.individuals.insert(v.clone(), d);
                    out.extend(self.eval_node(g, kid, val));
                    if out.len() == self.all.len() {
                        break;
                    }
                }
                restore(val, v, saved);
                out
            }
            Mu::Forall(v, g) => {
                let kid = self.kid1(id);
                let saved = val.individuals.get(v).copied();
                let mut out = self.all.clone();
                let domain = self.domain.clone();
                for d in domain {
                    val.individuals.insert(v.clone(), d);
                    out = &out & &self.eval_node(g, kid, val);
                    if out.is_empty() {
                        break;
                    }
                }
                restore(val, v, saved);
                out
            }
            Mu::Diamond(g) => {
                let target = self.eval_node(g, self.kid1(id), val);
                self.states
                    .iter()
                    .copied()
                    .filter(|&s| self.ts.successors(s).iter().any(|t| target.contains(t)))
                    .collect()
            }
            Mu::Box_(g) => {
                let target = self.eval_node(g, self.kid1(id), val);
                self.states
                    .iter()
                    .copied()
                    .filter(|&s| self.ts.successors(s).iter().all(|t| target.contains(t)))
                    .collect()
            }
            Mu::Pvar(z) => val.predicates.get(z).cloned().unwrap_or_default(),
            Mu::Lfp(z, g) => {
                let kid = self.kid1(id);
                let mut fp_span = span!(self.obs, "lfp", node = id);
                let saved = val.predicates.insert(z.clone(), BTreeSet::new());
                let mut current = BTreeSet::new();
                let mut iters = 0u64;
                loop {
                    val.predicates.insert(z.clone(), current.clone());
                    self.counters.fixpoint_iterations += 1;
                    iters += 1;
                    event!(
                        self.obs,
                        "fixpoint",
                        op = "lfp",
                        node = id,
                        iter = iters,
                        extension = current.len(),
                    );
                    self.obs.heartbeat(|| {
                        format!(
                            "mc lfp node {id}: iteration {iters}, |ext| = {}",
                            current.len()
                        )
                    });
                    let next = self.eval_node(g, kid, val);
                    if next == current {
                        break;
                    }
                    current = next;
                }
                fp_span.set("iterations", iters);
                fp_span.set("extension", current.len() as u64);
                restore_pred(val, z, saved);
                current
            }
            Mu::Gfp(z, g) => {
                let kid = self.kid1(id);
                let mut fp_span = span!(self.obs, "gfp", node = id);
                let saved = val.predicates.insert(z.clone(), self.all.clone());
                let mut current = self.all.clone();
                let mut iters = 0u64;
                loop {
                    val.predicates.insert(z.clone(), current.clone());
                    self.counters.fixpoint_iterations += 1;
                    iters += 1;
                    event!(
                        self.obs,
                        "fixpoint",
                        op = "gfp",
                        node = id,
                        iter = iters,
                        extension = current.len(),
                    );
                    self.obs.heartbeat(|| {
                        format!(
                            "mc gfp node {id}: iteration {iters}, |ext| = {}",
                            current.len()
                        )
                    });
                    let next = self.eval_node(g, kid, val);
                    if next == current {
                        break;
                    }
                    current = next;
                }
                fp_span.set("iterations", iters);
                fp_span.set("extension", current.len() as u64);
                restore_pred(val, z, saved);
                current
            }
        }
    }
}

fn restore(val: &mut Valuation, v: &Var, saved: Option<Value>) {
    match saved {
        Some(d) => {
            val.individuals.insert(v.clone(), d);
        }
        None => {
            val.individuals.remove(v);
        }
    }
}

fn restore_pred(val: &mut Valuation, z: &PredVar, saved: Option<BTreeSet<StateId>>) {
    match saved {
        Some(s) => {
            val.predicates.insert(z.clone(), s);
        }
        None => {
            val.predicates.remove(z);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mc;
    use crate::sugar;
    use dcds_folang::Formula;
    use dcds_reldata::{ConstantPool, Instance, Schema, Tuple};

    /// The 3-state system of the `mc` tests: s0 --> s1 --> s2 (self-loop).
    fn sample() -> (Schema, ConstantPool, Ts) {
        let mut schema = Schema::new();
        let stud = schema.add_relation("Stud", 1).unwrap();
        let grad = schema.add_relation("Grad", 2).unwrap();
        let mut pool = ConstantPool::new();
        let a = pool.intern("a");
        let b = pool.intern("b");
        let m = pool.intern("m");
        let s0 = Instance::from_facts([(stud, Tuple::from([a]))]);
        let s1 = Instance::from_facts([(stud, Tuple::from([a])), (stud, Tuple::from([b]))]);
        let s2 = Instance::from_facts([(grad, Tuple::from([a, m]))]);
        let mut ts = Ts::new(s0);
        let i1 = ts.add_state(s1);
        let i2 = ts.add_state(s2);
        ts.add_edge(ts.initial(), i1);
        ts.add_edge(i1, i2);
        ts.add_edge(i2, i2);
        (schema, pool, ts)
    }

    fn stud(s: &Schema, v: &str) -> Mu {
        Mu::Query(Formula::Atom(
            s.rel_id("Stud").unwrap(),
            vec![QTerm::var(v)],
        ))
    }

    fn formula_family(schema: &Schema, pool: &ConstantPool) -> Vec<Mu> {
        let a = pool.get("a").unwrap();
        let m = pool.get("m").unwrap();
        let grad_am = Mu::Query(Formula::Atom(
            schema.rel_id("Grad").unwrap(),
            vec![QTerm::Const(a), QTerm::Const(m)],
        ));
        let some_stud = Mu::exists("X", Mu::live("X").and(stud(schema, "X")));
        vec![
            some_stud.clone(),
            some_stud.clone().diamond(),
            sugar::ef(grad_am.clone()),
            sugar::ag(some_stud.clone().not()),
            sugar::ag(Mu::Query(Formula::True)),
            sugar::eu(some_stud.clone(), grad_am.clone()),
            sugar::af(grad_am.clone()),
            sugar::eg(some_stud.clone()),
            Mu::forall("X", Mu::live("X").implies(stud(schema, "X"))),
            Mu::exists(
                "X",
                Mu::live("X").and(stud(schema, "X")).and(
                    Mu::exists(
                        "Y",
                        Mu::live("Y").and(Mu::Query(Formula::Atom(
                            schema.rel_id("Grad").unwrap(),
                            vec![QTerm::var("X"), QTerm::var("Y")],
                        ))),
                    )
                    .diamond()
                    .diamond(),
                ),
            ),
        ]
    }

    #[test]
    fn agrees_with_naive_oracle_at_all_thread_counts() {
        let (schema, pool, ts) = sample();
        for phi in formula_family(&schema, &pool) {
            let oracle = mc::eval(&phi, &ts, &mut Valuation::default());
            let mut reference = None;
            for threads in [1, 2, 8] {
                let (ext, counters) =
                    eval_with_opts(&phi, &ts, &mut Valuation::default(), McOptions { threads });
                assert_eq!(ext, oracle, "engine vs oracle on {phi:?}");
                match &reference {
                    None => reference = Some((ext, counters)),
                    Some((r_ext, r_counters)) => {
                        assert_eq!(&ext, r_ext, "extension varies with threads on {phi:?}");
                        assert_eq!(
                            &counters, r_counters,
                            "counters vary with threads on {phi:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn fixpoint_reuses_cached_query_extensions() {
        let (schema, pool, ts) = sample();
        let a = pool.get("a").unwrap();
        let m = pool.get("m").unwrap();
        let grad = Mu::Query(Formula::Atom(
            schema.rel_id("Grad").unwrap(),
            vec![QTerm::Const(a), QTerm::Const(m)],
        ));
        let run = check_with_opts(&sugar::ef(grad), &ts, McOptions::default()).unwrap();
        assert!(run.holds);
        // EF needs ≥ 2 Kleene iterations; the ground Grad(a,m) leaf is
        // computed once and a cache hit afterwards.
        assert!(run.counters.fixpoint_iterations >= 2);
        assert!(run.counters.cache_hits > 0, "{:?}", run.counters);
        assert!(run.counters.cache_hit_rate().unwrap() > 0.0);
    }

    #[test]
    fn closed_subformulas_hoisted_out_of_fixpoints() {
        let (schema, pool, ts) = sample();
        let (_, _) = (&schema, &pool);
        // νZ.(∃x. LIVE(x) ∧ Stud(x)) ∧ []Z — the quantified conjunct is
        // predicate-closed, so iterations 2.. answer it from the cache.
        let some_stud = Mu::exists("X", Mu::live("X").and(stud(&schema, "X")));
        let run = check_with_opts(&sugar::ag(some_stud), &ts, McOptions::default()).unwrap();
        let c = run.counters;
        assert!(c.fixpoint_iterations >= 2);
        // The hoisted conjunct costs one computation regardless of the
        // number of iterations: hits strictly exceed zero.
        assert!(c.cache_hits >= c.fixpoint_iterations - 1, "{c:?}");
    }

    #[test]
    fn open_formulas_are_rejected_by_name() {
        let (_, _, ts) = sample();
        let err = check_with_opts(&Mu::live("X"), &ts, McOptions::default()).unwrap_err();
        assert_eq!(err, CheckError::FreeIndividuals(vec![Var::new("X")]));
        assert!(err.to_string().contains("X"), "{err}");

        let open_pred = Mu::Pvar(PredVar::new("Z")).diamond();
        let err2 = check_with_opts(&open_pred, &ts, McOptions::default()).unwrap_err();
        assert_eq!(err2, CheckError::FreePredicates(vec![PredVar::new("Z")]));
        assert!(err2.to_string().contains("Z"), "{err2}");

        // The wrong-verdict shape from the issue: ¬LIVE(x) with x free
        // evaluated to ∅ (naive: all − all); now it is an error instead.
        let trap = Mu::live("X").not();
        assert!(check_with_opts(&trap, &ts, McOptions::default()).is_err());
    }

    #[test]
    fn verdicts_match_naive_check() {
        let (schema, pool, ts) = sample();
        for phi in formula_family(&schema, &pool) {
            if !phi.is_closed() {
                continue;
            }
            let naive = mc::eval(&phi, &ts, &mut Valuation::default()).contains(&ts.initial());
            let run = check_with_opts(&phi, &ts, McOptions { threads: 4 }).unwrap();
            assert_eq!(run.holds, naive, "{phi:?}");
        }
    }
}
