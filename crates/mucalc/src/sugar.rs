//! CTL-style combinators compiled into µ-calculus.
//!
//! The paper stresses that µ-calculus subsumes CTL/LTL/CTL*; these helpers
//! make the standard branching-time operators available as constructors.
//! Deadlock states (no successors) are handled by the classical
//! total-system-free translations: `AF φ = µZ. φ ∨ ([−]Z ∧ ⟨−⟩⊤)` so that a
//! deadlocked state does not satisfy `AF φ` vacuously, and dually for `EG`.

use crate::ast::Mu;
use dcds_folang::Formula;

fn fresh_z(tag: &str, body_hint: &Mu) -> String {
    // Derive a binder name unlikely to clash: tag + size of body.
    format!("__{tag}{}", body_hint.size())
}

/// `EF φ`: along some path, eventually φ. `µZ. φ ∨ ⟨−⟩Z`.
pub fn ef(phi: Mu) -> Mu {
    let z = fresh_z("EF", &phi);
    Mu::lfp(&z, phi.or(Mu::Pvar(crate::ast::PredVar::new(&z)).diamond()))
}

/// `AG φ`: along every path, always φ. `νZ. φ ∧ [−]Z`.
pub fn ag(phi: Mu) -> Mu {
    let z = fresh_z("AG", &phi);
    Mu::gfp(&z, phi.and(Mu::Pvar(crate::ast::PredVar::new(&z)).boxed()))
}

/// `AF φ`: along every path, eventually φ.
/// `µZ. φ ∨ ([−]Z ∧ ⟨−⟩⊤)` — a deadlock without φ does not satisfy it.
pub fn af(phi: Mu) -> Mu {
    let z = fresh_z("AF", &phi);
    let zv = Mu::Pvar(crate::ast::PredVar::new(&z));
    Mu::lfp(
        &z,
        phi.or(zv.boxed().and(Mu::Query(Formula::True).diamond())),
    )
}

/// `EG φ`: along some path, always φ.
/// `νZ. φ ∧ (⟨−⟩Z ∨ [−]⊥)` — a path may legitimately end in a deadlock.
pub fn eg(phi: Mu) -> Mu {
    let z = fresh_z("EG", &phi);
    let zv = Mu::Pvar(crate::ast::PredVar::new(&z));
    Mu::gfp(
        &z,
        phi.and(zv.diamond().or(Mu::Query(Formula::True).diamond().not())),
    )
}

/// `E[φ U ψ]` (strong until): `µZ. ψ ∨ (φ ∧ ⟨−⟩Z)`.
pub fn eu(phi: Mu, psi: Mu) -> Mu {
    let z = fresh_z("EU", &psi);
    let zv = Mu::Pvar(crate::ast::PredVar::new(&z));
    Mu::lfp(&z, psi.or(phi.and(zv.diamond())))
}

/// `A[φ U ψ]` (strong until): `µZ. ψ ∨ (φ ∧ [−]Z ∧ ⟨−⟩⊤)`.
pub fn au(phi: Mu, psi: Mu) -> Mu {
    let z = fresh_z("AU", &psi);
    let zv = Mu::Pvar(crate::ast::PredVar::new(&z));
    Mu::lfp(
        &z,
        psi.or(phi.and(zv.boxed()).and(Mu::Query(Formula::True).diamond())),
    )
}

/// `EX φ` = `⟨−⟩φ` and `AX φ` = `[−]φ`, for symmetry.
pub fn ex(phi: Mu) -> Mu {
    phi.diamond()
}

/// See [`ex`].
pub fn ax(phi: Mu) -> Mu {
    phi.boxed()
}

/// The µLP existential until of Example 3.3:
/// `µY. ψ ∨ ⟨−⟩(LIVE(~x) ∧ Y)` — along SOME path the bindings stay live
/// until ψ holds.
pub fn eu_live(vars: &[dcds_folang::Var], psi: Mu) -> Mu {
    let z = fresh_z("EUL", &psi);
    let zv = Mu::Pvar(crate::ast::PredVar::new(&z));
    let guard = Mu::live_all(vars.iter().cloned());
    Mu::lfp(&z, psi.or(Mu::Diamond(Box::new(guard.and(zv)))))
}

/// The persistence-guarded until used by the travel-reimbursement example
/// (Appendix E): `A[(φ ∧ LIVE(~x)) U ψ]` where the guard keeps the
/// quantified bindings live along the path — the µLP-compatible reading of
/// `AU`. `vars` are the bindings to keep live.
pub fn au_live(vars: &[dcds_folang::Var], phi: Mu, psi: Mu) -> Mu {
    let z = fresh_z("AUL", &psi);
    let zv = Mu::Pvar(crate::ast::PredVar::new(&z));
    let guard = Mu::live_all(vars.iter().cloned());
    Mu::lfp(
        &z,
        psi.or(phi
            .and(Mu::Box_(Box::new(guard.and(zv))))
            .and(Mu::Query(Formula::True).diamond())),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mc::check;
    use dcds_core::Ts;
    use dcds_folang::QTerm;
    use dcds_reldata::{ConstantPool, Instance, Schema, Tuple};

    /// s0 -> s1 -> s2(deadlock), s0 -> s0 loop. P holds in s2 only.
    fn sample() -> (Mu, Ts) {
        let mut schema = Schema::new();
        let p = schema.add_relation("P", 1).unwrap();
        let mut pool = ConstantPool::new();
        let a = pool.intern("a");
        let mut ts = Ts::new(Instance::new());
        let s1 = ts.add_state(Instance::new());
        let s2 = ts.add_state(Instance::from_facts([(p, Tuple::from([a]))]));
        ts.add_edge(ts.initial(), ts.initial());
        ts.add_edge(ts.initial(), s1);
        ts.add_edge(s1, s2);
        let phi = Mu::Query(dcds_folang::Formula::Atom(p, vec![QTerm::Const(a)]));
        (phi, ts)
    }

    #[test]
    fn ef_finds_reachable_goal() {
        let (phi, ts) = sample();
        assert!(check(&ef(phi), &ts).unwrap());
    }

    #[test]
    fn af_fails_with_escaping_loop() {
        let (phi, ts) = sample();
        // The s0 self-loop avoids P forever.
        assert!(!check(&af(phi), &ts).unwrap());
    }

    #[test]
    fn ag_and_eg() {
        let (phi, ts) = sample();
        assert!(!check(&ag(phi.clone()), &ts).unwrap());
        // EG ¬P: loop on s0 forever.
        assert!(check(&eg(phi.clone().not()), &ts).unwrap());
        // EG P fails at the initial state.
        assert!(!check(&eg(phi), &ts).unwrap());
    }

    #[test]
    fn eu_strong_until() {
        let (phi, ts) = sample();
        // E[ ¬P U P ]: s0 s1 s2.
        assert!(check(&eu(phi.clone().not(), phi), &ts).unwrap());
    }

    #[test]
    fn au_requires_all_paths() {
        let (phi, ts) = sample();
        assert!(!check(&au(phi.clone().not(), phi), &ts).unwrap());
    }

    #[test]
    fn eu_live_requires_persistence() {
        // s0: P(a) -> s1: {} -> s2: Q(a), s2 loop. The binding a is dropped
        // in the middle state: the persistence-guarded until (Example 3.3's
        // µLP shape) fails, while the unguarded µLA-style reachability
        // succeeds — the semantic gap between µLA and µLP in one test.
        let mut schema = Schema::new();
        let p = schema.add_relation("P", 1).unwrap();
        let q = schema.add_relation("Q", 1).unwrap();
        let mut pool = ConstantPool::new();
        let a = pool.intern("a");
        let mut ts = Ts::new(Instance::from_facts([(p, Tuple::from([a]))]));
        let mid = ts.add_state(Instance::new());
        let end = ts.add_state(Instance::from_facts([(q, Tuple::from([a]))]));
        ts.add_edge(ts.initial(), mid);
        ts.add_edge(mid, end);
        ts.add_edge(end, end);
        let x = dcds_folang::Var::new("X");
        let psi = Mu::Query(dcds_folang::Formula::Atom(q, vec![QTerm::var("X")]));
        let p_of_x = Mu::Query(dcds_folang::Formula::Atom(p, vec![QTerm::var("X")]));
        let guarded = Mu::exists(
            "X",
            Mu::live("X")
                .and(p_of_x.clone())
                .and(eu_live(std::slice::from_ref(&x), psi.clone())),
        );
        assert!(
            !check(&guarded, &ts).unwrap(),
            "a does not persist through s1"
        );
        let unguarded = Mu::exists(
            "X",
            Mu::live("X")
                .and(p_of_x)
                .and(eu(Mu::Query(dcds_folang::Formula::True), psi)),
        );
        assert!(
            check(&unguarded, &ts).unwrap(),
            "history-style reachability holds"
        );
    }

    #[test]
    fn deadlock_does_not_satisfy_af_vacuously() {
        // Single deadlocked state without P.
        let mut ts = Ts::new(Instance::new());
        let _ = &mut ts;
        let phi = Mu::Query(dcds_folang::Formula::False);
        assert!(!check(&af(phi), &ts).unwrap());
    }
}
