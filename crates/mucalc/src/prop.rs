//! `PROP(Φ)`: propositionalisation of first-order µ-calculus formulas over
//! a finite transition system (Theorem 4.4).
//!
//! Given the finite abstraction `Θ` with `ADOM(Θ) = ⋃ᵢ ADOM(db(sᵢ))`,
//! first-order quantification is expanded into finite boolean combinations:
//!
//! ```text
//!   PROP(∃x. LIVE(x) ∧ Ψ(x)) = ⋁_{t ∈ ADOM(Θ)} LIVE(t) ∧ PROP(Ψ(t))
//! ```
//!
//! and every other constructor is mapped homomorphically. Query leaves
//! become *closed* FO queries — propositions evaluated per state — so the
//! result is a plain propositional µ-calculus formula, checkable by
//! conventional means ([`crate::prop_mc`]).

use crate::ast::{Mu, PredVar};
use dcds_folang::{Formula, QTerm};
use dcds_reldata::Value;
use std::collections::BTreeSet;

/// A propositional µ-calculus formula over database-labeled states.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PropMu {
    /// A closed FO query — a proposition evaluated in each state's database.
    Atom(Formula),
    /// `LIVE(t)` for a ground constant.
    LiveConst(Value),
    /// Negation.
    Not(Box<PropMu>),
    /// Conjunction.
    And(Box<PropMu>, Box<PropMu>),
    /// Disjunction.
    Or(Box<PropMu>, Box<PropMu>),
    /// Diamond.
    Diamond(Box<PropMu>),
    /// Box.
    Box_(Box<PropMu>),
    /// Predicate variable.
    Pvar(PredVar),
    /// Least fixpoint.
    Lfp(PredVar, Box<PropMu>),
    /// Greatest fixpoint.
    Gfp(PredVar, Box<PropMu>),
}

impl PropMu {
    /// Size in AST nodes.
    pub fn size(&self) -> usize {
        match self {
            PropMu::Atom(f) => f.size(),
            PropMu::LiveConst(_) | PropMu::Pvar(_) => 1,
            PropMu::Not(f)
            | PropMu::Diamond(f)
            | PropMu::Box_(f)
            | PropMu::Lfp(_, f)
            | PropMu::Gfp(_, f) => 1 + f.size(),
            PropMu::And(f, g) | PropMu::Or(f, g) => 1 + f.size() + g.size(),
        }
    }
}

/// Errors during propositionalisation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PropError {
    /// Explanation.
    pub message: String,
}

impl std::fmt::Display for PropError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for PropError {}

/// Translate a closed µL formula into propositional µ-calculus over the
/// finite value domain `adom` (typically `ADOM(Θ)`).
///
/// Quantifiers are expanded over `adom`; for µLA/µLP formulas this yields a
/// formula equivalent to the original (Theorem 4.4), since their LIVE
/// guards restrict witnesses to the active domain anyway.
pub fn propositionalize(f: &Mu, adom: &BTreeSet<Value>) -> Result<PropMu, PropError> {
    match f {
        Mu::Query(q) => {
            if let Some(v) = q.free_vars().into_iter().next() {
                return Err(PropError {
                    message: format!("query leaf has free variable {}", v.name()),
                });
            }
            Ok(PropMu::Atom(q.clone()))
        }
        Mu::Live(QTerm::Const(c)) => Ok(PropMu::LiveConst(*c)),
        Mu::Live(QTerm::Var(v)) => Err(PropError {
            message: format!("LIVE({}) with unsubstituted variable", v.name()),
        }),
        Mu::Not(g) => Ok(PropMu::Not(Box::new(propositionalize(g, adom)?))),
        Mu::And(g, h) => Ok(PropMu::And(
            Box::new(propositionalize(g, adom)?),
            Box::new(propositionalize(h, adom)?),
        )),
        Mu::Or(g, h) => Ok(PropMu::Or(
            Box::new(propositionalize(g, adom)?),
            Box::new(propositionalize(h, adom)?),
        )),
        Mu::Implies(g, h) => Ok(PropMu::Or(
            Box::new(PropMu::Not(Box::new(propositionalize(g, adom)?))),
            Box::new(propositionalize(h, adom)?),
        )),
        Mu::Exists(v, g) => {
            let mut out: Option<PropMu> = None;
            for &t in adom {
                let inst = propositionalize(&g.substitute_var(v, t), adom)?;
                out = Some(match out {
                    None => inst,
                    Some(acc) => PropMu::Or(Box::new(acc), Box::new(inst)),
                });
            }
            Ok(out.unwrap_or(PropMu::Atom(Formula::False)))
        }
        Mu::Forall(v, g) => {
            let mut out: Option<PropMu> = None;
            for &t in adom {
                let inst = propositionalize(&g.substitute_var(v, t), adom)?;
                out = Some(match out {
                    None => inst,
                    Some(acc) => PropMu::And(Box::new(acc), Box::new(inst)),
                });
            }
            Ok(out.unwrap_or(PropMu::Atom(Formula::True)))
        }
        Mu::Diamond(g) => Ok(PropMu::Diamond(Box::new(propositionalize(g, adom)?))),
        Mu::Box_(g) => Ok(PropMu::Box_(Box::new(propositionalize(g, adom)?))),
        Mu::Pvar(z) => Ok(PropMu::Pvar(z.clone())),
        Mu::Lfp(z, g) => Ok(PropMu::Lfp(z.clone(), Box::new(propositionalize(g, adom)?))),
        Mu::Gfp(z, g) => Ok(PropMu::Gfp(z.clone(), Box::new(propositionalize(g, adom)?))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcds_reldata::{ConstantPool, Schema};

    #[test]
    fn quantifier_expansion_size() {
        let mut schema = Schema::new();
        let p = schema.add_relation("P", 1).unwrap();
        let mut pool = ConstantPool::new();
        let adom: BTreeSet<Value> = ["a", "b", "c"].iter().map(|n| pool.intern(n)).collect();
        let f = Mu::exists(
            "X",
            Mu::live("X").and(Mu::Query(Formula::Atom(p, vec![QTerm::var("X")]))),
        );
        let prop = propositionalize(&f, &adom).unwrap();
        // Three disjuncts of LIVE(t) ∧ P(t).
        let count_live = count_live_consts(&prop);
        assert_eq!(count_live, 3);
    }

    fn count_live_consts(f: &PropMu) -> usize {
        match f {
            PropMu::LiveConst(_) => 1,
            PropMu::Atom(_) | PropMu::Pvar(_) => 0,
            PropMu::Not(g)
            | PropMu::Diamond(g)
            | PropMu::Box_(g)
            | PropMu::Lfp(_, g)
            | PropMu::Gfp(_, g) => count_live_consts(g),
            PropMu::And(g, h) | PropMu::Or(g, h) => count_live_consts(g) + count_live_consts(h),
        }
    }

    #[test]
    fn empty_domain_quantifiers() {
        let f = Mu::exists("X", Mu::live("X"));
        let prop = propositionalize(&f, &BTreeSet::new()).unwrap();
        assert_eq!(prop, PropMu::Atom(Formula::False));
        let g = Mu::forall("X", Mu::live("X"));
        let propg = propositionalize(&g, &BTreeSet::new()).unwrap();
        assert_eq!(propg, PropMu::Atom(Formula::True));
    }

    #[test]
    fn open_query_rejected() {
        let mut schema = Schema::new();
        let p = schema.add_relation("P", 1).unwrap();
        let f = Mu::Query(Formula::Atom(p, vec![QTerm::var("X")]));
        assert!(propositionalize(&f, &BTreeSet::new()).is_err());
    }
}
