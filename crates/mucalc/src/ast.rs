//! Abstract syntax of the first-order µ-calculus µL.
//!
//! ```text
//! Φ ::= Q | LIVE(x) | ¬Φ | Φ∧Φ | Φ∨Φ | Φ→Φ | ∃x.Φ | ∀x.Φ
//!     | ⟨−⟩Φ | [−]Φ | Z | µZ.Φ | νZ.Φ
//! ```
//!
//! `Q` is an (open) FO query evaluated in the current state's database;
//! `LIVE(x)` asserts membership of `x`'s value in the current active domain
//! (the special predicate of Section 3.1). The fragments µLA / µLP are
//! *shapes* of this one AST, recognised by [`crate::fragments`].

use dcds_folang::{Formula, QTerm, Var};
use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

/// A second-order predicate variable (arity 0) bound by µ/ν.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PredVar(Arc<str>);

impl PredVar {
    /// Make a predicate variable.
    pub fn new(name: &str) -> Self {
        PredVar(Arc::from(name))
    }

    /// Its name.
    pub fn name(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for PredVar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A µL formula.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Mu {
    /// An FO query over the current database (possibly open).
    Query(Formula),
    /// `LIVE(t)`: the value of `t` (a variable, or a constant after
    /// grounding by `PROP`) belongs to the current active domain.
    Live(QTerm),
    /// Negation.
    Not(Box<Mu>),
    /// Conjunction.
    And(Box<Mu>, Box<Mu>),
    /// Disjunction.
    Or(Box<Mu>, Box<Mu>),
    /// Implication.
    Implies(Box<Mu>, Box<Mu>),
    /// First-order existential quantification across states.
    Exists(Var, Box<Mu>),
    /// First-order universal quantification across states.
    Forall(Var, Box<Mu>),
    /// `⟨−⟩Φ`: some successor satisfies Φ.
    Diamond(Box<Mu>),
    /// `[−]Φ`: every successor satisfies Φ.
    Box_(Box<Mu>),
    /// A predicate variable `Z`.
    Pvar(PredVar),
    /// Least fixpoint `µZ.Φ`.
    Lfp(PredVar, Box<Mu>),
    /// Greatest fixpoint `νZ.Φ`.
    Gfp(PredVar, Box<Mu>),
}

impl Mu {
    /// Query leaf.
    pub fn query(f: Formula) -> Mu {
        Mu::Query(f)
    }

    /// `LIVE(x)`.
    pub fn live(name: &str) -> Mu {
        Mu::Live(QTerm::var(name))
    }

    /// `LIVE(c)` for a ground constant.
    pub fn live_const(v: dcds_reldata::Value) -> Mu {
        Mu::Live(QTerm::Const(v))
    }

    /// `LIVE(x₁) ∧ ... ∧ LIVE(xₙ)` (true when empty).
    pub fn live_all(vars: impl IntoIterator<Item = Var>) -> Mu {
        let mut it = vars.into_iter();
        match it.next() {
            None => Mu::Query(Formula::True),
            Some(first) => it.fold(Mu::Live(QTerm::Var(first)), |acc, v| {
                acc.and(Mu::Live(QTerm::Var(v)))
            }),
        }
    }

    /// Negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Mu {
        Mu::Not(Box::new(self))
    }

    /// Conjunction.
    pub fn and(self, other: Mu) -> Mu {
        Mu::And(Box::new(self), Box::new(other))
    }

    /// Disjunction.
    pub fn or(self, other: Mu) -> Mu {
        Mu::Or(Box::new(self), Box::new(other))
    }

    /// Implication.
    pub fn implies(self, other: Mu) -> Mu {
        Mu::Implies(Box::new(self), Box::new(other))
    }

    /// Existential quantifier.
    pub fn exists(v: impl Into<Var>, body: Mu) -> Mu {
        Mu::Exists(v.into(), Box::new(body))
    }

    /// Universal quantifier.
    pub fn forall(v: impl Into<Var>, body: Mu) -> Mu {
        Mu::Forall(v.into(), Box::new(body))
    }

    /// `⟨−⟩Φ`.
    pub fn diamond(self) -> Mu {
        Mu::Diamond(Box::new(self))
    }

    /// `[−]Φ`.
    pub fn boxed(self) -> Mu {
        Mu::Box_(Box::new(self))
    }

    /// `µZ.Φ`.
    pub fn lfp(z: &str, body: Mu) -> Mu {
        Mu::Lfp(PredVar::new(z), Box::new(body))
    }

    /// `νZ.Φ`.
    pub fn gfp(z: &str, body: Mu) -> Mu {
        Mu::Gfp(PredVar::new(z), Box::new(body))
    }

    /// Free individual variables (FO variables not bound by ∃/∀; query
    /// leaves contribute their free variables).
    pub fn free_vars(&self) -> BTreeSet<Var> {
        let mut out = BTreeSet::new();
        self.free_vars_rec(&mut BTreeSet::new(), &mut out);
        out
    }

    fn free_vars_rec(&self, bound: &mut BTreeSet<Var>, out: &mut BTreeSet<Var>) {
        match self {
            Mu::Query(f) => {
                for v in f.free_vars() {
                    if !bound.contains(&v) {
                        out.insert(v);
                    }
                }
            }
            Mu::Live(t) => {
                if let QTerm::Var(v) = t {
                    if !bound.contains(v) {
                        out.insert(v.clone());
                    }
                }
            }
            Mu::Not(f) | Mu::Diamond(f) | Mu::Box_(f) | Mu::Lfp(_, f) | Mu::Gfp(_, f) => {
                f.free_vars_rec(bound, out)
            }
            Mu::And(f, g) | Mu::Or(f, g) | Mu::Implies(f, g) => {
                f.free_vars_rec(bound, out);
                g.free_vars_rec(bound, out);
            }
            Mu::Exists(v, f) | Mu::Forall(v, f) => {
                let fresh = bound.insert(v.clone());
                f.free_vars_rec(bound, out);
                if fresh {
                    bound.remove(v);
                }
            }
            Mu::Pvar(_) => {}
        }
    }

    /// Free predicate variables.
    pub fn free_pred_vars(&self) -> BTreeSet<PredVar> {
        let mut out = BTreeSet::new();
        self.free_pred_vars_rec(&mut BTreeSet::new(), &mut out);
        out
    }

    fn free_pred_vars_rec(&self, bound: &mut BTreeSet<PredVar>, out: &mut BTreeSet<PredVar>) {
        match self {
            Mu::Query(_) | Mu::Live(_) => {}
            Mu::Pvar(z) => {
                if !bound.contains(z) {
                    out.insert(z.clone());
                }
            }
            Mu::Not(f) | Mu::Diamond(f) | Mu::Box_(f) => f.free_pred_vars_rec(bound, out),
            Mu::And(f, g) | Mu::Or(f, g) | Mu::Implies(f, g) => {
                f.free_pred_vars_rec(bound, out);
                g.free_pred_vars_rec(bound, out);
            }
            Mu::Exists(_, f) | Mu::Forall(_, f) => f.free_pred_vars_rec(bound, out),
            Mu::Lfp(z, f) | Mu::Gfp(z, f) => {
                let fresh = bound.insert(z.clone());
                f.free_pred_vars_rec(bound, out);
                if fresh {
                    bound.remove(z);
                }
            }
        }
    }

    /// True when the formula is closed (no free individual or predicate
    /// variables).
    pub fn is_closed(&self) -> bool {
        self.free_vars().is_empty() && self.free_pred_vars().is_empty()
    }

    /// Substitute a ground value for a free individual variable (used by
    /// `PROP`).
    pub fn substitute_var(&self, var: &Var, value: dcds_reldata::Value) -> Mu {
        match self {
            Mu::Query(f) => {
                let mut asg = dcds_folang::Assignment::new();
                asg.insert(var.clone(), value);
                Mu::Query(f.apply(&asg))
            }
            Mu::Live(t) => match t {
                QTerm::Var(v) if v == var => Mu::Live(QTerm::Const(value)),
                _ => self.clone(),
            },
            Mu::Not(f) => Mu::Not(Box::new(f.substitute_var(var, value))),
            Mu::And(f, g) => Mu::And(
                Box::new(f.substitute_var(var, value)),
                Box::new(g.substitute_var(var, value)),
            ),
            Mu::Or(f, g) => Mu::Or(
                Box::new(f.substitute_var(var, value)),
                Box::new(g.substitute_var(var, value)),
            ),
            Mu::Implies(f, g) => Mu::Implies(
                Box::new(f.substitute_var(var, value)),
                Box::new(g.substitute_var(var, value)),
            ),
            Mu::Exists(v, f) => {
                if v == var {
                    self.clone()
                } else {
                    Mu::Exists(v.clone(), Box::new(f.substitute_var(var, value)))
                }
            }
            Mu::Forall(v, f) => {
                if v == var {
                    self.clone()
                } else {
                    Mu::Forall(v.clone(), Box::new(f.substitute_var(var, value)))
                }
            }
            Mu::Diamond(f) => Mu::Diamond(Box::new(f.substitute_var(var, value))),
            Mu::Box_(f) => Mu::Box_(Box::new(f.substitute_var(var, value))),
            Mu::Pvar(_) => self.clone(),
            Mu::Lfp(z, f) => Mu::Lfp(z.clone(), Box::new(f.substitute_var(var, value))),
            Mu::Gfp(z, f) => Mu::Gfp(z.clone(), Box::new(f.substitute_var(var, value))),
        }
    }

    /// Size (number of AST nodes), counting query leaves as their own size.
    pub fn size(&self) -> usize {
        match self {
            Mu::Query(f) => f.size(),
            Mu::Live(_) | Mu::Pvar(_) => 1,
            Mu::Not(f)
            | Mu::Diamond(f)
            | Mu::Box_(f)
            | Mu::Exists(_, f)
            | Mu::Forall(_, f)
            | Mu::Lfp(_, f)
            | Mu::Gfp(_, f) => 1 + f.size(),
            Mu::And(f, g) | Mu::Or(f, g) | Mu::Implies(f, g) => 1 + f.size() + g.size(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcds_folang::QTerm;
    use dcds_reldata::Schema;

    fn atom(schema: &Schema, rel: &str, var: &str) -> Mu {
        Mu::Query(Formula::Atom(
            schema.rel_id(rel).unwrap(),
            vec![QTerm::var(var)],
        ))
    }

    fn schema() -> Schema {
        let mut s = Schema::new();
        s.add_relation("Stud", 1).unwrap();
        s
    }

    #[test]
    fn free_vars_through_modalities() {
        let s = schema();
        // exists X . live(X) & <> Stud(X): closed.
        let f = Mu::exists("X", Mu::live("X").and(atom(&s, "Stud", "X").diamond()));
        assert!(f.free_vars().is_empty());
        // live(X) & <> Stud(Y): X, Y free.
        let g = Mu::live("X").and(atom(&s, "Stud", "Y").diamond());
        assert_eq!(g.free_vars().len(), 2);
    }

    #[test]
    fn pred_vars_bound_by_fixpoints() {
        let s = schema();
        let f = Mu::lfp(
            "Z",
            atom(&s, "Stud", "X").or(Mu::Pvar(PredVar::new("Z")).diamond()),
        );
        assert!(f.free_pred_vars().is_empty());
        let g = Mu::Pvar(PredVar::new("Z")).diamond();
        assert_eq!(g.free_pred_vars().len(), 1);
    }

    #[test]
    fn substitution_grounds_queries() {
        let s = schema();
        let mut pool = dcds_reldata::ConstantPool::new();
        let a = pool.intern("a");
        let f = atom(&s, "Stud", "X").diamond();
        let g = f.substitute_var(&Var::new("X"), a);
        assert!(g.free_vars().is_empty());
    }

    #[test]
    fn live_all_builds_conjunction() {
        let f = Mu::live_all([Var::new("X"), Var::new("Y")]);
        assert_eq!(f.free_vars().len(), 2);
        assert_eq!(Mu::live_all([]), Mu::Query(Formula::True));
    }
}
