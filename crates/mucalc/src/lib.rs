//! # dcds-mucalc
//!
//! First-order µ-calculus verification logics over data-centric dynamic
//! systems (Section 3 of the paper):
//!
//! * **µL** — first-order µ-calculus with unrestricted quantification
//!   across states ([`ast`]);
//! * **µLA** — the *history-preserving* fragment: quantification guarded by
//!   `LIVE(x)` (Section 3.1);
//! * **µLP** — the *persistence-preserving* fragment: modal operators
//!   additionally guard the free variables with `LIVE(~x)` (Section 3.2).
//!
//! Fragment membership and the syntactic monotonicity of fixpoints are
//! checked by [`fragments`]. Model checking over explicit finite transition
//! systems (concrete prefixes or the finite abstractions of Theorems 4.3 /
//! 5.4) is provided three ways:
//!
//! * [`engine`] — the production path: a staged evaluator with a
//!   query-extension cache and parallel per-state query evaluation
//!   ([`engine::check_with_opts`] exposes thread control and
//!   [`engine::McCounters`] observability);
//! * [`mc`] — a naive direct evaluator of the extension function of
//!   Figure 1, kept as the differential-testing oracle;
//! * [`prop`] + [`prop_mc`] — the `PROP(Φ)` propositionalisation of Theorem
//!   4.4 followed by conventional propositional µ-calculus model checking.
//!
//! The three are cross-validated by property tests. [`sugar`] offers CTL-style
//! combinators (`AG`, `EF`, `AF`, `EU`, ...) compiled into µ-calculus, and
//! [`parser`] a surface syntax (`mu Z . ...`, `<> phi`, `[] phi`,
//! `live(X)`). [`safety`] recognises the AG/EF safety fragment and compiles
//! it to the reachability question answered by the symbolic backward engine.

pub mod ast;
pub mod diagnostics;
pub mod engine;
pub mod fragments;
pub mod mc;
pub mod parser;
pub mod pretty;
pub mod prop;
pub mod prop_mc;
pub mod safety;
pub mod sugar;

pub use ast::{Mu, PredVar};
pub use diagnostics::{counterexample_ag, witness_ef};
pub use engine::{
    check_traced, check_with_opts, eval_traced, eval_with_opts, CheckError, McCounters, McOptions,
    McRun,
};
pub use fragments::{classify, Fragment, FragmentError};
pub use mc::{check, eval, Valuation};
pub use parser::parse_mu;
pub use pretty::MuDisplay;
pub use prop::{propositionalize, PropMu};
pub use prop_mc::check_prop;
pub use safety::{extract_safety, SafetyError, SafetyMode, SafetyProperty};
