//! Fragment classification: µL ⊃ µLA ⊃ µLP.
//!
//! * **µLA** (Section 3.1): first-order quantification must be guarded —
//!   `∃x.LIVE(x) ∧ Φ` and `∀x.LIVE(x) → Φ`.
//! * **µLP** (Section 3.2): additionally, every modal operator guards the
//!   free variables of its body — `⟨−⟩(LIVE(~x) ∧ Φ)`,
//!   `[−](LIVE(~x) ∧ Φ)`, or the dual abbreviations
//!   `⟨−⟩(LIVE(~x) → Φ)`, `[−](LIVE(~x) → Φ)` — where `~x` is *exactly*
//!   the set of free variables of Φ, after substituting each bound
//!   predicate variable by its bounding fixpoint formula.
//! * All fragments require **syntactic monotonicity**: a bound predicate
//!   variable occurs only under an even number of negations (with `φ → ψ`
//!   counting as a negation of φ).

use crate::ast::{Mu, PredVar};
use dcds_folang::{QTerm, Var};
use std::collections::{BTreeMap, BTreeSet};

/// The fragment a formula belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Fragment {
    /// Persistence-preserving µ-calculus (⊂ µLA).
    MuLP,
    /// History-preserving µ-calculus (⊂ µL).
    MuLA,
    /// Unrestricted first-order µ-calculus.
    MuL,
}

/// Why a formula fails a fragment/monotonicity check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FragmentError {
    /// A fixpoint variable occurs under an odd number of negations.
    NonMonotone(String),
    /// A fixpoint rebinds a predicate variable already in scope (we require
    /// unique binder names to keep substitution simple).
    RebindsPredVar(String),
}

impl std::fmt::Display for FragmentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FragmentError::NonMonotone(z) => {
                write!(
                    f,
                    "predicate variable {z} occurs under an odd number of negations"
                )
            }
            FragmentError::RebindsPredVar(z) => {
                write!(f, "predicate variable {z} is bound twice")
            }
        }
    }
}

impl std::error::Error for FragmentError {}

/// Check syntactic monotonicity (and binder uniqueness); then classify the
/// formula into the smallest fragment it belongs to.
pub fn classify(f: &Mu) -> Result<Fragment, FragmentError> {
    check_monotone(f, &mut BTreeMap::new(), true)?;
    let mut binders = BTreeSet::new();
    check_unique_binders(f, &mut binders)?;
    let mut env: BTreeMap<PredVar, Mu> = BTreeMap::new();
    if is_mu_lp(f, &mut env) {
        return Ok(Fragment::MuLP);
    }
    if is_mu_la(f) {
        return Ok(Fragment::MuLA);
    }
    Ok(Fragment::MuL)
}

/// Is the formula syntactically monotone in all its bound predicate
/// variables?
pub fn check_monotone(
    f: &Mu,
    polarity: &mut BTreeMap<PredVar, bool>,
    positive: bool,
) -> Result<(), FragmentError> {
    match f {
        Mu::Query(_) | Mu::Live(_) => Ok(()),
        Mu::Pvar(z) => {
            if let Some(&required) = polarity.get(z) {
                if required != positive {
                    return Err(FragmentError::NonMonotone(z.name().to_owned()));
                }
            }
            Ok(())
        }
        Mu::Not(g) => check_monotone(g, polarity, !positive),
        Mu::And(g, h) | Mu::Or(g, h) => {
            check_monotone(g, polarity, positive)?;
            check_monotone(h, polarity, positive)
        }
        Mu::Implies(g, h) => {
            check_monotone(g, polarity, !positive)?;
            check_monotone(h, polarity, positive)
        }
        Mu::Exists(_, g) | Mu::Forall(_, g) | Mu::Diamond(g) | Mu::Box_(g) => {
            check_monotone(g, polarity, positive)
        }
        Mu::Lfp(z, g) | Mu::Gfp(z, g) => {
            let prev = polarity.insert(z.clone(), positive);
            check_monotone(g, polarity, positive)?;
            match prev {
                Some(p) => {
                    polarity.insert(z.clone(), p);
                }
                None => {
                    polarity.remove(z);
                }
            }
            Ok(())
        }
    }
}

fn check_unique_binders(f: &Mu, seen: &mut BTreeSet<PredVar>) -> Result<(), FragmentError> {
    match f {
        Mu::Query(_) | Mu::Live(_) | Mu::Pvar(_) => Ok(()),
        Mu::Not(g) | Mu::Exists(_, g) | Mu::Forall(_, g) | Mu::Diamond(g) | Mu::Box_(g) => {
            check_unique_binders(g, seen)
        }
        Mu::And(g, h) | Mu::Or(g, h) | Mu::Implies(g, h) => {
            check_unique_binders(g, seen)?;
            check_unique_binders(h, seen)
        }
        Mu::Lfp(z, g) | Mu::Gfp(z, g) => {
            if !seen.insert(z.clone()) {
                return Err(FragmentError::RebindsPredVar(z.name().to_owned()));
            }
            check_unique_binders(g, seen)
        }
    }
}

/// µLA shape: quantifiers are LIVE-guarded.
///
/// Conjunctions are matched modulo flattening: `∃x. LIVE(x) ∧ φ₁ ∧ φ₂`
/// counts as guarded regardless of associativity, as does
/// `∀x. LIVE(x) → φ`.
pub fn is_mu_la(f: &Mu) -> bool {
    match f {
        Mu::Query(_) | Mu::Live(_) | Mu::Pvar(_) => true,
        Mu::Not(g) | Mu::Diamond(g) | Mu::Box_(g) | Mu::Lfp(_, g) | Mu::Gfp(_, g) => is_mu_la(g),
        Mu::And(g, h) | Mu::Or(g, h) | Mu::Implies(g, h) => is_mu_la(g) && is_mu_la(h),
        Mu::Exists(v, g) => {
            let leaves = flatten_and(g);
            leaves.iter().any(|l| is_live_of(l, v)) && leaves.iter().all(|l| is_mu_la(l))
        }
        Mu::Forall(v, g) => match &**g {
            Mu::Implies(lhs, rhs) => {
                flatten_and(lhs).iter().any(|l| is_live_of(l, v)) && is_mu_la(lhs) && is_mu_la(rhs)
            }
            _ => false,
        },
    }
}

/// Flatten a conjunction into its leaves.
fn flatten_and(f: &Mu) -> Vec<&Mu> {
    match f {
        Mu::And(g, h) => {
            let mut out = flatten_and(g);
            out.extend(flatten_and(h));
            out
        }
        other => vec![other],
    }
}

fn is_live_of(f: &Mu, v: &Var) -> bool {
    matches!(f, Mu::Live(QTerm::Var(w)) if w == v)
}

/// µLP shape: µLA plus LIVE(~x)-guarded modalities, where ~x is exactly the
/// set of free variables of the body (with bound predicate variables
/// substituted by their bounding formula, per the paper's proviso).
pub fn is_mu_lp(f: &Mu, env: &mut BTreeMap<PredVar, Mu>) -> bool {
    match f {
        Mu::Query(_) | Mu::Live(_) | Mu::Pvar(_) => true,
        Mu::Not(g) => is_mu_lp(g, env),
        Mu::And(g, h) | Mu::Or(g, h) | Mu::Implies(g, h) => is_mu_lp(g, env) && is_mu_lp(h, env),
        Mu::Exists(v, g) => {
            let leaves = flatten_and(g);
            leaves.iter().any(|l| is_live_of(l, v)) && leaves.iter().all(|l| is_mu_lp(l, env))
        }
        Mu::Forall(v, g) => match &**g {
            Mu::Implies(lhs, rhs) => {
                flatten_and(lhs).iter().any(|l| is_live_of(l, v))
                    && is_mu_lp(lhs, env)
                    && is_mu_lp(rhs, env)
            }
            _ => false,
        },
        Mu::Diamond(g) | Mu::Box_(g) => {
            // Body must be LIVE(~x) ∧ Φ or LIVE(~x) → Φ with ~x exactly the
            // expanded free variables of Φ. Conjunctions are matched modulo
            // flattening: the LIVE leaves form the guard, the rest form Φ.
            match &**g {
                Mu::Implies(lhs, rhs) => {
                    let Some(guard_vars) = live_conjunction_vars(lhs) else {
                        return false;
                    };
                    guard_vars == expanded_free_vars(rhs, env) && is_mu_lp(rhs, env)
                }
                other => {
                    let leaves = flatten_and(other);
                    let mut guard_vars = BTreeSet::new();
                    let mut body_leaves = Vec::new();
                    for l in leaves {
                        match l {
                            Mu::Live(QTerm::Var(v)) => {
                                guard_vars.insert(v.clone());
                            }
                            _ => body_leaves.push(l),
                        }
                    }
                    let mut free = BTreeSet::new();
                    for l in &body_leaves {
                        free.extend(expanded_free_vars(l, env));
                    }
                    // Guarded LIVE leaves may also appear in Φ; what matters
                    // is that every free variable of Φ is guarded and no
                    // extraneous variable is.
                    free.is_subset(&guard_vars)
                        && guard_vars
                            .iter()
                            .all(|v| free.contains(v) || body_leaves.is_empty())
                        && body_leaves.iter().all(|l| is_mu_lp(l, env))
                }
            }
        }
        Mu::Lfp(z, g) | Mu::Gfp(z, g) => {
            env.insert(z.clone(), f.clone());
            let ok = is_mu_lp(g, env);
            env.remove(z);
            ok
        }
    }
}

/// If `f` is a conjunction of LIVE(x) leaves, return the variable set.
fn live_conjunction_vars(f: &Mu) -> Option<BTreeSet<Var>> {
    match f {
        Mu::Live(QTerm::Var(v)) => Some([v.clone()].into_iter().collect()),
        Mu::And(g, h) => {
            let mut out = live_conjunction_vars(g)?;
            out.extend(live_conjunction_vars(h)?);
            Some(out)
        }
        _ => None,
    }
}

/// Free individual variables of `f`, substituting bound predicate variables
/// by their bounding fixpoint formulas (the µLP proviso). `env` maps each
/// in-scope predicate variable to its binder.
pub fn expanded_free_vars(f: &Mu, env: &BTreeMap<PredVar, Mu>) -> BTreeSet<Var> {
    match f {
        Mu::Pvar(z) => match env.get(z) {
            // The binder's free variables are the variables the recursion
            // "carries" through Z.
            Some(binder) => binder.free_vars(),
            None => BTreeSet::new(),
        },
        Mu::Query(_) | Mu::Live(_) => f.free_vars(),
        Mu::Not(g) | Mu::Diamond(g) | Mu::Box_(g) => expanded_free_vars(g, env),
        Mu::And(g, h) | Mu::Or(g, h) | Mu::Implies(g, h) => {
            let mut out = expanded_free_vars(g, env);
            out.extend(expanded_free_vars(h, env));
            out
        }
        Mu::Exists(v, g) | Mu::Forall(v, g) => {
            let mut out = expanded_free_vars(g, env);
            out.remove(v);
            out
        }
        Mu::Lfp(_, g) | Mu::Gfp(_, g) => expanded_free_vars(g, env),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcds_folang::Formula;
    use dcds_reldata::Schema;

    fn schema() -> Schema {
        let mut s = Schema::new();
        s.add_relation("Stud", 1).unwrap();
        s.add_relation("Grad", 2).unwrap();
        s
    }

    fn atom1(s: &Schema, rel: &str, v: &str) -> Mu {
        Mu::Query(Formula::Atom(s.rel_id(rel).unwrap(), vec![QTerm::var(v)]))
    }

    fn atom2(s: &Schema, rel: &str, v: &str, w: &str) -> Mu {
        Mu::Query(Formula::Atom(
            s.rel_id(rel).unwrap(),
            vec![QTerm::var(v), QTerm::var(w)],
        ))
    }

    /// The µLA formula of Example 3.2.
    fn example_3_2(s: &Schema) -> Mu {
        Mu::gfp(
            "X",
            Mu::forall(
                "V",
                Mu::live("V").implies(
                    atom1(s, "Stud", "V").implies(Mu::lfp(
                        "Y",
                        Mu::exists("W", Mu::live("W").and(atom2(s, "Grad", "V", "W")))
                            .or(Mu::Pvar(PredVar::new("Y")).diamond()),
                    )),
                ),
            )
            .and(Mu::Pvar(PredVar::new("X")).boxed()),
        )
    }

    /// The µLP variant of Example 3.3 (first formula).
    fn example_3_3(s: &Schema) -> Mu {
        Mu::gfp(
            "X",
            Mu::forall(
                "V",
                Mu::live("V").implies(atom1(s, "Stud", "V").implies(Mu::lfp(
                    "Y",
                    Mu::exists("W", Mu::live("W").and(atom2(s, "Grad", "V", "W"))).or(Mu::Diamond(
                        Box::new(Mu::live("V").and(Mu::Pvar(PredVar::new("Y")))),
                    )),
                ))),
            )
            .and(Mu::Pvar(PredVar::new("X")).boxed()),
        )
    }

    #[test]
    fn example_3_2_is_mu_la_not_mu_lp() {
        let s = schema();
        let f = example_3_2(&s);
        // The inner ⟨−⟩Y is unguarded while Y carries the free variable V:
        // µLA but not µLP.
        assert_eq!(classify(&f).unwrap(), Fragment::MuLA);
    }

    #[test]
    fn example_3_3_is_mu_lp() {
        let s = schema();
        let f = example_3_3(&s);
        assert_eq!(classify(&f).unwrap(), Fragment::MuLP);
    }

    #[test]
    fn unguarded_quantifier_is_full_mu_l() {
        let s = schema();
        // ∃X. Stud(X) without LIVE guard — formula (1)'s style.
        let f = Mu::exists("V", atom1(&s, "Stud", "V"));
        assert_eq!(classify(&f).unwrap(), Fragment::MuL);
    }

    #[test]
    fn nonmonotone_rejected() {
        let s = schema();
        let f = Mu::lfp(
            "Z",
            Mu::Pvar(PredVar::new("Z")).not().or(atom1(&s, "Stud", "V")),
        );
        assert!(matches!(classify(&f), Err(FragmentError::NonMonotone(_))));
    }

    #[test]
    fn negation_of_negation_is_monotone() {
        let s = schema();
        let f = Mu::lfp(
            "Z",
            Mu::Pvar(PredVar::new("Z"))
                .not()
                .not()
                .or(atom1(&s, "Stud", "V")),
        );
        assert!(classify(&f).is_ok());
    }

    #[test]
    fn implication_lhs_counts_as_negation() {
        let f = Mu::lfp(
            "Z",
            Mu::Pvar(PredVar::new("Z")).implies(Mu::Query(Formula::True)),
        );
        assert!(matches!(classify(&f), Err(FragmentError::NonMonotone(_))));
    }

    #[test]
    fn duplicate_binders_rejected() {
        let f = Mu::lfp("Z", Mu::lfp("Z", Mu::Pvar(PredVar::new("Z"))));
        assert!(matches!(
            classify(&f),
            Err(FragmentError::RebindsPredVar(_))
        ));
    }

    #[test]
    fn closed_diamond_body_is_mu_lp() {
        let s = schema();
        // AG-style safety: νX. (¬∃x.live(x)∧Stud(x)) ∧ [−]X — bodies carry
        // no free variables, so the unguarded box is fine for µLP.
        let f = Mu::gfp(
            "X",
            Mu::exists("V", Mu::live("V").and(atom1(&s, "Stud", "V")))
                .not()
                .and(Mu::Pvar(PredVar::new("X")).boxed()),
        );
        assert_eq!(classify(&f).unwrap(), Fragment::MuLP);
    }
}
