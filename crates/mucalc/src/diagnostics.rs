//! Diagnostics: witness and counterexample paths for the common property
//! shapes.
//!
//! The naive fixpoint checker computes extension *sets*; for the two most
//! common verification idioms it is easy (and very useful) to also produce
//! a path a human can read:
//!
//! * a **counterexample to `AG φ`**: a shortest path from the initial
//!   state to a ¬φ-state;
//! * a **witness for `EF φ`**: a shortest path from the initial state to a
//!   φ-state.
//!
//! Both work on any state-set produced by [`crate::mc::eval`], so callers
//! can diagnose arbitrary formulas by evaluating the relevant subformula.

use crate::ast::Mu;
use crate::mc::{eval, Valuation};
use dcds_core::{StateId, Ts};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Shortest path (as state ids, starting at the initial state) to any state
/// in `targets`; `None` when unreachable.
pub fn shortest_path_to(ts: &Ts, targets: &BTreeSet<StateId>) -> Option<Vec<StateId>> {
    let mut pred: BTreeMap<StateId, StateId> = BTreeMap::new();
    let mut seen: BTreeSet<StateId> = BTreeSet::new();
    let mut queue = VecDeque::new();
    seen.insert(ts.initial());
    queue.push_back(ts.initial());
    let mut goal = None;
    if targets.contains(&ts.initial()) {
        goal = Some(ts.initial());
    }
    while goal.is_none() {
        let s = queue.pop_front()?;
        for &t in ts.successors(s) {
            if seen.insert(t) {
                pred.insert(t, s);
                if targets.contains(&t) {
                    goal = Some(t);
                    break;
                }
                queue.push_back(t);
            }
        }
    }
    let mut path = vec![goal.unwrap()];
    while let Some(&p) = pred.get(path.last().unwrap()) {
        path.push(p);
    }
    path.reverse();
    Some(path)
}

/// A shortest counterexample to `AG φ`: a path to a state violating φ.
/// `None` means `AG φ` holds.
pub fn counterexample_ag(phi: &Mu, ts: &Ts) -> Option<Vec<StateId>> {
    let sat = eval(phi, ts, &mut Valuation::default());
    let violating: BTreeSet<StateId> = ts.state_ids().filter(|s| !sat.contains(s)).collect();
    shortest_path_to(ts, &violating)
}

/// A shortest witness for `EF φ`: a path to a state satisfying φ.
/// `None` means `EF φ` fails.
pub fn witness_ef(phi: &Mu, ts: &Ts) -> Option<Vec<StateId>> {
    let sat = eval(phi, ts, &mut Valuation::default());
    shortest_path_to(ts, &sat)
}

/// Render a path with the state databases, for reports.
pub fn render_path(
    path: &[StateId],
    ts: &Ts,
    schema: &dcds_reldata::Schema,
    pool: &dcds_reldata::ConstantPool,
) -> String {
    let mut out = String::new();
    for (i, s) in path.iter().enumerate() {
        if i > 0 {
            out.push_str("  ->  ");
        }
        out.push_str(&format!(
            "s{}:{{{}}}",
            s.index(),
            dcds_reldata::InstanceDisplay::new(ts.db(*s), schema, pool)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcds_folang::{Formula, QTerm};
    use dcds_reldata::{ConstantPool, Instance, Schema, Tuple};

    /// s0 -> s1 -> s2; P holds in s0, s1 only.
    fn sample() -> (Schema, ConstantPool, Ts) {
        let mut schema = Schema::new();
        let p = schema.add_relation("P", 1).unwrap();
        let mut pool = ConstantPool::new();
        let a = pool.intern("a");
        let pa = Instance::from_facts([(p, Tuple::from([a]))]);
        let mut ts = Ts::new(pa.clone());
        let s1 = ts.add_state(pa);
        let s2 = ts.add_state(Instance::new());
        ts.add_edge(ts.initial(), s1);
        ts.add_edge(s1, s2);
        ts.add_edge(s2, s2);
        (schema, pool, ts)
    }

    fn p_nonempty(schema: &Schema) -> Mu {
        Mu::exists(
            "X",
            Mu::live("X").and(Mu::Query(Formula::Atom(
                schema.rel_id("P").unwrap(),
                vec![QTerm::var("X")],
            ))),
        )
    }

    #[test]
    fn ag_counterexample_is_shortest() {
        let (schema, _, ts) = sample();
        let path = counterexample_ag(&p_nonempty(&schema), &ts).expect("AG fails");
        assert_eq!(path.len(), 3); // s0 s1 s2
        assert_eq!(path[0], ts.initial());
    }

    #[test]
    fn ef_witness_found_or_not() {
        let (schema, _, ts) = sample();
        // EF (P empty): witness = path to s2.
        let empty = p_nonempty(&schema).not();
        let w = witness_ef(&empty, &ts).expect("reachable");
        assert_eq!(w.len(), 3);
        // EF false: no witness.
        assert!(witness_ef(&Mu::Query(Formula::False), &ts).is_none());
    }

    #[test]
    fn holding_ag_has_no_counterexample() {
        let (_, _, ts) = sample();
        assert!(counterexample_ag(&Mu::Query(Formula::True), &ts).is_none());
    }

    #[test]
    fn render_path_is_readable() {
        let (schema, pool, ts) = sample();
        let path = counterexample_ag(&p_nonempty(&schema), &ts).unwrap();
        let rendered = render_path(&path, &ts, &schema, &pool);
        assert!(rendered.contains("s0:{P(a)}"));
        assert!(rendered.contains("s2:{{}}") || rendered.contains("s2:{}"));
    }
}
