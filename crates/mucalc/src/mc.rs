//! Direct model checking of µL formulas over explicit finite transition
//! systems: the extension function of Figure 1, computed by naive (Kleene)
//! fixpoint iteration.
//!
//! [`eval`] is deliberately kept naive — no memoization, no parallelism —
//! because it is the **differential-testing oracle** for the staged engine
//! in [`crate::engine`]: every optimisation over there is validated by
//! agreement with the straight-line transcription of Figure 1 over here.
//! [`check`] itself delegates to the staged engine.
//!
//! First-order quantification is evaluated over `ADOM(Θ)` — the union of
//! all state active domains (plus the values already in the valuation).
//! For µLA/µLP formulas this is *exact*: their quantifiers are LIVE-guarded,
//! so witnesses outside `ADOM(Θ)` can never matter (this is precisely the
//! observation behind `PROP(Φ)`, Theorem 4.4). For unrestricted µL it is
//! the active-domain reading of quantification, which is the right notion
//! on a finite materialised system (the paper's Theorem 4.5 shows genuine
//! µL has no faithful finite abstraction at all).

use crate::ast::{Mu, PredVar};
use dcds_core::{StateId, Ts};
use dcds_folang::{holds, Assignment, QTerm, Var};
use dcds_reldata::Value;
use std::collections::{BTreeMap, BTreeSet};

/// Individual + predicate variable valuations.
#[derive(Debug, Clone, Default)]
pub struct Valuation {
    /// Individual variables to values.
    pub individuals: BTreeMap<Var, Value>,
    /// Predicate variables to state sets.
    pub predicates: BTreeMap<PredVar, BTreeSet<StateId>>,
}

/// The extension `(Φ)ᵥ` of a formula: the set of states satisfying it.
pub fn eval(f: &Mu, ts: &Ts, val: &mut Valuation) -> BTreeSet<StateId> {
    let all: BTreeSet<StateId> = ts.state_ids().collect();
    let domain: BTreeSet<Value> = {
        let mut d = ts.adom_union();
        d.extend(val.individuals.values().copied());
        d
    };
    eval_rec(f, ts, val, &all, &domain)
}

fn eval_rec(
    f: &Mu,
    ts: &Ts,
    val: &mut Valuation,
    all: &BTreeSet<StateId>,
    domain: &BTreeSet<Value>,
) -> BTreeSet<StateId> {
    match f {
        Mu::Query(q) => {
            let free = q.free_vars();
            let mut asg = Assignment::new();
            for v in &free {
                match val.individuals.get(v) {
                    Some(&d) => {
                        asg.insert(v.clone(), d);
                    }
                    None => {
                        // An unassigned free variable cannot be satisfied.
                        return BTreeSet::new();
                    }
                }
            }
            ts.state_ids()
                .filter(|s| holds(q, ts.db(*s), &asg).unwrap_or(false))
                .collect()
        }
        Mu::Live(t) => {
            let d = match t {
                QTerm::Const(c) => Some(*c),
                QTerm::Var(v) => val.individuals.get(v).copied(),
            };
            match d {
                // Per Section 3.1: if x is unassigned, LIVE(x) imposes no
                // requirement ("x/d ∈ v implies d ∈ ADOM").
                None => all.clone(),
                Some(d) => ts
                    .state_ids()
                    .filter(|s| ts.db(*s).active_domain().contains(&d))
                    .collect(),
            }
        }
        Mu::Not(g) => all - &eval_rec(g, ts, val, all, domain),
        Mu::And(g, h) => &eval_rec(g, ts, val, all, domain) & &eval_rec(h, ts, val, all, domain),
        Mu::Or(g, h) => &eval_rec(g, ts, val, all, domain) | &eval_rec(h, ts, val, all, domain),
        Mu::Implies(g, h) => {
            let ng = all - &eval_rec(g, ts, val, all, domain);
            &ng | &eval_rec(h, ts, val, all, domain)
        }
        Mu::Exists(v, g) => {
            let mut out = BTreeSet::new();
            let saved = val.individuals.get(v).copied();
            for &d in domain {
                val.individuals.insert(v.clone(), d);
                out.extend(eval_rec(g, ts, val, all, domain));
                if out.len() == all.len() {
                    break;
                }
            }
            restore(val, v, saved);
            out
        }
        Mu::Forall(v, g) => {
            let mut out = all.clone();
            let saved = val.individuals.get(v).copied();
            for &d in domain {
                val.individuals.insert(v.clone(), d);
                out = &out & &eval_rec(g, ts, val, all, domain);
                if out.is_empty() {
                    break;
                }
            }
            restore(val, v, saved);
            out
        }
        Mu::Diamond(g) => {
            let target = eval_rec(g, ts, val, all, domain);
            ts.state_ids()
                .filter(|s| ts.successors(*s).iter().any(|t| target.contains(t)))
                .collect()
        }
        Mu::Box_(g) => {
            let target = eval_rec(g, ts, val, all, domain);
            ts.state_ids()
                .filter(|s| ts.successors(*s).iter().all(|t| target.contains(t)))
                .collect()
        }
        Mu::Pvar(z) => val.predicates.get(z).cloned().unwrap_or_default(),
        Mu::Lfp(z, g) => {
            let saved = val.predicates.insert(z.clone(), BTreeSet::new());
            let mut current = BTreeSet::new();
            loop {
                val.predicates.insert(z.clone(), current.clone());
                let next = eval_rec(g, ts, val, all, domain);
                if next == current {
                    break;
                }
                current = next;
            }
            restore_pred(val, z, saved);
            current
        }
        Mu::Gfp(z, g) => {
            let saved = val.predicates.insert(z.clone(), all.clone());
            let mut current = all.clone();
            loop {
                val.predicates.insert(z.clone(), current.clone());
                let next = eval_rec(g, ts, val, all, domain);
                if next == current {
                    break;
                }
                current = next;
            }
            restore_pred(val, z, saved);
            current
        }
    }
}

fn restore(val: &mut Valuation, v: &Var, saved: Option<Value>) {
    match saved {
        Some(d) => {
            val.individuals.insert(v.clone(), d);
        }
        None => {
            val.individuals.remove(v);
        }
    }
}

fn restore_pred(val: &mut Valuation, z: &PredVar, saved: Option<BTreeSet<StateId>>) {
    match saved {
        Some(s) => {
            val.predicates.insert(z.clone(), s);
        }
        None => {
            val.predicates.remove(z);
        }
    }
}

/// Model checking: does the closed formula hold in the initial state?
///
/// Rejects non-closed formulas (free individual *or* predicate variables)
/// with a named-variable [`crate::engine::CheckError`] — an open formula silently
/// evaluates to a wrong verdict (e.g. a free-variable atom under `Not`
/// becomes "all states"), so it must never reach the fixpoint engine.
/// Evaluation itself runs on the staged engine of [`crate::engine`]; use
/// [`crate::engine::check_with_opts`] for thread control and counters.
pub fn check(f: &Mu, ts: &Ts) -> Result<bool, crate::engine::CheckError> {
    crate::engine::check_with_opts(f, ts, crate::engine::McOptions::default()).map(|run| run.holds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sugar;
    use dcds_folang::Formula;
    use dcds_reldata::{ConstantPool, Instance, Schema, Tuple};

    /// A 3-state system: s0 --> s1 --> s2, s2 self-loop.
    /// s0: Stud(a); s1: Stud(a), Stud(b); s2: Grad(a, m).
    fn sample() -> (Schema, ConstantPool, Ts) {
        let mut schema = Schema::new();
        let stud = schema.add_relation("Stud", 1).unwrap();
        let grad = schema.add_relation("Grad", 2).unwrap();
        let mut pool = ConstantPool::new();
        let a = pool.intern("a");
        let b = pool.intern("b");
        let m = pool.intern("m");
        let s0 = Instance::from_facts([(stud, Tuple::from([a]))]);
        let s1 = Instance::from_facts([(stud, Tuple::from([a])), (stud, Tuple::from([b]))]);
        let s2 = Instance::from_facts([(grad, Tuple::from([a, m]))]);
        let mut ts = Ts::new(s0);
        let i1 = ts.add_state(s1);
        let i2 = ts.add_state(s2);
        ts.add_edge(ts.initial(), i1);
        ts.add_edge(i1, i2);
        ts.add_edge(i2, i2);
        (schema, pool, ts)
    }

    fn stud(s: &Schema, v: &str) -> Mu {
        Mu::Query(Formula::Atom(
            s.rel_id("Stud").unwrap(),
            vec![QTerm::var(v)],
        ))
    }

    #[test]
    fn query_and_modalities() {
        let (schema, _, ts) = sample();
        // ∃x.LIVE(x) ∧ Stud(x) holds in s0 and s1.
        let f = Mu::exists("X", Mu::live("X").and(stud(&schema, "X")));
        let ext = eval(&f, &ts, &mut Valuation::default());
        assert_eq!(ext.len(), 2);
        // ⟨−⟩ of it holds in s0 only.
        let g = Mu::exists("X", Mu::live("X").and(stud(&schema, "X"))).diamond();
        assert!(check(&g, &ts).unwrap());
        let ext2 = eval(&g, &ts, &mut Valuation::default());
        assert_eq!(ext2.len(), 1);
    }

    #[test]
    fn least_fixpoint_reaches() {
        let (schema, pool, ts) = sample();
        let a = pool.get("a").unwrap();
        let m = pool.get("m").unwrap();
        // EF Grad(a, m) via µZ. Grad(a,m) ∨ ⟨−⟩Z.
        let grad = Mu::Query(Formula::Atom(
            schema.rel_id("Grad").unwrap(),
            vec![QTerm::Const(a), QTerm::Const(m)],
        ));
        let f = sugar::ef(grad);
        assert!(check(&f, &ts).unwrap());
    }

    #[test]
    fn greatest_fixpoint_safety() {
        let (schema, _, ts) = sample();
        // AG ¬Stud(b)? Stud(b) holds in s1, so false.
        let mut pool2 = ConstantPool::new();
        pool2.intern("a");
        let b = pool2.intern("b");
        let studb = Mu::Query(Formula::Atom(
            schema.rel_id("Stud").unwrap(),
            vec![QTerm::Const(b)],
        ));
        assert!(!check(&sugar::ag(studb.clone().not()), &ts).unwrap());
        // AG ¬(Stud(b) ∧ Grad-state) is true since they never co-occur...
        // simpler: AG true is true.
        assert!(check(&sugar::ag(Mu::Query(Formula::True)), &ts).unwrap());
    }

    #[test]
    fn quantification_across_states() {
        let (schema, _, ts) = sample();
        // ∃x.LIVE(x) ∧ Stud(x) ∧ ⟨−⟩⟨−⟩ ∃y.LIVE(y) ∧ Grad(x,y):
        // student a at s0 eventually graduates at s2.
        let grad_xy = Mu::Query(Formula::Atom(
            schema.rel_id("Grad").unwrap(),
            vec![QTerm::var("X"), QTerm::var("Y")],
        ));
        let f = Mu::exists(
            "X",
            Mu::live("X").and(stud(&schema, "X")).and(
                Mu::exists("Y", Mu::live("Y").and(grad_xy))
                    .diamond()
                    .diamond(),
            ),
        );
        assert!(check(&f, &ts).unwrap());
    }

    #[test]
    fn live_tracks_active_domain() {
        let (_, pool, ts) = sample();
        let b = pool.get("b").unwrap();
        // LIVE(b) holds exactly in s1.
        let f = Mu::live_const(b);
        let ext = eval(&f, &ts, &mut Valuation::default());
        assert_eq!(ext.len(), 1);
    }

    #[test]
    fn unassigned_live_holds_everywhere() {
        let (_, _, ts) = sample();
        let f = Mu::live("Unassigned");
        let ext = eval(&f, &ts, &mut Valuation::default());
        assert_eq!(ext.len(), ts.num_states());
    }

    #[test]
    fn nested_fixpoints_until() {
        let (schema, _, ts) = sample();
        // E [Stud-nonempty U Grad-nonempty]: along some path students
        // persist until graduation.
        let some_stud = Mu::exists("X", Mu::live("X").and(stud(&schema, "X")));
        let some_grad = Mu::exists(
            "X",
            Mu::live("X").and(Mu::exists(
                "Y",
                Mu::live("Y").and(Mu::Query(Formula::Atom(
                    schema.rel_id("Grad").unwrap(),
                    vec![QTerm::var("X"), QTerm::var("Y")],
                ))),
            )),
        );
        let f = sugar::eu(some_stud, some_grad);
        assert!(check(&f, &ts).unwrap());
    }
}
