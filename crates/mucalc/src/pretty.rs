//! Pretty-printing of µ-calculus formulas back to the surface syntax of
//! [`crate::parser`]. The output re-parses to an equivalent formula.

use crate::ast::Mu;
use dcds_folang::pretty::FormulaDisplay;
use dcds_folang::QTerm;
use dcds_reldata::{ConstantPool, Schema};
use std::fmt;

/// Wraps a µ-calculus formula for display.
pub struct MuDisplay<'a> {
    formula: &'a Mu,
    schema: &'a Schema,
    pool: &'a ConstantPool,
}

impl<'a> MuDisplay<'a> {
    /// Wrap a formula for display.
    pub fn new(formula: &'a Mu, schema: &'a Schema, pool: &'a ConstantPool) -> Self {
        Self {
            formula,
            schema,
            pool,
        }
    }

    /// Precedence: higher binds tighter. Mirrors the parser's grammar.
    fn prec(f: &Mu) -> u8 {
        match f {
            Mu::Query(_) | Mu::Live(_) | Mu::Pvar(_) => 5,
            Mu::Not(_) | Mu::Diamond(_) | Mu::Box_(_) => 4,
            Mu::And(_, _) => 3,
            Mu::Or(_, _) => 2,
            Mu::Implies(_, _) => 1,
            Mu::Exists(_, _) | Mu::Forall(_, _) | Mu::Lfp(_, _) | Mu::Gfp(_, _) => 0,
        }
    }

    fn rec(&self, f: &Mu, parent: u8, out: &mut fmt::Formatter<'_>) -> fmt::Result {
        let me = Self::prec(f);
        let parens = me < parent;
        if parens {
            write!(out, "(")?;
        }
        match f {
            Mu::Query(q) => {
                // Queries at the leaves may need their own parentheses when
                // they are non-atomic (the µ parser reads single atoms and
                // comparisons; compound queries round-trip through the
                // boolean structure of Mu instead, so parenthesise).
                let is_atomic = matches!(
                    q,
                    dcds_folang::Formula::Atom(_, _)
                        | dcds_folang::Formula::Eq(_, _)
                        | dcds_folang::Formula::True
                        | dcds_folang::Formula::False
                );
                if is_atomic {
                    write!(out, "{}", FormulaDisplay::new(q, self.schema, self.pool))?;
                } else {
                    write!(out, "({})", FormulaDisplay::new(q, self.schema, self.pool))?;
                }
            }
            Mu::Live(QTerm::Var(v)) => write!(out, "live({})", v.name())?,
            Mu::Live(QTerm::Const(c)) => {
                // Ground LIVE has no surface syntax (it only arises from
                // PROP); render as a comment-safe pseudo-atom.
                write!(out, "live('{}')", self.pool.name(*c))?
            }
            Mu::Not(g) => {
                write!(out, "!")?;
                self.rec(g, 5, out)?;
            }
            Mu::Diamond(g) => {
                write!(out, "<> ")?;
                self.rec(g, 5, out)?;
            }
            Mu::Box_(g) => {
                write!(out, "[] ")?;
                self.rec(g, 5, out)?;
            }
            Mu::And(g, h) => {
                self.rec(g, 3, out)?;
                write!(out, " & ")?;
                self.rec(h, 4, out)?;
            }
            Mu::Or(g, h) => {
                self.rec(g, 2, out)?;
                write!(out, " | ")?;
                self.rec(h, 3, out)?;
            }
            Mu::Implies(g, h) => {
                self.rec(g, 2, out)?;
                write!(out, " -> ")?;
                self.rec(h, 1, out)?;
            }
            Mu::Exists(v, g) => {
                write!(out, "exists {} . ", v.name())?;
                self.rec(g, 0, out)?;
            }
            Mu::Forall(v, g) => {
                write!(out, "forall {} . ", v.name())?;
                self.rec(g, 0, out)?;
            }
            Mu::Pvar(z) => write!(out, "{}", z.name())?,
            Mu::Lfp(z, g) => {
                write!(out, "mu {} . ", z.name())?;
                self.rec(g, 0, out)?;
            }
            Mu::Gfp(z, g) => {
                write!(out, "nu {} . ", z.name())?;
                self.rec(g, 0, out)?;
            }
        }
        if parens {
            write!(out, ")")?;
        }
        Ok(())
    }
}

impl fmt::Display for MuDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.rec(self.formula, 0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_mu;

    fn roundtrip(src: &str) {
        let mut schema = Schema::new();
        schema.add_relation("Stud", 1).unwrap();
        schema.add_relation("Grad", 2).unwrap();
        schema.add_relation("halted", 0).unwrap();
        let mut pool = ConstantPool::new();
        let f = parse_mu(src, &mut schema, &mut pool).unwrap();
        let printed = MuDisplay::new(&f, &schema, &pool).to_string();
        let f2 = parse_mu(&printed, &mut schema, &mut pool)
            .unwrap_or_else(|e| panic!("reparse of `{printed}` failed: {e}"));
        assert_eq!(f, f2, "printed as `{printed}`");
    }

    #[test]
    fn roundtrips() {
        roundtrip("mu Z . Stud(a) | <> Z");
        roundtrip("nu X . (forall S . live(S) -> (Stud(S) -> mu Y . ((exists G . live(G) & Grad(S, G)) | <> Y))) & [] X");
        roundtrip("nu Z . !halted() & [] Z");
        roundtrip("exists X . live(X) & Stud(X) & <> (live(X) & Stud(X))");
        roundtrip("[] (live(X) -> mu Y . Stud(X) | <> Y)");
        roundtrip("X = a | X != b");
    }

    #[test]
    fn prop_live_const_renders() {
        let mut pool = ConstantPool::new();
        let c = pool.intern("a");
        let schema = Schema::new();
        let f = Mu::live_const(c);
        assert_eq!(MuDisplay::new(&f, &schema, &pool).to_string(), "live('a')");
    }
}
