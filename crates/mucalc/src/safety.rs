//! Safety-fragment extraction: recognising µL formulas that are really
//! reachability questions.
//!
//! The symbolic backward-reachability engine (`dcds-symbolic`) decides a
//! single question: *can the system reach a state satisfying `Bad`?* Two
//! µL shapes compile to it:
//!
//! ```text
//! AG φ   =  νZ. φ ∧ [−]Z      holds  ⟺  ¬φ is NOT reachable
//! EF φ   =  µZ. φ ∨ ⟨−⟩Z      holds  ⟺   φ is reachable
//! ```
//!
//! exactly the shapes produced by [`crate::sugar::ag`] / [`crate::sugar::ef`]
//! (and by writing the fixpoints out by hand). `φ` must be a *state
//! property*: built from FO query leaves only — no nested fixpoints,
//! modalities, predicate variables, or `LIVE` (the live-predicate fragment
//! needs the persistence machinery of the explicit engines). Everything
//! else is rejected with an error that names the obstruction, so `dcds
//! check --engine symbolic` can explain itself.
//!
//! The extractor returns the *bad* condition — the FO formula whose
//! reachability is being asked — together with the polarity mapping the
//! reachability answer back to the original formula's verdict.

use crate::ast::{Mu, PredVar};
use dcds_folang::Formula;
use std::fmt;

/// How a reachability answer maps back to the original formula.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SafetyMode {
    /// The formula was `AG φ`: it holds iff `bad = ¬φ` is unreachable.
    AlwaysGood,
    /// The formula was `EF φ`: it holds iff `bad = φ` is reachable.
    EventuallyBad,
}

/// A µL formula compiled to a reachability question.
#[derive(Debug, Clone)]
pub struct SafetyProperty {
    /// Polarity of the answer.
    pub mode: SafetyMode,
    /// The condition whose reachability is asked. For `AG φ` this is the
    /// *negation* of the invariant (not yet normalised — the symbolic
    /// engine pushes the negation while building clauses).
    pub bad: Formula,
}

impl SafetyProperty {
    /// Map a (definitive) reachability answer to the formula's verdict.
    pub fn verdict(&self, reachable: bool) -> bool {
        match self.mode {
            SafetyMode::AlwaysGood => !reachable,
            SafetyMode::EventuallyBad => reachable,
        }
    }
}

/// Why a formula is not in the safety fragment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SafetyError {
    /// The top level is neither `νZ. φ ∧ [−]Z` nor `µZ. φ ∨ ⟨−⟩Z`.
    NotSafetyShape,
    /// The state property mentions the fixpoint variable outside the
    /// single modal recursion slot.
    RecursiveBody(String),
    /// The state property contains a construct FO queries cannot express.
    NonQueryBody(&'static str),
}

impl fmt::Display for SafetyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SafetyError::NotSafetyShape => write!(
                f,
                "not in the safety fragment: expected `nu Z . phi & [] Z` (AG) or \
                 `mu Z . phi | <> Z` (EF) with phi a first-order state property"
            ),
            SafetyError::RecursiveBody(z) => write!(
                f,
                "not in the safety fragment: the fixpoint variable {z} occurs inside \
                 the state property"
            ),
            SafetyError::NonQueryBody(what) => write!(
                f,
                "not in the safety fragment: the state property contains {what}, \
                 which is not a first-order query over the current state"
            ),
        }
    }
}

impl std::error::Error for SafetyError {}

/// Recognise a safety formula and extract the reachability question.
pub fn extract_safety(f: &Mu) -> Result<SafetyProperty, SafetyError> {
    match f {
        // νZ. φ ∧ [−]Z (either conjunct order).
        Mu::Gfp(z, body) => {
            if let Mu::And(l, r) = body.as_ref() {
                let phi = match (is_box_z(l, z), is_box_z(r, z)) {
                    (true, _) => r,
                    (_, true) => l,
                    _ => return Err(SafetyError::NotSafetyShape),
                };
                let good = state_property(phi, z)?;
                return Ok(SafetyProperty {
                    mode: SafetyMode::AlwaysGood,
                    bad: Formula::Not(Box::new(good)),
                });
            }
            Err(SafetyError::NotSafetyShape)
        }
        // µZ. φ ∨ ⟨−⟩Z (either disjunct order).
        Mu::Lfp(z, body) => {
            if let Mu::Or(l, r) = body.as_ref() {
                let phi = match (is_diamond_z(l, z), is_diamond_z(r, z)) {
                    (true, _) => r,
                    (_, true) => l,
                    _ => return Err(SafetyError::NotSafetyShape),
                };
                let bad = state_property(phi, z)?;
                return Ok(SafetyProperty {
                    mode: SafetyMode::EventuallyBad,
                    bad,
                });
            }
            Err(SafetyError::NotSafetyShape)
        }
        _ => Err(SafetyError::NotSafetyShape),
    }
}

fn is_box_z(f: &Mu, z: &PredVar) -> bool {
    matches!(f, Mu::Box_(inner) if matches!(inner.as_ref(), Mu::Pvar(w) if w == z))
}

fn is_diamond_z(f: &Mu, z: &PredVar) -> bool {
    matches!(f, Mu::Diamond(inner) if matches!(inner.as_ref(), Mu::Pvar(w) if w == z))
}

/// Flatten a modality-free µL state property into one FO formula.
fn state_property(f: &Mu, z: &PredVar) -> Result<Formula, SafetyError> {
    match f {
        Mu::Query(q) => Ok(q.clone()),
        Mu::Live(_) => Err(SafetyError::NonQueryBody("LIVE(·)")),
        Mu::Not(g) => Ok(Formula::Not(Box::new(state_property(g, z)?))),
        Mu::And(g, h) => Ok(state_property(g, z)?.and(state_property(h, z)?)),
        Mu::Or(g, h) => Ok(state_property(g, z)?.or(state_property(h, z)?)),
        Mu::Implies(g, h) => Ok(state_property(g, z)?.implies(state_property(h, z)?)),
        Mu::Exists(v, g) => Ok(Formula::Exists(v.clone(), Box::new(state_property(g, z)?))),
        Mu::Forall(v, g) => Ok(Formula::Forall(v.clone(), Box::new(state_property(g, z)?))),
        Mu::Pvar(w) if w == z => Err(SafetyError::RecursiveBody(z.name().to_owned())),
        Mu::Pvar(_) => Err(SafetyError::NonQueryBody("a free predicate variable")),
        Mu::Diamond(_) | Mu::Box_(_) => Err(SafetyError::NonQueryBody("a nested modality")),
        Mu::Lfp(_, _) | Mu::Gfp(_, _) => Err(SafetyError::NonQueryBody("a nested fixpoint")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sugar::{af, ag, ef};
    use dcds_folang::QTerm;
    use dcds_reldata::RelId;

    fn atom() -> Mu {
        Mu::Query(Formula::Atom(RelId::from_index(0), vec![QTerm::var("X")]))
    }

    #[test]
    fn ag_extracts_negated_invariant() {
        let phi = Mu::exists("X", atom());
        let p = extract_safety(&ag(phi)).unwrap();
        assert_eq!(p.mode, SafetyMode::AlwaysGood);
        assert!(matches!(p.bad, Formula::Not(_)));
        assert!(p.verdict(false));
        assert!(!p.verdict(true));
    }

    #[test]
    fn ef_extracts_goal() {
        let phi = Mu::exists("X", atom());
        let p = extract_safety(&ef(phi)).unwrap();
        assert_eq!(p.mode, SafetyMode::EventuallyBad);
        assert!(p.verdict(true));
        assert!(!p.verdict(false));
    }

    #[test]
    fn commuted_operands_accepted() {
        // νZ. [−]Z ∧ φ and µZ. ⟨−⟩Z ∨ φ are the same formulas.
        let z = PredVar::new("Z");
        let phi = Mu::exists("X", atom());
        let ag2 = Mu::Gfp(
            z.clone(),
            Box::new(Mu::Pvar(z.clone()).boxed().and(phi.clone())),
        );
        assert!(extract_safety(&ag2).is_ok());
        let ef2 = Mu::Lfp(z.clone(), Box::new(Mu::Pvar(z).diamond().or(phi)));
        assert!(extract_safety(&ef2).is_ok());
    }

    #[test]
    fn liveness_and_live_rejected() {
        let phi = Mu::exists("X", atom());
        // AF is not a safety shape.
        assert!(matches!(
            extract_safety(&af(phi.clone())),
            Err(SafetyError::NotSafetyShape)
        ));
        // LIVE in the state property is outside the fragment.
        let with_live = ag(Mu::exists("X", Mu::live("X").and(atom())));
        assert!(matches!(
            extract_safety(&with_live),
            Err(SafetyError::NonQueryBody(_))
        ));
        // A plain query is not a safety formula either.
        assert!(matches!(
            extract_safety(&phi),
            Err(SafetyError::NotSafetyShape)
        ));
    }

    #[test]
    fn recursive_body_rejected() {
        // νZ. (φ ∧ Z) ∧ [−]Z — Z occurs inside the state property.
        let z = PredVar::new("Z");
        let phi = Mu::exists("X", atom()).and(Mu::Pvar(z.clone()));
        let f = Mu::Gfp(z.clone(), Box::new(phi.and(Mu::Pvar(z).boxed())));
        assert!(matches!(
            extract_safety(&f),
            Err(SafetyError::RecursiveBody(_))
        ));
    }
}
