//! Conventional propositional µ-calculus model checking over finite
//! transition systems, by naive Kleene fixpoint iteration — the procedure
//! the paper invokes via \[22\] (Emerson, "Model checking and the
//! mu-calculus") after Theorem 4.4.
//!
//! The complexity of the naive iteration is `O((|Θ|·|Φ|)^k)` for alternation
//! depth `k`, matching the discussion in Section 6.

use crate::ast::PredVar;
use crate::prop::PropMu;
use dcds_core::{StateId, Ts};
use dcds_folang::holds_closed;
use std::collections::{BTreeMap, BTreeSet};

/// The extension of a propositional formula over the system.
pub fn eval_prop(
    f: &PropMu,
    ts: &Ts,
    env: &mut BTreeMap<PredVar, BTreeSet<StateId>>,
) -> BTreeSet<StateId> {
    let all: BTreeSet<StateId> = ts.state_ids().collect();
    eval_rec(f, ts, env, &all)
}

fn eval_rec(
    f: &PropMu,
    ts: &Ts,
    env: &mut BTreeMap<PredVar, BTreeSet<StateId>>,
    all: &BTreeSet<StateId>,
) -> BTreeSet<StateId> {
    match f {
        PropMu::Atom(q) => ts
            .state_ids()
            .filter(|s| holds_closed(q, ts.db(*s)).unwrap_or(false))
            .collect(),
        PropMu::LiveConst(c) => ts
            .state_ids()
            .filter(|s| ts.db(*s).active_domain().contains(c))
            .collect(),
        PropMu::Not(g) => all - &eval_rec(g, ts, env, all),
        PropMu::And(g, h) => &eval_rec(g, ts, env, all) & &eval_rec(h, ts, env, all),
        PropMu::Or(g, h) => &eval_rec(g, ts, env, all) | &eval_rec(h, ts, env, all),
        PropMu::Diamond(g) => {
            let target = eval_rec(g, ts, env, all);
            ts.state_ids()
                .filter(|s| ts.successors(*s).iter().any(|t| target.contains(t)))
                .collect()
        }
        PropMu::Box_(g) => {
            let target = eval_rec(g, ts, env, all);
            ts.state_ids()
                .filter(|s| ts.successors(*s).iter().all(|t| target.contains(t)))
                .collect()
        }
        PropMu::Pvar(z) => env.get(z).cloned().unwrap_or_default(),
        PropMu::Lfp(z, g) => {
            let saved = env.insert(z.clone(), BTreeSet::new());
            let mut current = BTreeSet::new();
            loop {
                env.insert(z.clone(), current.clone());
                let next = eval_rec(g, ts, env, all);
                if next == current {
                    break;
                }
                current = next;
            }
            restore(env, z, saved);
            current
        }
        PropMu::Gfp(z, g) => {
            let saved = env.insert(z.clone(), all.clone());
            let mut current = all.clone();
            loop {
                env.insert(z.clone(), current.clone());
                let next = eval_rec(g, ts, env, all);
                if next == current {
                    break;
                }
                current = next;
            }
            restore(env, z, saved);
            current
        }
    }
}

fn restore(
    env: &mut BTreeMap<PredVar, BTreeSet<StateId>>,
    z: &PredVar,
    saved: Option<BTreeSet<StateId>>,
) {
    match saved {
        Some(s) => {
            env.insert(z.clone(), s);
        }
        None => {
            env.remove(z);
        }
    }
}

/// Does the closed propositional formula hold in the initial state?
pub fn check_prop(f: &PropMu, ts: &Ts) -> bool {
    eval_prop(f, ts, &mut BTreeMap::new()).contains(&ts.initial())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Mu;
    use crate::mc;
    use crate::prop::propositionalize;
    use crate::sugar;
    use dcds_folang::{Formula, QTerm};
    use dcds_reldata::{ConstantPool, Instance, Schema, Tuple};

    fn sample() -> (Schema, ConstantPool, Ts) {
        let mut schema = Schema::new();
        let p = schema.add_relation("P", 1).unwrap();
        let mut pool = ConstantPool::new();
        let a = pool.intern("a");
        let b = pool.intern("b");
        let s0 = Instance::from_facts([(p, Tuple::from([a]))]);
        let s1 = Instance::from_facts([(p, Tuple::from([b]))]);
        let mut ts = Ts::new(s0);
        let i1 = ts.add_state(s1);
        ts.add_edge(ts.initial(), i1);
        ts.add_edge(i1, ts.initial());
        (schema, pool, ts)
    }

    #[test]
    fn atoms_and_live() {
        let (schema, pool, ts) = sample();
        let a = pool.get("a").unwrap();
        let pa = PropMu::Atom(Formula::Atom(
            schema.rel_id("P").unwrap(),
            vec![QTerm::Const(a)],
        ));
        assert!(check_prop(&pa, &ts));
        assert!(check_prop(&PropMu::LiveConst(a), &ts));
        let b = pool.get("b").unwrap();
        assert!(!check_prop(&PropMu::LiveConst(b), &ts));
    }

    #[test]
    fn agreement_with_direct_checker() {
        let (schema, _, ts) = sample();
        let p = schema.rel_id("P").unwrap();
        let formulas = [
            sugar::ag(Mu::exists(
                "X",
                Mu::live("X").and(Mu::Query(Formula::Atom(p, vec![QTerm::var("X")]))),
            )),
            sugar::ef(Mu::forall(
                "X",
                Mu::live("X").implies(Mu::Query(Formula::Atom(p, vec![QTerm::var("X")]))),
            )),
            sugar::af(Mu::exists("X", Mu::live("X").and(Mu::live("X")))),
        ];
        let adom = ts.adom_union();
        for f in &formulas {
            let direct = mc::check(f, &ts).unwrap();
            let prop = propositionalize(f, &adom).unwrap();
            assert_eq!(direct, check_prop(&prop, &ts), "formula {f:?}");
        }
    }

    #[test]
    fn fixpoints_terminate() {
        let (_, _, ts) = sample();
        // µZ.⟨−⟩Z over a cycle: empty (no base case ever added).
        let f = PropMu::Lfp(
            PredVar::new("Z"),
            Box::new(PropMu::Diamond(Box::new(PropMu::Pvar(PredVar::new("Z"))))),
        );
        assert!(!check_prop(&f, &ts));
        // νZ.⟨−⟩Z over a cycle: everything.
        let g = PropMu::Gfp(
            PredVar::new("Z"),
            Box::new(PropMu::Diamond(Box::new(PropMu::Pvar(PredVar::new("Z"))))),
        );
        assert!(check_prop(&g, &ts));
    }
}
