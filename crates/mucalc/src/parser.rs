//! Parser for the µ-calculus surface syntax.
//!
//! ```text
//! mu      := ("mu" | "nu") Z "." mu | iff
//! iff     := impl ( "<->" impl )*
//! impl    := or ( "->" impl )?
//! or      := and ( ("|" | "or") and )*
//! and     := unary ( ("&" | "and") unary )*
//! unary   := ("!" | "not") unary
//!          | "<>" unary | "[]" unary
//!          | ("exists" | "forall") Var ("," Var)* "." mu
//!          | ("mu" | "nu") Z "." mu
//!          | "live" "(" Var ("," Var)* ")"
//!          | primary
//! primary := "(" mu ")" | "true" | "false"
//!          | Z                       // a predicate variable in scope
//!          | Rel "(" term, ... ")" | Rel
//!          | term ("=" | "!=") term
//! ```
//!
//! Predicate variables are uppercase identifiers bound by an enclosing
//! `mu`/`nu`; an identifier in binder scope (not followed by `(`) parses as
//! a predicate variable, taking precedence over first-order terms.

use crate::ast::{Mu, PredVar};
use dcds_folang::lexer::TokenKind;
use dcds_folang::parser::{is_variable_name, ParseError, Parser, Resolver};
use dcds_folang::{Formula, QTerm};
use dcds_reldata::{ConstantPool, Schema};
use std::collections::BTreeSet;

/// Parse a µ-calculus formula against a schema and constant pool.
///
/// ```
/// use dcds_mucalc::parse_mu;
/// use dcds_reldata::{ConstantPool, Schema};
/// let mut schema = Schema::new();
/// schema.add_relation("Stud", 1).unwrap();
/// let mut pool = ConstantPool::new();
/// let f = parse_mu(
///     "nu X . (forall S . live(S) -> (Stud(S) -> mu Y . ((exists G . live(G) & Stud(G)) | <> Y))) & [] X",
///     &mut schema,
///     &mut pool,
/// ).unwrap();
/// assert!(f.is_closed());
/// ```
pub fn parse_mu(src: &str, schema: &mut Schema, pool: &mut ConstantPool) -> Result<Mu, ParseError> {
    let mut p = Parser::new(src)?;
    let mut st = MuParser {
        pred_scope: BTreeSet::new(),
    };
    let mut r = Resolver {
        schema,
        pool,
        extend_schema: false,
    };
    let f = st.parse(&mut p, &mut r)?;
    if !p.at_eof() {
        return Err(p.error(&format!("unexpected {}", p.peek_kind())));
    }
    Ok(f)
}

struct MuParser {
    pred_scope: BTreeSet<String>,
}

impl MuParser {
    fn parse(&mut self, p: &mut Parser, r: &mut Resolver<'_>) -> Result<Mu, ParseError> {
        self.parse_iff(p, r)
    }

    fn parse_fixpoint(
        &mut self,
        p: &mut Parser,
        r: &mut Resolver<'_>,
        least: bool,
    ) -> Result<Mu, ParseError> {
        let z = p.expect_ident()?;
        if !is_variable_name(&z) {
            return Err(p.error(&format!(
                "predicate variable `{z}` must start with an uppercase letter"
            )));
        }
        p.expect(&TokenKind::Dot)?;
        let fresh = self.pred_scope.insert(z.clone());
        let body = self.parse(p, r)?;
        if fresh {
            self.pred_scope.remove(&z);
        }
        Ok(if least {
            Mu::Lfp(PredVar::new(&z), Box::new(body))
        } else {
            Mu::Gfp(PredVar::new(&z), Box::new(body))
        })
    }

    fn parse_iff(&mut self, p: &mut Parser, r: &mut Resolver<'_>) -> Result<Mu, ParseError> {
        let mut lhs = self.parse_impl(p, r)?;
        while p.eat(&TokenKind::Equiv) {
            let rhs = self.parse_impl(p, r)?;
            lhs = lhs.clone().implies(rhs.clone()).and(rhs.implies(lhs));
        }
        Ok(lhs)
    }

    fn parse_impl(&mut self, p: &mut Parser, r: &mut Resolver<'_>) -> Result<Mu, ParseError> {
        // Right-recursive on `->`: depth-guarded like the FO parser.
        p.descend()?;
        let out = self.parse_impl_inner(p, r);
        p.ascend();
        out
    }

    fn parse_impl_inner(&mut self, p: &mut Parser, r: &mut Resolver<'_>) -> Result<Mu, ParseError> {
        let lhs = self.parse_or(p, r)?;
        if p.eat(&TokenKind::Arrow) {
            let rhs = self.parse_impl(p, r)?;
            Ok(lhs.implies(rhs))
        } else {
            Ok(lhs)
        }
    }

    fn parse_or(&mut self, p: &mut Parser, r: &mut Resolver<'_>) -> Result<Mu, ParseError> {
        let mut lhs = self.parse_and(p, r)?;
        while p.eat(&TokenKind::Pipe) || p.eat_keyword("or") {
            let rhs = self.parse_and(p, r)?;
            lhs = lhs.or(rhs);
        }
        Ok(lhs)
    }

    fn parse_and(&mut self, p: &mut Parser, r: &mut Resolver<'_>) -> Result<Mu, ParseError> {
        let mut lhs = self.parse_unary(p, r)?;
        while p.eat(&TokenKind::Amp) || p.eat_keyword("and") {
            let rhs = self.parse_unary(p, r)?;
            lhs = lhs.and(rhs);
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self, p: &mut Parser, r: &mut Resolver<'_>) -> Result<Mu, ParseError> {
        // Every µ-calculus grammar cycle (`(…)`, `!…`, `<>`/`[]` chains,
        // `mu`/`nu`/quantifier bodies) passes through here; the depth
        // counter lives in the shared token cursor, so FO subformula
        // recursion counts against the same budget.
        p.descend()?;
        let out = self.parse_unary_inner(p, r);
        p.ascend();
        out
    }

    fn parse_unary_inner(
        &mut self,
        p: &mut Parser,
        r: &mut Resolver<'_>,
    ) -> Result<Mu, ParseError> {
        if p.eat(&TokenKind::Bang) || p.eat_keyword("not") {
            return Ok(self.parse_unary(p, r)?.not());
        }
        if p.eat(&TokenKind::Diamond) {
            return Ok(self.parse_unary(p, r)?.diamond());
        }
        if p.eat(&TokenKind::Box) {
            return Ok(self.parse_unary(p, r)?.boxed());
        }
        if p.eat_keyword("mu") {
            return self.parse_fixpoint(p, r, true);
        }
        if p.eat_keyword("nu") {
            return self.parse_fixpoint(p, r, false);
        }
        if p.at_keyword("exists") || p.at_keyword("forall") {
            let is_exists = p.at_keyword("exists");
            p.advance();
            let vars = p.parse_var_list()?;
            p.expect(&TokenKind::Dot)?;
            let mut body = self.parse(p, r)?;
            for v in vars.into_iter().rev() {
                body = if is_exists {
                    Mu::Exists(v, Box::new(body))
                } else {
                    Mu::Forall(v, Box::new(body))
                };
            }
            return Ok(body);
        }
        if p.at_keyword("live") && matches!(p.peek_ahead(1), TokenKind::LParen) {
            p.advance();
            p.expect(&TokenKind::LParen)?;
            let vars = p.parse_var_list()?;
            p.expect(&TokenKind::RParen)?;
            return Ok(Mu::live_all(vars));
        }
        self.parse_primary(p, r)
    }

    fn parse_primary(&mut self, p: &mut Parser, r: &mut Resolver<'_>) -> Result<Mu, ParseError> {
        if p.eat(&TokenKind::LParen) {
            let f = self.parse(p, r)?;
            p.expect(&TokenKind::RParen)?;
            return Ok(f);
        }
        if p.eat_keyword("true") {
            return Ok(Mu::Query(Formula::True));
        }
        if p.eat_keyword("false") {
            return Ok(Mu::Query(Formula::False));
        }
        match p.peek_kind().clone() {
            TokenKind::Ident(name) => {
                // Predicate variable in scope (not an atom application).
                if self.pred_scope.contains(&name) && !matches!(p.peek_ahead(1), TokenKind::LParen)
                {
                    p.advance();
                    return Ok(Mu::Pvar(PredVar::new(&name)));
                }
                if matches!(p.peek_ahead(1), TokenKind::LParen) {
                    p.advance();
                    let atom = p.parse_atom_tail(&name, r)?;
                    return Ok(Mu::Query(atom));
                }
                // Nullary atom or comparison.
                let followed_by_cmp = matches!(p.peek_ahead(1), TokenKind::Eq | TokenKind::Neq);
                let known_nullary = r
                    .schema
                    .rel_id(&name)
                    .is_some_and(|id| r.schema.arity(id) == 0);
                if known_nullary && !followed_by_cmp {
                    p.advance();
                    let rel = r.schema.rel_id(&name).unwrap();
                    return Ok(Mu::Query(Formula::Atom(rel, Vec::new())));
                }
                let t1 = p.parse_term(r)?;
                self.finish_comparison(p, r, t1)
            }
            TokenKind::Quoted(_) => {
                let t1 = p.parse_term(r)?;
                self.finish_comparison(p, r, t1)
            }
            other => Err(p.error(&format!("expected formula, found {other}"))),
        }
    }

    fn finish_comparison(
        &mut self,
        p: &mut Parser,
        r: &mut Resolver<'_>,
        t1: QTerm,
    ) -> Result<Mu, ParseError> {
        match p.peek_kind().clone() {
            TokenKind::Eq => {
                p.advance();
                let t2 = p.parse_term(r)?;
                Ok(Mu::Query(Formula::Eq(t1, t2)))
            }
            TokenKind::Neq => {
                p.advance();
                let t2 = p.parse_term(r)?;
                Ok(Mu::Query(Formula::neq(t1, t2)))
            }
            other => Err(p.error(&format!("expected `=` or `!=`, found {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fragments::{classify, Fragment};

    fn setup() -> (Schema, ConstantPool) {
        let mut schema = Schema::new();
        schema.add_relation("Stud", 1).unwrap();
        schema.add_relation("Grad", 2).unwrap();
        schema.add_relation("halted", 0).unwrap();
        (schema, ConstantPool::new())
    }

    #[test]
    fn parses_modalities_and_fixpoints() {
        let (mut s, mut pool) = setup();
        let f = parse_mu("mu Z . Stud(a) | <> Z", &mut s, &mut pool).unwrap();
        assert!(matches!(f, Mu::Lfp(_, _)));
        assert!(f.is_closed());
    }

    #[test]
    fn pred_var_scope() {
        let (mut s, mut pool) = setup();
        // Out-of-scope Z is not a pred var: `Z` alone must fail to parse as
        // a formula (it is a term with no comparison).
        assert!(parse_mu("Z", &mut s, &mut pool).is_err());
        let f = parse_mu("nu Z . Z", &mut s, &mut pool).unwrap();
        assert_eq!(f, Mu::gfp("Z", Mu::Pvar(PredVar::new("Z"))));
    }

    #[test]
    fn live_guards() {
        let (mut s, mut pool) = setup();
        let f = parse_mu("exists X . live(X) & Stud(X)", &mut s, &mut pool).unwrap();
        assert_eq!(classify(&f).unwrap(), Fragment::MuLP);
        let g = parse_mu("exists X . Stud(X)", &mut s, &mut pool).unwrap();
        assert_eq!(classify(&g).unwrap(), Fragment::MuL);
    }

    #[test]
    fn multi_var_live() {
        let (mut s, mut pool) = setup();
        let f = parse_mu("live(X, Y)", &mut s, &mut pool).unwrap();
        assert_eq!(f.free_vars().len(), 2);
    }

    #[test]
    fn example_3_2_parses_as_mu_la() {
        let (mut s, mut pool) = setup();
        let src = "nu X . (forall S . live(S) -> (Stud(S) -> \
                   mu Y . ((exists G . live(G) & Grad(S, G)) | <> Y))) & [] X";
        let f = parse_mu(src, &mut s, &mut pool).unwrap();
        assert_eq!(classify(&f).unwrap(), Fragment::MuLA);
    }

    #[test]
    fn example_3_3_parses_as_mu_lp() {
        let (mut s, mut pool) = setup();
        let src = "nu X . (forall S . live(S) -> (Stud(S) -> \
                   mu Y . ((exists G . live(G) & Grad(S, G)) | <> (live(S) & Y)))) & [] X";
        let f = parse_mu(src, &mut s, &mut pool).unwrap();
        assert_eq!(classify(&f).unwrap(), Fragment::MuLP);
    }

    #[test]
    fn nullary_atoms_and_safety_shape() {
        let (mut s, mut pool) = setup();
        // G ¬halted (Theorem 4.1's property) as νZ.¬halted ∧ []Z.
        let f = parse_mu("nu Z . !halted & [] Z", &mut s, &mut pool).unwrap();
        assert!(f.is_closed());
        assert_eq!(classify(&f).unwrap(), Fragment::MuLP);
    }

    #[test]
    fn trailing_garbage_rejected() {
        let (mut s, mut pool) = setup();
        assert!(parse_mu("true true", &mut s, &mut pool).is_err());
    }

    #[test]
    fn deep_nesting_is_an_error_not_a_crash() {
        let (mut s, mut pool) = setup();
        for src in [
            format!("{}true{}", "(".repeat(20_000), ")".repeat(20_000)),
            format!("{}true", "<> ".repeat(20_000)),
            format!("{}true", "[] ".repeat(20_000)),
            format!(
                "{}true",
                (0..20_000)
                    .map(|i| format!("mu Z{i} . "))
                    .collect::<String>()
            ),
            format!("{}true", "exists X . live(X) & ".repeat(20_000)),
        ] {
            let err = parse_mu(&src, &mut s, &mut pool).unwrap_err();
            assert!(err.message.contains("nesting"), "{err}");
        }
    }
}
