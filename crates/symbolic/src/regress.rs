//! The regression operator: weakest-precondition clauses of an action.
//!
//! Given a target clause `C` and an action `α`, `regress` produces clauses
//! `D` such that a state satisfying `D` *may* step to a state satisfying
//! `C` by executing `α` — the backward image through the overwrite
//! semantics of `DO` (Section 4.1 of the paper): the successor instance is
//! exactly the union of grounded effect heads, so **every** atom of `C`
//! must be produced by some (effect, head fact, q⁺ disjunct) choice, while
//! the state must also let some condition–action rule fire `α`.
//!
//! Per-atom variable copies are exact: `DO` unions the heads over *all*
//! answers of each effect, so distinct target atoms may be produced by
//! distinct answers, and equal answers are the special case where the
//! copies unify through the equalities.
//!
//! Service calls in effect heads regress by kind:
//!
//! * **deterministic** `f(t̄)` becomes the application term `f(t̄)` — the
//!   persistent service-call map makes it a single value per argument
//!   tuple across the whole run, which the congruence closure enforces;
//! * **nondeterministic** `f(t̄)` becomes a fresh variable, interned per
//!   syntactic argument tuple *within the step* (the same ground call
//!   resolves once per step). Beyond syntactic equality the result is
//!   over-approximate, which is the sound direction.
//!
//! Two further over-approximations, both sound for SAFE verdicts and both
//! counted so the verdict report can show them: a non-UCQ effect filter
//! `Q⁻` is dropped, and a non-UCQ rule condition is dropped.

use crate::clause::{Clause, STerm, SVar};
use dcds_core::{ActionId, BaseTerm, Dcds, ETerm, FuncId, ServiceKind};
use dcds_folang::{ConjunctiveQuery, Formula, QTerm, Ucq, Var};
use dcds_reldata::RelId;
use std::collections::BTreeMap;

/// Result of regressing one clause through one action.
#[derive(Debug, Default)]
pub struct RegressOut {
    /// Normalised precondition clauses (unsatisfiable candidates dropped).
    pub clauses: Vec<Clause>,
    /// Candidate clauses built before normalisation.
    pub candidates: u64,
    /// Times a non-UCQ effect filter `Q⁻` was dropped (over-approximation).
    pub qminus_dropped: u64,
    /// Times a non-UCQ rule condition was dropped (over-approximation).
    pub cond_dropped: u64,
    /// The candidate limit cut the enumeration short.
    pub truncated: bool,
}

/// How an effect's `Q⁻` filter participates in regression.
enum QmPlan {
    /// `Formula::True`: no filter.
    Absent,
    /// UCQ-shaped: regressed exactly, one case per disjunct.
    Ucq(Ucq),
    /// Outside the UCQ fragment: dropped (sound over-approximation).
    Dropped,
}

/// One way a target atom can be produced: effect, head fact, `q⁺`
/// disjunct, and (when the filter is a UCQ) `Q⁻` disjunct.
#[derive(Clone, Copy)]
struct AtomOption {
    effect_ix: usize,
    head_ix: usize,
    qplus_ix: usize,
    /// `None` when the filter is absent or dropped.
    qminus_ix: Option<usize>,
    /// The filter was dropped for this option.
    qminus_dropped: bool,
}

/// One way `α` can have been licensed: a rule and a disjunct of its
/// condition (`None` disjunct when the condition is `true` or dropped).
#[derive(Clone, Copy)]
struct RuleOption<'a> {
    ucq: Option<(&'a Ucq, usize)>,
    dropped: bool,
}

/// Regress `target` through `action`, emitting at most `limit` clauses.
pub fn regress(dcds: &Dcds, target: &Clause, action: ActionId, limit: usize) -> RegressOut {
    let mut out = RegressOut::default();
    let act = dcds.process.action(action);

    // Rule options: α must be licensed by some rule whose condition holds
    // in the predecessor.
    let rule_ucqs: Vec<(Option<Ucq>, &Formula)> = dcds
        .process
        .rules_for(action)
        .map(|r| {
            if r.condition == Formula::True {
                (Some(Ucq::truth()), &r.condition)
            } else {
                (Ucq::from_formula(&r.condition), &r.condition)
            }
        })
        .collect();
    if rule_ucqs.is_empty() {
        return out; // no rule ever fires α
    }
    let mut rule_options: Vec<RuleOption<'_>> = Vec::new();
    for (ucq, _) in &rule_ucqs {
        match ucq {
            Some(u) => {
                for dix in 0..u.disjuncts.len() {
                    rule_options.push(RuleOption {
                        ucq: Some((u, dix)),
                        dropped: false,
                    });
                }
            }
            None => rule_options.push(RuleOption {
                ucq: None,
                dropped: true,
            }),
        }
    }
    if rule_options.is_empty() {
        return out; // every condition is an unsatisfiable (empty) UCQ
    }

    // Filter plans, one per effect.
    let qm_plans: Vec<QmPlan> = act
        .effects
        .iter()
        .map(|e| {
            if e.qminus == Formula::True {
                QmPlan::Absent
            } else {
                match Ucq::from_formula(&e.qminus) {
                    Some(u) => QmPlan::Ucq(u),
                    None => QmPlan::Dropped,
                }
            }
        })
        .collect();

    // Production options per target atom.
    let mut options: Vec<Vec<AtomOption>> = Vec::with_capacity(target.atoms.len());
    for (rel, _) in &target.atoms {
        let mut opts = Vec::new();
        for (eix, effect) in act.effects.iter().enumerate() {
            for (hix, (hrel, _)) in effect.head.iter().enumerate() {
                if hrel != rel {
                    continue;
                }
                for qix in 0..effect.qplus.disjuncts.len() {
                    match &qm_plans[eix] {
                        QmPlan::Absent => opts.push(AtomOption {
                            effect_ix: eix,
                            head_ix: hix,
                            qplus_ix: qix,
                            qminus_ix: None,
                            qminus_dropped: false,
                        }),
                        QmPlan::Dropped => opts.push(AtomOption {
                            effect_ix: eix,
                            head_ix: hix,
                            qplus_ix: qix,
                            qminus_ix: None,
                            qminus_dropped: true,
                        }),
                        QmPlan::Ucq(u) => {
                            for mix in 0..u.disjuncts.len() {
                                opts.push(AtomOption {
                                    effect_ix: eix,
                                    head_ix: hix,
                                    qplus_ix: qix,
                                    qminus_ix: Some(mix),
                                    qminus_dropped: false,
                                });
                            }
                        }
                    }
                }
            }
        }
        if opts.is_empty() {
            return out; // α cannot produce this atom at all
        }
        options.push(opts);
    }

    // Enumerate rule option × per-atom option combinations (odometer).
    let mut pick = vec![0usize; target.atoms.len()];
    'rules: for rule_opt in &rule_options {
        pick.iter_mut().for_each(|p| *p = 0);
        loop {
            if out.clauses.len() >= limit {
                out.truncated = true;
                break 'rules;
            }
            build_candidate(dcds, target, action, rule_opt, &options, &pick, &mut out);
            // Advance the odometer; a full wrap (including the atom-free
            // single-combination case) ends this rule option.
            let mut k = 0;
            while k < pick.len() {
                pick[k] += 1;
                if pick[k] < options[k].len() {
                    break;
                }
                pick[k] = 0;
                k += 1;
            }
            if k == pick.len() {
                break;
            }
        }
    }
    out
}

/// Fresh-variable allocator plus the shared maps of one candidate.
struct CandidateVars {
    next: SVar,
    params: BTreeMap<Var, SVar>,
    nondet: BTreeMap<(FuncId, Vec<STerm>), SVar>,
}

impl CandidateVars {
    fn fresh(&mut self) -> SVar {
        let v = self.next;
        self.next += 1;
        v
    }
}

#[allow(clippy::too_many_arguments)]
fn build_candidate(
    dcds: &Dcds,
    target: &Clause,
    action: ActionId,
    rule_opt: &RuleOption<'_>,
    options: &[Vec<AtomOption>],
    pick: &[usize],
    out: &mut RegressOut,
) {
    let act = dcds.process.action(action);
    let mut vars = CandidateVars {
        next: target.next_var(),
        params: BTreeMap::new(),
        nondet: BTreeMap::new(),
    };
    for p in &act.params {
        let v = vars.fresh();
        vars.params.insert(p.clone(), v);
    }

    let mut atoms: Vec<(RelId, Vec<STerm>)> = Vec::new();
    let mut eqs: Vec<(STerm, STerm)> = target.eqs.clone();
    let neqs: Vec<(STerm, STerm)> = target.neqs.clone();

    // The licensing rule condition must hold in the predecessor.
    if rule_opt.dropped {
        out.cond_dropped += 1;
    } else if let Some((ucq, dix)) = rule_opt.ucq {
        let cq = &ucq.disjuncts[dix];
        let mut copy: BTreeMap<Var, SVar> = BTreeMap::new();
        add_cq(cq, &mut copy, &mut vars, &mut atoms, &mut eqs);
    }

    // Each target atom is produced by its chosen (effect, head, disjunct).
    for (aix, (_, terms)) in target.atoms.iter().enumerate() {
        let opt = options[aix][pick[aix]];
        if opt.qminus_dropped {
            out.qminus_dropped += 1;
        }
        let effect = &act.effects[opt.effect_ix];
        let cq = &effect.qplus.disjuncts[opt.qplus_ix];
        // Fresh copies of the disjunct's variables, one set per atom.
        let mut copy: BTreeMap<Var, SVar> = BTreeMap::new();
        add_cq(cq, &mut copy, &mut vars, &mut atoms, &mut eqs);
        // Answer variables are guaranteed in `copy` by range restriction
        // (head ⊆ atom vars); allocate defensively anyway.
        for v in effect.qplus.head() {
            if !vars.params.contains_key(v) && !copy.contains_key(v) {
                let id = vars.fresh();
                copy.insert(v.clone(), id);
            }
        }
        // The filter Q⁻, when it is a UCQ, shares the answer variables.
        if let Some(mix) = opt.qminus_ix {
            if let QmPlan::Ucq(u) = qm_plan_of(effect) {
                let dq = &u.disjuncts[mix];
                let mut qm_copy: BTreeMap<Var, SVar> = BTreeMap::new();
                for v in effect.qplus.head() {
                    if let Some(id) = copy.get(v) {
                        qm_copy.insert(v.clone(), *id);
                    }
                }
                add_cq(dq, &mut qm_copy, &mut vars, &mut atoms, &mut eqs);
            }
        }
        // Unify the target atom with the grounded head fact.
        let (_, head_terms) = &effect.head[opt.head_ix];
        debug_assert_eq!(terms.len(), head_terms.len());
        for (t, e) in terms.iter().zip(head_terms.iter()) {
            let h = eterm_to_sterm(dcds, e, &copy, &mut vars);
            eqs.push((t.clone(), h));
        }
    }

    out.candidates += 1;
    let cand = Clause {
        atoms,
        eqs,
        neqs,
        level: target.level + 1,
    };
    if let Some(n) = cand.normalize() {
        out.clauses.push(n);
    }
}

/// Recompute the filter plan for one effect (cheap; avoids threading the
/// per-action vector through the candidate builder).
fn qm_plan_of(effect: &dcds_core::Effect) -> QmPlan {
    if effect.qminus == Formula::True {
        QmPlan::Absent
    } else {
        match Ucq::from_formula(&effect.qminus) {
            Some(u) => QmPlan::Ucq(u),
            None => QmPlan::Dropped,
        }
    }
}

/// Add a conjunctive query's atoms and equalities to the candidate, with
/// parameters shared and all other variables freshly copied via `copy`.
fn add_cq(
    cq: &ConjunctiveQuery,
    copy: &mut BTreeMap<Var, SVar>,
    vars: &mut CandidateVars,
    atoms: &mut Vec<(RelId, Vec<STerm>)>,
    eqs: &mut Vec<(STerm, STerm)>,
) {
    for (rel, ts) in &cq.atoms {
        let mapped: Vec<STerm> = ts.iter().map(|t| qterm_to_sterm(t, copy, vars)).collect();
        atoms.push((*rel, mapped));
    }
    for (a, b) in &cq.equalities {
        eqs.push((qterm_to_sterm(a, copy, vars), qterm_to_sterm(b, copy, vars)));
    }
}

fn qterm_to_sterm(t: &QTerm, copy: &mut BTreeMap<Var, SVar>, vars: &mut CandidateVars) -> STerm {
    match t {
        QTerm::Const(c) => STerm::Const(*c),
        QTerm::Var(v) => STerm::Var(var_id(v, copy, vars)),
    }
}

fn var_id(v: &Var, copy: &mut BTreeMap<Var, SVar>, vars: &mut CandidateVars) -> SVar {
    if let Some(id) = vars.params.get(v) {
        return *id;
    }
    if let Some(id) = copy.get(v) {
        return *id;
    }
    let id = vars.fresh();
    copy.insert(v.clone(), id);
    id
}

/// Convert a head term: values stay, variables resolve through the answer
/// copy / parameters, service calls regress by kind.
fn eterm_to_sterm(
    dcds: &Dcds,
    e: &ETerm,
    copy: &BTreeMap<Var, SVar>,
    vars: &mut CandidateVars,
) -> STerm {
    match e {
        ETerm::Base(b) => base_resolved(b, copy, vars),
        ETerm::Call(f, args) => {
            let mapped: Vec<STerm> = args.iter().map(|a| base_resolved(a, copy, vars)).collect();
            match dcds.process.services.kind(*f) {
                ServiceKind::Deterministic => STerm::App(*f, mapped),
                ServiceKind::Nondeterministic => {
                    let key = (*f, mapped);
                    if let Some(id) = vars.nondet.get(&key) {
                        STerm::Var(*id)
                    } else {
                        let id = vars.fresh();
                        vars.nondet.insert(key, id);
                        STerm::Var(id)
                    }
                }
            }
        }
    }
}

/// Resolve a base head term; head variables must already be allocated
/// (validation guarantees head vars ⊆ answer vars ∪ params).
fn base_resolved(t: &BaseTerm, copy: &BTreeMap<Var, SVar>, vars: &mut CandidateVars) -> STerm {
    match t {
        BaseTerm::Const(c) => STerm::Const(*c),
        BaseTerm::Var(v) => {
            if let Some(id) = vars.params.get(v) {
                STerm::Var(*id)
            } else if let Some(id) = copy.get(v) {
                STerm::Var(*id)
            } else {
                debug_assert!(
                    false,
                    "head variable {v:?} not bound by answer or parameters"
                );
                STerm::Var(vars.fresh())
            }
        }
    }
}
