//! The backward-reachability driver.
//!
//! Starting from the clause set of the *bad* condition, the engine
//! repeatedly regresses the frontier through every action, normalising,
//! constraint-pruning, and subsumption-checking the results, until either
//!
//! * the set reaches a **fixpoint** with no clause covering the initial
//!   instance — Bad is unreachable, reported definitively; or
//! * a clause covers `I₀` and a **bounded concrete search** (over the
//!   commitment-representative successors the explicit engines use)
//!   confirms an actual run into Bad — reachable, with a trace witness; or
//! * an iteration/clause/node budget runs out, or a purported hit never
//!   confirms — inconclusive, with the reason.
//!
//! The clause set *over-approximates* the set of states that can reach
//! Bad (regression drops non-UCQ filters and rule conditions, treats
//! nondeterministic results as per-step-interned free values, and ignores
//! successor constraint filtering — each one only ever enlarges the set).
//! That makes UNREACHABLE sound as computed, and is why REACHABLE is
//! never claimed from a clause hit alone.

use crate::clause::{Clause, ClauseKey};
use crate::constraints::{clause_violates, guarded_constraints};
use crate::regress::regress;
use crate::subsume::{subsumes, ClauseCtx};
use dcds_core::det::det_successors_by_commitment;
use dcds_core::nondet::nondet_successors_by_commitment;
use dcds_core::{ActionId, Dcds, DetState};
use dcds_folang::{holds_closed, Assignment, Formula};
use dcds_mucalc::safety::{extract_safety, SafetyError, SafetyMode};
use dcds_mucalc::Mu;
use dcds_obs::{event, span, Obs};
use dcds_reldata::{ConstantPool, Instance};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

/// Budgets for the symbolic engine.
#[derive(Debug, Clone)]
pub struct SymOptions {
    /// Maximum regression depth (iterations of the fixpoint loop).
    pub max_iters: usize,
    /// Maximum number of clauses kept across the whole run.
    pub max_clauses: usize,
    /// Node budget for each concrete confirmation search.
    pub confirm_nodes: usize,
}

impl Default for SymOptions {
    fn default() -> Self {
        SymOptions {
            max_iters: 64,
            max_clauses: 4096,
            confirm_nodes: 50_000,
        }
    }
}

/// Observability counters of one symbolic run (serde-free `to_json`, like
/// the engine counters elsewhere in the workspace).
#[derive(Debug, Default, Clone)]
pub struct SymCounters {
    /// Fixpoint iterations executed.
    pub iterations: u64,
    /// Clause × action regressions performed.
    pub regressions: u64,
    /// Candidate clauses built (before normalisation).
    pub candidates: u64,
    /// Clauses kept in the backward-reachable set.
    pub kept: u64,
    /// Candidates dropped as exact duplicates.
    pub exact_dups: u64,
    /// Candidates dropped by subsumption.
    pub subsumed: u64,
    /// Candidates dropped as unsatisfiable (normalisation).
    pub unsat_dropped: u64,
    /// Candidates dropped by integrity-constraint pruning.
    pub constraint_pruned: u64,
    /// Non-UCQ effect filters dropped (over-approximation events).
    pub qminus_dropped: u64,
    /// Non-UCQ rule conditions dropped (over-approximation events).
    pub cond_dropped: u64,
    /// Clauses that covered the initial instance (permissive check).
    pub init_hits: u64,
    /// Concrete confirmation searches launched.
    pub confirm_runs: u64,
    /// States expanded across all confirmation searches.
    pub confirm_nodes: u64,
    /// Largest frontier (clauses regressed in one level) across the run.
    pub peak_frontier: u64,
}

impl SymCounters {
    /// `(name, value)` pairs in a fixed order.
    pub fn entries(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("iterations", self.iterations),
            ("regressions", self.regressions),
            ("candidates", self.candidates),
            ("kept", self.kept),
            ("exact_dups", self.exact_dups),
            ("subsumed", self.subsumed),
            ("unsat_dropped", self.unsat_dropped),
            ("constraint_pruned", self.constraint_pruned),
            ("qminus_dropped", self.qminus_dropped),
            ("cond_dropped", self.cond_dropped),
            ("init_hits", self.init_hits),
            ("confirm_runs", self.confirm_runs),
            ("confirm_nodes", self.confirm_nodes),
            ("peak_frontier", self.peak_frontier),
        ]
    }

    /// Render as a JSON object.
    pub fn to_json(&self) -> String {
        let body: Vec<String> = self
            .entries()
            .iter()
            .map(|(k, v)| format!("\"{k}\":{v}"))
            .collect();
        format!("{{{}}}", body.join(","))
    }

    /// Publish into the observability registry under `symbolic.<name>`.
    pub fn publish(&self, obs: &Obs) {
        if !obs.is_enabled() {
            return;
        }
        for (k, v) in self.entries() {
            obs.counter_add(format!("symbolic.{k}"), v);
        }
    }
}

/// A concrete run witnessing reachability: `states[0]` is the initial
/// instance and `actions[i]` leads from `states[i]` to `states[i + 1]`.
#[derive(Debug, Clone)]
pub struct Trace {
    /// Instances along the run.
    pub states: Vec<Instance>,
    /// Action (with parameter assignment) taken at each step.
    pub actions: Vec<(ActionId, Assignment)>,
    /// Constant pool covering every value in the trace — the spec pool
    /// extended with the fresh values the confirmation search injected.
    pub pool: ConstantPool,
}

/// The verdict of a symbolic safety check, already mapped through the
/// property's polarity (AG / EF).
#[derive(Debug, Clone)]
pub enum SymVerdict {
    /// The property holds. For EF properties the confirming trace is the
    /// witness.
    Holds(Option<Trace>),
    /// The property is violated. For AG properties the counterexample
    /// trace is attached.
    Violated(Option<Trace>),
    /// Neither verdict within budget; the string says why.
    Inconclusive(String),
}

/// Result of a symbolic run.
#[derive(Debug)]
pub struct SymRun {
    /// The verdict.
    pub verdict: SymVerdict,
    /// Polarity of the checked property.
    pub mode: SafetyMode,
    /// Counters for reporting.
    pub counters: SymCounters,
}

/// Why a check could not start.
#[derive(Debug, Clone)]
pub enum SymError {
    /// The formula is outside the safety fragment.
    NotSafety(SafetyError),
    /// The bad condition cannot be compiled to clauses.
    UnsupportedBad(String),
}

impl fmt::Display for SymError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SymError::NotSafety(e) => write!(f, "{e}"),
            SymError::UnsupportedBad(msg) => {
                write!(f, "bad condition outside the clause fragment: {msg}")
            }
        }
    }
}

impl std::error::Error for SymError {}

/// Check a µL safety formula symbolically (no observability).
pub fn check_safety(dcds: &Dcds, f: &Mu, opts: &SymOptions) -> Result<SymRun, SymError> {
    check_safety_traced(dcds, f, opts, &Obs::disabled())
}

/// Check a µL safety formula symbolically, recording spans and counters.
pub fn check_safety_traced(
    dcds: &Dcds,
    f: &Mu,
    opts: &SymOptions,
    obs: &Obs,
) -> Result<SymRun, SymError> {
    let mut run_span = span!(obs, "symbolic.check");
    let prop = extract_safety(f).map_err(SymError::NotSafety)?;
    let bad = clauses_from_bad(&prop.bad).map_err(SymError::UnsupportedBad)?;
    let mut counters = SymCounters::default();
    let reach = backward_reach(dcds, &prop.bad, bad, opts, obs, &mut counters);
    counters.publish(obs);
    run_span.set("iterations", counters.iterations);
    run_span.set("kept", counters.kept);
    obs.progress_flush(|| {
        format!(
            "symbolic done: {} iterations, {} clauses kept, peak frontier {}",
            counters.iterations, counters.kept, counters.peak_frontier
        )
    });
    let verdict = match reach {
        Reach::Unreachable => match prop.mode {
            SafetyMode::AlwaysGood => SymVerdict::Holds(None),
            SafetyMode::EventuallyBad => SymVerdict::Violated(None),
        },
        Reach::Reachable(trace) => match prop.mode {
            SafetyMode::AlwaysGood => SymVerdict::Violated(Some(trace)),
            SafetyMode::EventuallyBad => SymVerdict::Holds(Some(trace)),
        },
        Reach::Unknown(reason) => SymVerdict::Inconclusive(reason),
    };
    Ok(SymRun {
        verdict,
        mode: prop.mode,
        counters,
    })
}

enum Reach {
    Unreachable,
    Reachable(Trace),
    Unknown(String),
}

fn backward_reach(
    dcds: &Dcds,
    bad_formula: &Formula,
    bad_clauses: Vec<Clause>,
    opts: &SymOptions,
    obs: &Obs,
    counters: &mut SymCounters,
) -> Reach {
    let guards = guarded_constraints(&dcds.data);
    let init = &dcds.data.initial;

    let mut kept: Vec<ClauseCtx> = Vec::new();
    let mut keys: BTreeSet<ClauseKey> = BTreeSet::new();
    let mut frontier: Vec<Clause> = Vec::new();
    let mut unconfirmed_hit = false;
    let mut clause_budget_hit = false;

    // Seed with the bad condition itself (level 0).
    for c in bad_clauses {
        admit(c, &guards, &mut kept, &mut keys, &mut frontier, counters);
    }
    counters.peak_frontier = counters.peak_frontier.max(frontier.len() as u64);
    let seed_hits = frontier.iter().filter(|c| c.may_hold_in(init)).count() as u64;
    counters.init_hits += seed_hits;
    if seed_hits > 0 {
        // Depth 0: Bad at the initial instance directly.
        if holds_closed(bad_formula, init).unwrap_or(false) {
            return Reach::Reachable(Trace {
                states: vec![init.clone()],
                actions: Vec::new(),
                pool: dcds.data.pool.clone(),
            });
        }
        unconfirmed_hit = true;
    }

    let actions: Vec<ActionId> = (0..dcds.process.actions.len())
        .map(ActionId::from_index)
        .collect();

    let mut level = 0usize;
    loop {
        if frontier.is_empty() {
            // Fixpoint. One last, deeper confirmation attempt if some hit
            // never confirmed, then report.
            if !unconfirmed_hit {
                return Reach::Unreachable;
            }
            if let Some(trace) =
                confirm_reach(dcds, bad_formula, level + 2, opts.confirm_nodes, counters)
            {
                return Reach::Reachable(trace);
            }
            return Reach::Unknown(
                "fixpoint reached, but a clause covering the initial instance could not be \
                 confirmed concretely (likely an over-approximation artefact)"
                    .to_owned(),
            );
        }
        if level >= opts.max_iters {
            return Reach::Unknown(format!(
                "iteration budget exhausted after {} levels ({} clauses kept)",
                level, counters.kept
            ));
        }
        if clause_budget_hit {
            return Reach::Unknown(format!(
                "clause budget exhausted ({} clauses kept)",
                counters.kept
            ));
        }
        level += 1;
        counters.iterations += 1;
        let _iter_span = span!(obs, "symbolic.iter", level = level as u64);

        let mut new_frontier: Vec<Clause> = Vec::new();
        'outer: for target in &frontier {
            for &action in &actions {
                counters.regressions += 1;
                let budget = opts.max_clauses.saturating_sub(keys.len()).max(1);
                let out = regress(dcds, target, action, budget);
                counters.candidates += out.candidates;
                counters.qminus_dropped += out.qminus_dropped;
                counters.cond_dropped += out.cond_dropped;
                counters.unsat_dropped += out.candidates - out.clauses.len() as u64;
                if out.truncated {
                    clause_budget_hit = true;
                }
                for cand in out.clauses {
                    admit(
                        cand,
                        &guards,
                        &mut kept,
                        &mut keys,
                        &mut new_frontier,
                        counters,
                    );
                    if keys.len() >= opts.max_clauses {
                        clause_budget_hit = true;
                        break 'outer;
                    }
                }
            }
        }

        counters.peak_frontier = counters.peak_frontier.max(new_frontier.len() as u64);
        event!(
            obs,
            "sym_iter",
            level = level,
            frontier = frontier.len(),
            new_clauses = new_frontier.len(),
            kept = counters.kept,
            candidates = counters.candidates,
            subsumed = counters.subsumed,
        );
        // Any new clause covering the initial instance?
        let hits = new_frontier.iter().filter(|c| c.may_hold_in(init)).count() as u64;
        counters.init_hits += hits;
        if hits > 0 {
            if let Some(trace) =
                confirm_reach(dcds, bad_formula, level, opts.confirm_nodes, counters)
            {
                return Reach::Reachable(trace);
            }
            unconfirmed_hit = true;
        }
        frontier = new_frontier;
    }
}

/// Normalised-candidate admission: constraint pruning, exact-duplicate
/// and subsumption filtering, then keep.
fn admit(
    cand: Clause,
    guards: &[crate::constraints::GuardedConstraint],
    kept: &mut Vec<ClauseCtx>,
    keys: &mut BTreeSet<ClauseKey>,
    frontier: &mut Vec<Clause>,
    counters: &mut SymCounters,
) {
    if clause_violates(&cand, guards) {
        counters.constraint_pruned += 1;
        return;
    }
    if !keys.insert(cand.key()) {
        counters.exact_dups += 1;
        return;
    }
    let ctx = ClauseCtx::new(cand);
    if kept.iter().any(|k| subsumes(&k.clause, &ctx)) {
        counters.subsumed += 1;
        return;
    }
    counters.kept += 1;
    frontier.push(ctx.clause.clone());
    kept.push(ctx);
}

/// Bounded concrete reachability search for the bad condition, over the
/// same commitment-representative successor construction as the explicit
/// engines — so a returned trace is a genuine run of the abstraction.
fn confirm_reach(
    dcds: &Dcds,
    bad: &Formula,
    depth: usize,
    node_budget: usize,
    counters: &mut SymCounters,
) -> Option<Trace> {
    counters.confirm_runs += 1;
    let mut pool = dcds.working_pool();
    let init = dcds.data.initial.clone();
    let found = if dcds.is_deterministic() {
        let start = DetState {
            instance: init,
            call_map: BTreeMap::new(),
        };
        bfs(
            start,
            |s| s.instance.clone(),
            |s| {
                det_successors_by_commitment(dcds, s, &mut pool)
                    .into_iter()
                    .map(|(a, sigma, _, next)| (a, sigma, next))
                    .collect()
            },
            bad,
            depth,
            node_budget,
            counters,
        )
    } else {
        bfs(
            init,
            |s: &Instance| s.clone(),
            |s| {
                nondet_successors_by_commitment(dcds, s, &mut pool)
                    .into_iter()
                    .map(|(a, sigma, _, next)| (a, sigma, next))
                    .collect()
            },
            bad,
            depth,
            node_budget,
            counters,
        )
    };
    found.map(|(states, actions)| Trace {
        states,
        actions,
        pool,
    })
}

/// One trace step: the action fired and the assignment it fired under.
type Step = (ActionId, Assignment);
/// BFS search node: (state, parent index, action from parent).
type SearchNode<S> = (S, usize, Option<Step>);

/// Generic breadth-first search over either state representation.
fn bfs<S: Ord + Clone>(
    start: S,
    instance_of: impl Fn(&S) -> Instance,
    mut successors: impl FnMut(&S) -> Vec<(ActionId, Assignment, S)>,
    bad: &Formula,
    depth: usize,
    node_budget: usize,
    counters: &mut SymCounters,
) -> Option<(Vec<Instance>, Vec<Step>)> {
    let mut nodes: Vec<SearchNode<S>> = vec![(start.clone(), 0, None)];
    let mut visited: BTreeSet<S> = BTreeSet::new();
    visited.insert(start);
    let mut queue: VecDeque<(usize, usize)> = VecDeque::new(); // (node ix, depth)
    queue.push_back((0, 0));
    while let Some((ix, d)) = queue.pop_front() {
        counters.confirm_nodes += 1;
        let inst = instance_of(&nodes[ix].0);
        if holds_closed(bad, &inst).unwrap_or(false) {
            return Some(unwind(&nodes, ix, &instance_of));
        }
        if d >= depth || nodes.len() >= node_budget {
            continue;
        }
        let state = nodes[ix].0.clone();
        for (a, sigma, next) in successors(&state) {
            if visited.insert(next.clone()) {
                nodes.push((next, ix, Some((a, sigma))));
                queue.push_back((nodes.len() - 1, d + 1));
            }
        }
    }
    None
}

fn unwind<S>(
    nodes: &[SearchNode<S>],
    mut ix: usize,
    instance_of: &impl Fn(&S) -> Instance,
) -> (Vec<Instance>, Vec<Step>) {
    let mut states = Vec::new();
    let mut actions = Vec::new();
    loop {
        let (state, parent, step) = &nodes[ix];
        states.push(instance_of(state));
        match step {
            Some((a, sigma)) => {
                actions.push((*a, sigma.clone()));
                ix = *parent;
            }
            None => break,
        }
    }
    states.reverse();
    actions.reverse();
    (states, actions)
}

/// Render a trace for human consumption (stderr of the CLI).
pub fn render_trace(trace: &Trace, dcds: &Dcds) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for (i, state) in trace.states.iter().enumerate() {
        if i == 0 {
            let _ = writeln!(out, "  state 0 (initial):");
        } else {
            let (action, sigma) = &trace.actions[i - 1];
            let name = &dcds.process.action(*action).name;
            let args: Vec<String> = sigma
                .iter()
                .map(|(v, c)| format!("{}={}", v.name(), trace.pool.name(*c)))
                .collect();
            let _ = writeln!(out, "  state {i} (after {}({})):", name, args.join(", "));
        }
        let shown = dcds_reldata::InstanceDisplay::new(state, &dcds.data.schema, &trace.pool);
        for line in shown.to_string().lines() {
            let _ = writeln!(out, "    {line}");
        }
    }
    out
}

/// Compile a bad condition into clauses: negation-normal form, then
/// disjunctive normal form, each disjunct one clause. Universal
/// quantification and negated relational atoms are outside the fragment.
pub fn clauses_from_bad(f: &Formula) -> Result<Vec<Clause>, String> {
    // Pre-bind the free variables so they co-refer across disjuncts and
    // quantifier push/pop stays properly nested.
    let mut env: Vec<(dcds_folang::Var, u32)> = Vec::new();
    let mut next: u32 = 0;
    for v in f.free_vars() {
        env.push((v, next));
        next += 1;
    }
    let parts = dnf(f, true, &mut env, &mut next)?;
    let mut out = Vec::new();
    for p in parts {
        let clause = Clause {
            atoms: p.atoms,
            eqs: p.eqs,
            neqs: p.neqs,
            level: 0,
        };
        if let Some(n) = clause.normalize() {
            out.push(n);
        }
    }
    Ok(out)
}

#[derive(Debug, Clone, Default)]
struct Part {
    atoms: Vec<(dcds_reldata::RelId, Vec<crate::clause::STerm>)>,
    eqs: Vec<(crate::clause::STerm, crate::clause::STerm)>,
    neqs: Vec<(crate::clause::STerm, crate::clause::STerm)>,
}

fn merge(a: &Part, b: &Part) -> Part {
    let mut out = a.clone();
    out.atoms.extend(b.atoms.iter().cloned());
    out.eqs.extend(b.eqs.iter().cloned());
    out.neqs.extend(b.neqs.iter().cloned());
    out
}

fn cross(xs: Vec<Part>, ys: Vec<Part>) -> Vec<Part> {
    let mut out = Vec::with_capacity(xs.len() * ys.len());
    for x in &xs {
        for y in &ys {
            out.push(merge(x, y));
        }
    }
    out
}

fn dnf(
    f: &Formula,
    pos: bool,
    env: &mut Vec<(dcds_folang::Var, u32)>,
    next: &mut u32,
) -> Result<Vec<Part>, String> {
    use crate::clause::STerm;
    use dcds_folang::QTerm;
    let term = |t: &QTerm, env: &mut Vec<(dcds_folang::Var, u32)>, next: &mut u32| match t {
        QTerm::Const(c) => STerm::Const(*c),
        QTerm::Var(v) => {
            if let Some((_, id)) = env.iter().rev().find(|(w, _)| w == v) {
                STerm::Var(*id)
            } else {
                let id = *next;
                *next += 1;
                env.push((v.clone(), id));
                STerm::Var(id)
            }
        }
    };
    match (f, pos) {
        (Formula::True, true) | (Formula::False, false) => Ok(vec![Part::default()]),
        (Formula::True, false) | (Formula::False, true) => Ok(Vec::new()),
        (Formula::Atom(rel, ts), true) => {
            let mapped: Vec<_> = ts.iter().map(|t| term(t, env, next)).collect();
            Ok(vec![Part {
                atoms: vec![(*rel, mapped)],
                ..Part::default()
            }])
        }
        (Formula::Atom(rel, _), false) => Err(format!(
            "negated relational atom over relation #{} (clauses are positive-existential)",
            rel.index()
        )),
        (Formula::Eq(a, b), _) => {
            let x = term(a, env, next);
            let y = term(b, env, next);
            let mut p = Part::default();
            if pos {
                p.eqs.push((x, y));
            } else {
                p.neqs.push((x, y));
            }
            Ok(vec![p])
        }
        (Formula::Not(g), _) => dnf(g, !pos, env, next),
        (Formula::And(g, h), true) | (Formula::Or(g, h), false) => {
            let a = dnf(g, pos, env, next)?;
            let b = dnf(h, pos, env, next)?;
            Ok(cross(a, b))
        }
        (Formula::And(g, h), false) | (Formula::Or(g, h), true) => {
            let mut a = dnf(g, pos, env, next)?;
            a.extend(dnf(h, pos, env, next)?);
            Ok(a)
        }
        (Formula::Implies(g, h), true) => {
            let mut a = dnf(g, false, env, next)?;
            a.extend(dnf(h, true, env, next)?);
            Ok(a)
        }
        (Formula::Implies(g, h), false) => {
            let a = dnf(g, true, env, next)?;
            let b = dnf(h, false, env, next)?;
            Ok(cross(a, b))
        }
        (Formula::Exists(v, g), true) | (Formula::Forall(v, g), false) => {
            let scope = env.len();
            let id = *next;
            *next += 1;
            env.push((v.clone(), id));
            let out = dnf(g, pos, env, next);
            env.truncate(scope);
            out
        }
        (Formula::Exists(_, _), false) => {
            Err("universal quantification (negated ∃) in the bad condition".to_owned())
        }
        (Formula::Forall(_, _), true) => {
            Err("universal quantification in the bad condition".to_owned())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcds_folang::QTerm;
    use dcds_reldata::RelId;

    #[test]
    fn dnf_splits_disjunctions() {
        // ∃x. R(x) ∨ S(x, x)
        let f = Formula::exists(
            "X",
            Formula::Atom(RelId::from_index(0), vec![QTerm::var("X")]).or(Formula::Atom(
                RelId::from_index(1),
                vec![QTerm::var("X"), QTerm::var("X")],
            )),
        );
        let cs = clauses_from_bad(&f).unwrap();
        assert_eq!(cs.len(), 2);
    }

    #[test]
    fn negated_invariant_compiles_to_neq() {
        // ¬(∀Y. Flag(Y) → Y = c)  ⇒  ∃Y. Flag(Y) ∧ Y ≠ c
        let inv = Formula::forall(
            "Y",
            Formula::Atom(RelId::from_index(0), vec![QTerm::var("Y")]).implies(Formula::eq(
                QTerm::var("Y"),
                QTerm::Const(dcds_reldata::Value::from_index(0)),
            )),
        );
        let bad = Formula::Not(Box::new(inv));
        let cs = clauses_from_bad(&bad).unwrap();
        assert_eq!(cs.len(), 1);
        assert_eq!(cs[0].atoms.len(), 1);
        assert_eq!(cs[0].neqs.len(), 1);
    }

    #[test]
    fn universals_are_rejected() {
        let f = Formula::forall(
            "X",
            Formula::Atom(RelId::from_index(0), vec![QTerm::var("X")]),
        );
        assert!(clauses_from_bad(&f).is_err());
    }
}
