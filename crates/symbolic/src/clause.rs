//! Symbolic clauses: existentially quantified conjunctions over the schema.
//!
//! A [`Clause`] denotes the set of instances
//!
//! ```text
//!     ∃ x̄ .  ⋀ atoms  ∧  ⋀ eqs  ∧  ⋀ neqs
//! ```
//!
//! where every variable is implicitly existentially quantified over the
//! (infinite) value domain and terms may contain *applications* of
//! deterministic service functions ([`STerm::App`]): `f(t)` stands for the
//! value the deterministic service `f` returned (or will return) for `t` —
//! the persistent service-call map of the deterministic semantics makes
//! that a single well-defined value per argument tuple, which is exactly
//! the congruence the [`dcds_analysis::cc`] engine closes over.
//!
//! Quantifying over the full domain rather than the active domain makes a
//! clause an *over-approximation* of the corresponding active-domain
//! formula — the safe direction for the backward-reachability engine: a
//! SAFE verdict (no clause covers the initial instance at the fixpoint) is
//! sound, and purported hits are confirmed concretely before an UNSAFE
//! verdict is reported.

use dcds_analysis::cc::{Cc, TermId};
use dcds_core::FuncId;
use dcds_reldata::{Instance, RelId, Value};
use std::collections::BTreeMap;

/// A clause-local variable (dense indices, renamed canonically on
/// normalisation).
pub type SVar = u32;

/// A symbolic term.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum STerm {
    /// A constant value.
    Const(Value),
    /// An existentially quantified variable.
    Var(SVar),
    /// The result of deterministic service `f` on the argument terms.
    App(FuncId, Vec<STerm>),
}

impl STerm {
    /// Does `v` occur anywhere in the term?
    pub fn contains_var(&self, v: SVar) -> bool {
        match self {
            STerm::Const(_) => false,
            STerm::Var(w) => *w == v,
            STerm::App(_, args) => args.iter().any(|a| a.contains_var(v)),
        }
    }

    /// Replace every occurrence of `v` by `t`.
    pub fn substitute(&self, v: SVar, t: &STerm) -> STerm {
        match self {
            STerm::Const(_) => self.clone(),
            STerm::Var(w) => {
                if *w == v {
                    t.clone()
                } else {
                    self.clone()
                }
            }
            STerm::App(f, args) => {
                STerm::App(*f, args.iter().map(|a| a.substitute(v, t)).collect())
            }
        }
    }

    fn collect_vars(&self, out: &mut Vec<SVar>) {
        match self {
            STerm::Const(_) => {}
            STerm::Var(v) => out.push(*v),
            STerm::App(_, args) => {
                for a in args {
                    a.collect_vars(out);
                }
            }
        }
    }

    fn rename(&self, map: &BTreeMap<SVar, SVar>) -> STerm {
        match self {
            STerm::Const(_) => self.clone(),
            STerm::Var(v) => STerm::Var(map[v]),
            STerm::App(f, args) => STerm::App(*f, args.iter().map(|a| a.rename(map)).collect()),
        }
    }

    /// Intern the term into a congruence closure. Variables key by their
    /// clause-local index, constants by their pool index, applications by
    /// the service function's index.
    pub fn intern(&self, cc: &mut Cc) -> TermId {
        match self {
            STerm::Const(c) => cc.constant(c.index() as u64),
            STerm::Var(v) => cc.variable(*v as u64),
            STerm::App(f, args) => {
                let ids: Vec<TermId> = args.iter().map(|a| a.intern(cc)).collect();
                cc.app(f.index() as u64, &ids)
            }
        }
    }
}

/// Structural content of a clause, used for exact-duplicate detection
/// (levels are bookkeeping, not meaning).
pub type ClauseKey = (
    Vec<(RelId, Vec<STerm>)>,
    Vec<(STerm, STerm)>,
    Vec<(STerm, STerm)>,
);

/// An existentially quantified conjunction (see module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Clause {
    /// Relational atoms that must all hold.
    pub atoms: Vec<(RelId, Vec<STerm>)>,
    /// Residual equalities (normalisation eliminates solvable ones, so
    /// these involve applications on at least one side).
    pub eqs: Vec<(STerm, STerm)>,
    /// Disequalities.
    pub neqs: Vec<(STerm, STerm)>,
    /// Number of regression steps from the bad condition (0 = Bad itself).
    /// A state covered by this clause *may* reach Bad in `level` steps —
    /// "may" because regression over-approximates; the engine confirms
    /// concretely before claiming so.
    pub level: u32,
}

impl Clause {
    /// The smallest variable index not used by the clause.
    pub fn next_var(&self) -> SVar {
        let mut vars = Vec::new();
        self.for_each_term(|t| t.collect_vars(&mut vars));
        vars.iter().copied().max().map_or(0, |m| m + 1)
    }

    fn for_each_term(&self, mut f: impl FnMut(&STerm)) {
        for (_, ts) in &self.atoms {
            for t in ts {
                f(t);
            }
        }
        for (a, b) in self.eqs.iter().chain(self.neqs.iter()) {
            f(a);
            f(b);
        }
    }

    fn map_terms(&mut self, mut f: impl FnMut(&STerm) -> STerm) {
        for (_, ts) in &mut self.atoms {
            for t in ts.iter_mut() {
                *t = f(t);
            }
        }
        for (a, b) in self.eqs.iter_mut().chain(self.neqs.iter_mut()) {
            *a = f(a);
            *b = f(b);
        }
    }

    /// Structural key ignoring the level.
    pub fn key(&self) -> ClauseKey {
        (self.atoms.clone(), self.eqs.clone(), self.neqs.clone())
    }

    /// Normalise the clause; `None` means it is unsatisfiable (dropping it
    /// is sound — it covers no state).
    ///
    /// Steps: solve variable equalities by substitution (with occurs
    /// check), drop tautological (dis)equalities, reject contradictory
    /// ones, discharge disequalities on otherwise-unconstrained variables
    /// (satisfiable over the infinite domain), run the congruence closure
    /// over the residue, and rename variables canonically.
    pub fn normalize(mut self) -> Option<Clause> {
        // Solve var = term equalities.
        loop {
            let mut changed = false;
            let mut i = 0;
            while i < self.eqs.len() {
                let (a, b) = self.eqs[i].clone();
                if a == b {
                    self.eqs.swap_remove(i);
                    changed = true;
                    continue;
                }
                match (&a, &b) {
                    (STerm::Const(_), STerm::Const(_)) => return None, // distinct constants
                    (STerm::Var(v), t) if !t.contains_var(*v) => {
                        self.eqs.swap_remove(i);
                        let (v, t) = (*v, t.clone());
                        self.map_terms(|s| s.substitute(v, &t));
                        changed = true;
                    }
                    (t, STerm::Var(v)) if !t.contains_var(*v) => {
                        self.eqs.swap_remove(i);
                        let (v, t) = (*v, t.clone());
                        self.map_terms(|s| s.substitute(v, &t));
                        changed = true;
                    }
                    _ => i += 1,
                }
            }
            if !changed {
                break;
            }
        }

        // Tautological / contradictory disequalities.
        let mut i = 0;
        while i < self.neqs.len() {
            let (a, b) = &self.neqs[i];
            if a == b {
                return None; // t ≠ t
            }
            if let (STerm::Const(x), STerm::Const(y)) = (a, b) {
                debug_assert_ne!(x, y);
                self.neqs.swap_remove(i); // distinct constants: always true
                continue;
            }
            i += 1;
        }

        // A variable occurring only in disequalities (and not inside the
        // other side of its own disequality) can always pick a value off
        // the finitely many forbidden ones — the disequality is vacuous.
        let mut bound = Vec::new();
        for (_, ts) in &self.atoms {
            for t in ts {
                t.collect_vars(&mut bound);
            }
        }
        for (a, b) in &self.eqs {
            a.collect_vars(&mut bound);
            b.collect_vars(&mut bound);
        }
        self.neqs.retain(|(a, b)| {
            let free = |t: &STerm, other: &STerm| match t {
                STerm::Var(v) => !bound.contains(v) && !other.contains_var(*v),
                _ => false,
            };
            !(free(a, b) || free(b, a))
        });

        // Order pairs canonically and deduplicate.
        for (a, b) in self.eqs.iter_mut().chain(self.neqs.iter_mut()) {
            if a > b {
                std::mem::swap(a, b);
            }
        }
        self.atoms.sort();
        self.atoms.dedup();
        self.eqs.sort();
        self.eqs.dedup();
        self.neqs.sort();
        self.neqs.dedup();

        // Congruence closure over the residue.
        if self.build_cc().conflict().is_some() {
            return None;
        }

        Some(self.canonical())
    }

    /// Build the congruence closure of the clause: intern every term,
    /// merge the equalities, register the disequalities.
    pub fn build_cc(&self) -> Cc {
        let mut cc = Cc::new();
        for (_, ts) in &self.atoms {
            for t in ts {
                t.intern(&mut cc);
            }
        }
        let eq_ids: Vec<(TermId, TermId)> = self
            .eqs
            .iter()
            .map(|(a, b)| (a.intern(&mut cc), b.intern(&mut cc)))
            .collect();
        let neq_ids: Vec<(TermId, TermId)> = self
            .neqs
            .iter()
            .map(|(a, b)| (a.intern(&mut cc), b.intern(&mut cc)))
            .collect();
        for (a, b) in eq_ids {
            cc.merge(a, b);
        }
        for (a, b) in neq_ids {
            cc.add_neq(a, b);
        }
        cc
    }

    /// Rename variables to first-occurrence order over the sorted clause,
    /// iterating until the renaming is stable (sorting can change the
    /// occurrence order, so a couple of rounds are needed; imperfect
    /// canonicalisation only weakens duplicate detection, never
    /// soundness — subsumption catches what renaming misses).
    fn canonical(mut self) -> Clause {
        for _ in 0..4 {
            let mut order = Vec::new();
            self.for_each_term(|t| t.collect_vars(&mut order));
            let mut map: BTreeMap<SVar, SVar> = BTreeMap::new();
            for v in order {
                let next = map.len() as SVar;
                map.entry(v).or_insert(next);
            }
            let before = self.clone();
            self.map_terms(|t| t.rename(&map));
            for (a, b) in self.eqs.iter_mut().chain(self.neqs.iter_mut()) {
                if a > b {
                    std::mem::swap(a, b);
                }
            }
            self.atoms.sort();
            self.eqs.sort();
            self.neqs.sort();
            if self == before {
                break;
            }
        }
        self
    }

    /// Permissive satisfaction check against a concrete instance: could a
    /// state with exactly these facts satisfy the clause for *some*
    /// interpretation of the service functions?
    ///
    /// Applications are abstracted to per-syntax variables (two
    /// syntactically equal applications stay equal; further congruence is
    /// ignored, which only makes the check more permissive). The check is
    /// **complete** — it never misses a real hit — and may report spurious
    /// ones, which the engine confirms concretely before trusting.
    pub fn may_hold_in(&self, inst: &Instance) -> bool {
        // Abstract applications to fresh variables, hash-consed per syntax.
        let mut next = self.next_var();
        let mut app_vars: BTreeMap<STerm, SVar> = BTreeMap::new();
        let mut flat = self.clone();
        flat.map_terms(|t| flatten_apps(t, &mut app_vars, &mut next));

        let atoms: Vec<(RelId, Vec<FlatTerm>)> = flat
            .atoms
            .iter()
            .map(|(r, ts)| (*r, ts.iter().map(flat_term).collect()))
            .collect();
        let mut env: BTreeMap<SVar, Value> = BTreeMap::new();
        match_atoms(&atoms, 0, inst, &mut env, &flat)
    }
}

/// A term with applications already abstracted away.
#[derive(Clone, Copy)]
enum FlatTerm {
    Const(Value),
    Var(SVar),
}

fn flat_term(t: &STerm) -> FlatTerm {
    match t {
        STerm::Const(c) => FlatTerm::Const(*c),
        STerm::Var(v) => FlatTerm::Var(*v),
        STerm::App(_, _) => unreachable!("applications were flattened"),
    }
}

fn flatten_apps(t: &STerm, app_vars: &mut BTreeMap<STerm, SVar>, next: &mut SVar) -> STerm {
    match t {
        STerm::Const(_) | STerm::Var(_) => t.clone(),
        STerm::App(_, _) => {
            let v = *app_vars.entry(t.clone()).or_insert_with(|| {
                let v = *next;
                *next += 1;
                v
            });
            STerm::Var(v)
        }
    }
}

fn match_atoms(
    atoms: &[(RelId, Vec<FlatTerm>)],
    ix: usize,
    inst: &Instance,
    env: &mut BTreeMap<SVar, Value>,
    flat: &Clause,
) -> bool {
    if ix == atoms.len() {
        return eqs_consistent(flat, env);
    }
    let (rel, terms) = &atoms[ix];
    for tuple in inst.tuples(*rel) {
        let vals = tuple.values();
        if vals.len() != terms.len() {
            continue;
        }
        let mut bound_here = Vec::new();
        let mut ok = true;
        for (t, &v) in terms.iter().zip(vals.iter()) {
            match t {
                FlatTerm::Const(c) => {
                    if *c != v {
                        ok = false;
                        break;
                    }
                }
                FlatTerm::Var(x) => match env.get(x) {
                    Some(&w) => {
                        if w != v {
                            ok = false;
                            break;
                        }
                    }
                    None => {
                        env.insert(*x, v);
                        bound_here.push(*x);
                    }
                },
            }
        }
        if ok && match_atoms(atoms, ix + 1, inst, env, flat) {
            return true;
        }
        for x in bound_here {
            env.remove(&x);
        }
    }
    false
}

/// After the atoms are matched, check the (application-free) equalities
/// and disequalities: variables matched to instance values become
/// constants, unmatched variables stay free (any value of the infinite
/// domain), and a congruence closure decides consistency.
fn eqs_consistent(flat: &Clause, env: &BTreeMap<SVar, Value>) -> bool {
    let mut cc = Cc::new();
    let id = |cc: &mut Cc, t: &STerm| match t {
        STerm::Const(c) => cc.constant(c.index() as u64),
        STerm::Var(v) => match env.get(v) {
            Some(w) => cc.constant(w.index() as u64),
            None => cc.variable(*v as u64),
        },
        STerm::App(_, _) => unreachable!("applications were flattened"),
    };
    let eq_ids: Vec<_> = flat
        .eqs
        .iter()
        .map(|(a, b)| (id(&mut cc, a), id(&mut cc, b)))
        .collect();
    let neq_ids: Vec<_> = flat
        .neqs
        .iter()
        .map(|(a, b)| (id(&mut cc, a), id(&mut cc, b)))
        .collect();
    for (a, b) in eq_ids {
        cc.merge(a, b);
    }
    for (a, b) in neq_ids {
        cc.add_neq(a, b);
    }
    cc.conflict().is_none()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(ix: usize) -> RelId {
        RelId::from_index(ix)
    }

    fn val(ix: usize) -> Value {
        Value::from_index(ix)
    }

    fn func(ix: usize) -> FuncId {
        FuncId::from_index(ix)
    }

    #[test]
    fn normalize_solves_var_equalities() {
        let c = Clause {
            atoms: vec![(rel(0), vec![STerm::Var(0), STerm::Var(1)])],
            eqs: vec![(STerm::Var(1), STerm::Const(val(3)))],
            neqs: vec![],
            level: 0,
        };
        let n = c.normalize().unwrap();
        assert!(n.eqs.is_empty());
        assert_eq!(n.atoms[0].1[1], STerm::Const(val(3)));
    }

    #[test]
    fn normalize_rejects_contradictions() {
        let distinct = Clause {
            atoms: vec![],
            eqs: vec![(STerm::Const(val(0)), STerm::Const(val(1)))],
            neqs: vec![],
            level: 0,
        };
        assert!(distinct.normalize().is_none());
        let self_neq = Clause {
            atoms: vec![],
            eqs: vec![],
            neqs: vec![(STerm::Var(0), STerm::Var(0))],
            level: 0,
        };
        assert!(self_neq.normalize().is_none());
        // x = a, x != a via closure.
        let closed = Clause {
            atoms: vec![(rel(0), vec![STerm::Var(0)])],
            eqs: vec![(STerm::Var(0), STerm::Const(val(0)))],
            neqs: vec![(STerm::Var(0), STerm::Const(val(0)))],
            level: 0,
        };
        assert!(closed.normalize().is_none());
    }

    #[test]
    fn normalize_discharges_vacuous_disequalities() {
        // y occurs only in the disequality: always satisfiable.
        let c = Clause {
            atoms: vec![(rel(0), vec![STerm::Var(0)])],
            eqs: vec![],
            neqs: vec![(STerm::Var(0), STerm::Var(1))],
            level: 0,
        };
        let n = c.normalize().unwrap();
        assert!(n.neqs.is_empty());
        // But x != f(x) must stay: the interpretation of f is not ours to
        // choose.
        let c = Clause {
            atoms: vec![],
            eqs: vec![],
            neqs: vec![(STerm::Var(0), STerm::App(func(0), vec![STerm::Var(0)]))],
            level: 0,
        };
        let n = c.normalize().unwrap();
        assert_eq!(n.neqs.len(), 1);
    }

    #[test]
    fn canonical_renaming_is_order_insensitive() {
        let a = Clause {
            atoms: vec![
                (rel(0), vec![STerm::Var(7)]),
                (rel(1), vec![STerm::Var(7), STerm::Var(2)]),
            ],
            eqs: vec![],
            neqs: vec![],
            level: 0,
        };
        let b = Clause {
            atoms: vec![
                (rel(1), vec![STerm::Var(5), STerm::Var(9)]),
                (rel(0), vec![STerm::Var(5)]),
            ],
            eqs: vec![],
            neqs: vec![],
            level: 1,
        };
        assert_eq!(a.normalize().unwrap().key(), b.normalize().unwrap().key());
    }

    #[test]
    fn congruence_closes_over_applications() {
        // f(x) = a, f(y) = b, x = y, a != b is unsatisfiable.
        let f = func(0);
        let c = Clause {
            atoms: vec![],
            eqs: vec![
                (STerm::App(f, vec![STerm::Var(0)]), STerm::Const(val(0))),
                (STerm::App(f, vec![STerm::Var(1)]), STerm::Const(val(1))),
                (STerm::Var(0), STerm::Var(1)),
            ],
            neqs: vec![],
            level: 0,
        };
        assert!(c.normalize().is_none());
    }

    #[test]
    fn may_hold_in_matches_with_bindings() {
        let mut inst = Instance::new();
        inst.insert(rel(0), dcds_reldata::Tuple::from([val(0), val(1)]));
        inst.insert(rel(0), dcds_reldata::Tuple::from([val(2), val(2)]));

        // ∃x. R(x, x) — matched by (2,2).
        let c = Clause {
            atoms: vec![(rel(0), vec![STerm::Var(0), STerm::Var(0)])],
            eqs: vec![],
            neqs: vec![],
            level: 0,
        };
        assert!(c.may_hold_in(&inst));

        // ∃x y. R(x, y) ∧ x ≠ y — matched by (0,1).
        let c = Clause {
            atoms: vec![(rel(0), vec![STerm::Var(0), STerm::Var(1)])],
            eqs: vec![],
            neqs: vec![(STerm::Var(0), STerm::Var(1))],
            level: 0,
        };
        assert!(c.may_hold_in(&inst));

        // ∃x. R(x, x) ∧ x = v0 — no such fact.
        let c = Clause {
            atoms: vec![(rel(0), vec![STerm::Var(0), STerm::Var(0)])],
            eqs: vec![(STerm::Var(0), STerm::Const(val(0)))],
            neqs: vec![],
            level: 0,
        };
        assert!(!c.may_hold_in(&inst));
    }

    #[test]
    fn may_hold_in_abstracts_applications() {
        let mut inst = Instance::new();
        inst.insert(rel(0), dcds_reldata::Tuple::from([val(0)]));
        // ∃x. R(f(x)) — the service could have returned v0.
        let c = Clause {
            atoms: vec![(rel(0), vec![STerm::App(func(0), vec![STerm::Var(0)])])],
            eqs: vec![],
            neqs: vec![],
            level: 0,
        };
        assert!(c.may_hold_in(&inst));
    }
}
