//! Pruning clauses against the data layer's integrity constraints.
//!
//! Every state of the concrete transition system — the initial instance
//! and every commitment-filtered successor — satisfies the equality and FO
//! constraints of the data layer. A clause whose every model violates some
//! constraint therefore covers no reachable state and can be dropped from
//! the backward-reachable set without losing soundness.
//!
//! Full constraint reasoning is out of scope; this module recognises the
//! *guarded* shape
//!
//! ```text
//!     ∀ x̄ .  A₁ ∧ ... ∧ Aₖ  →  D₁ ∨ ... ∨ Dₘ        Dⱼ = ⋀ equalities
//! ```
//!
//! which covers both [`EqualityConstraint`](dcds_folang::EqualityConstraint)s
//! (`Q → ⋀ eqs` with a
//! conjunctive premise; a single disjunct) and the `assert` sentences of
//! spec files when they normalise to nested `∀`/`→` over equality
//! disjunctions — e.g. both constraints of `specs/travel_request.dcds`.
//!
//! A clause is pruned when the constraint body embeds into its atoms (a
//! *forced* match: in every model of the clause the body then holds for
//! those witnesses) and every disjunct, added to the clause's congruence
//! closure, yields a conflict.

use crate::clause::Clause;
use dcds_analysis::cc::{Cc, TermId};
use dcds_core::DataLayer;
use dcds_folang::{Formula, QTerm, Ucq, Var};
use dcds_reldata::RelId;
use std::collections::BTreeMap;

/// A constraint in the guarded fragment (see module docs).
#[derive(Debug, Clone)]
pub struct GuardedConstraint {
    /// Conjunctive premise: relational atoms.
    pub body_atoms: Vec<(RelId, Vec<QTerm>)>,
    /// Conjunctive premise: equalities (must be *entailed* by the clause
    /// for the match to be forced).
    pub body_eqs: Vec<(QTerm, QTerm)>,
    /// Consequent: disjunction of equality conjunctions. Empty means the
    /// premise is forbidden outright.
    pub disjuncts: Vec<Vec<(QTerm, QTerm)>>,
}

/// Extract every constraint of the data layer that fits the guarded
/// fragment (the rest are simply not used for pruning).
pub fn guarded_constraints(data: &DataLayer) -> Vec<GuardedConstraint> {
    let mut out = Vec::new();
    for c in &data.constraints {
        if let Some(g) = from_equality_constraint(&c.query, &c.equalities) {
            out.push(g);
        }
    }
    for c in &data.fo_constraints {
        if let Some(g) = from_sentence(&c.sentence) {
            out.push(g);
        }
    }
    out
}

/// `Q → ⋀ eqs` with a UCQ premise: one guarded constraint per premise
/// disjunct, each with the single equality-conjunction consequent.
fn from_equality_constraint(
    query: &Formula,
    equalities: &[(QTerm, QTerm)],
) -> Option<GuardedConstraint> {
    let ucq = Ucq::from_formula(query)?;
    // Multiple premise disjuncts would need one constraint each; keep the
    // common single-disjunct case (keys, functional dependencies).
    if ucq.disjuncts.len() != 1 {
        return None;
    }
    let cq = &ucq.disjuncts[0];
    Some(GuardedConstraint {
        body_atoms: cq.atoms.clone(),
        body_eqs: cq.equalities.clone(),
        disjuncts: vec![equalities.to_vec()],
    })
}

/// Normalise `∀ x̄ . body → consequent` nests (conjunction-of-atoms bodies,
/// equality-disjunction consequents).
fn from_sentence(f: &Formula) -> Option<GuardedConstraint> {
    let mut body_atoms = Vec::new();
    let mut body_eqs = Vec::new();
    let mut cur = f;
    loop {
        match cur {
            Formula::Forall(_, g) => cur = g,
            Formula::Implies(p, q) => {
                collect_premise(p, &mut body_atoms, &mut body_eqs)?;
                cur = q;
            }
            _ => break,
        }
    }
    let disjuncts = collect_consequent(cur)?;
    // A constraint with no relational guard cannot be matched against
    // clause atoms; skip it.
    if body_atoms.is_empty() && !disjuncts.is_empty() {
        return None;
    }
    Some(GuardedConstraint {
        body_atoms,
        body_eqs,
        disjuncts,
    })
}

fn collect_premise(
    f: &Formula,
    atoms: &mut Vec<(RelId, Vec<QTerm>)>,
    eqs: &mut Vec<(QTerm, QTerm)>,
) -> Option<()> {
    match f {
        Formula::True => Some(()),
        Formula::Atom(rel, ts) => {
            atoms.push((*rel, ts.clone()));
            Some(())
        }
        Formula::Eq(a, b) => {
            eqs.push((a.clone(), b.clone()));
            Some(())
        }
        Formula::And(g, h) => {
            collect_premise(g, atoms, eqs)?;
            collect_premise(h, atoms, eqs)
        }
        _ => None,
    }
}

/// The consequent: `false`, or a disjunction whose leaves are equalities
/// (or conjunctions of equalities).
fn collect_consequent(f: &Formula) -> Option<Vec<Vec<(QTerm, QTerm)>>> {
    if matches!(f, Formula::False) {
        return Some(Vec::new());
    }
    let mut leaves = Vec::new();
    flatten_or(f, &mut leaves);
    let mut out = Vec::with_capacity(leaves.len());
    for leaf in leaves {
        let mut eqs = Vec::new();
        collect_eq_conj(leaf, &mut eqs)?;
        out.push(eqs);
    }
    Some(out)
}

fn flatten_or<'f>(f: &'f Formula, out: &mut Vec<&'f Formula>) {
    match f {
        Formula::Or(g, h) => {
            flatten_or(g, out);
            flatten_or(h, out);
        }
        _ => out.push(f),
    }
}

fn collect_eq_conj(f: &Formula, out: &mut Vec<(QTerm, QTerm)>) -> Option<()> {
    match f {
        Formula::Eq(a, b) => {
            out.push((a.clone(), b.clone()));
            Some(())
        }
        Formula::And(g, h) => {
            collect_eq_conj(g, out)?;
            collect_eq_conj(h, out)
        }
        _ => None,
    }
}

/// Is the clause unsatisfiable together with the guarded constraints?
///
/// Searches for a forced embedding of some constraint body into the
/// clause's atoms under which *every* consequent disjunct conflicts with
/// the clause's congruence closure.
pub fn clause_violates(clause: &Clause, guards: &[GuardedConstraint]) -> bool {
    if guards.is_empty() || clause.atoms.is_empty() {
        return false;
    }
    let mut cc = Cc::new();
    let mut atom_ids = Vec::with_capacity(clause.atoms.len());
    for (rel, ts) in &clause.atoms {
        let ids: Vec<TermId> = ts.iter().map(|t| t.intern(&mut cc)).collect();
        atom_ids.push((*rel, ids));
    }
    let eq_ids: Vec<(TermId, TermId)> = clause
        .eqs
        .iter()
        .map(|(a, b)| (a.intern(&mut cc), b.intern(&mut cc)))
        .collect();
    let neq_ids: Vec<(TermId, TermId)> = clause
        .neqs
        .iter()
        .map(|(a, b)| (a.intern(&mut cc), b.intern(&mut cc)))
        .collect();
    for (a, b) in eq_ids {
        cc.merge(a, b);
    }
    for (a, b) in neq_ids {
        cc.add_neq(a, b);
    }
    if cc.conflict().is_some() {
        return true; // already unsatisfiable on its own
    }
    guards.iter().any(|g| embeds_conflicting(g, &atom_ids, &cc))
}

fn embeds_conflicting(g: &GuardedConstraint, atom_ids: &[(RelId, Vec<TermId>)], cc: &Cc) -> bool {
    let mut binding: BTreeMap<Var, TermId> = BTreeMap::new();
    embed(g, atom_ids, cc, 0, &mut binding)
}

fn embed(
    g: &GuardedConstraint,
    atom_ids: &[(RelId, Vec<TermId>)],
    cc: &Cc,
    ix: usize,
    binding: &mut BTreeMap<Var, TermId>,
) -> bool {
    if ix == g.body_atoms.len() {
        return body_eqs_entailed(g, cc, binding) && all_disjuncts_conflict(g, cc, binding);
    }
    let (rel, terms) = &g.body_atoms[ix];
    for (crel, cids) in atom_ids {
        if crel != rel || cids.len() != terms.len() {
            continue;
        }
        let mut added = Vec::new();
        let mut ok = true;
        let mut scratch = cc.clone();
        for (t, &u) in terms.iter().zip(cids.iter()) {
            match t {
                QTerm::Const(c) => {
                    let id = scratch.constant(c.index() as u64);
                    if !scratch.same_class(id, u) {
                        ok = false;
                        break;
                    }
                }
                QTerm::Var(v) => match binding.get(v) {
                    Some(&b) => {
                        if !scratch.same_class(b, u) {
                            ok = false;
                            break;
                        }
                    }
                    None => {
                        binding.insert(v.clone(), u);
                        added.push(v.clone());
                    }
                },
            }
        }
        if ok && embed(g, atom_ids, cc, ix + 1, binding) {
            return true;
        }
        for v in added {
            binding.remove(&v);
        }
    }
    false
}

/// Premise equalities must be *entailed* (not merely consistent) for the
/// embedding to hold in every model of the clause.
fn body_eqs_entailed(g: &GuardedConstraint, cc: &Cc, binding: &BTreeMap<Var, TermId>) -> bool {
    let mut scratch = cc.clone();
    for (a, b) in &g.body_eqs {
        let (Some(x), Some(y)) = (
            qterm_id(a, &mut scratch, binding),
            qterm_id(b, &mut scratch, binding),
        ) else {
            return false;
        };
        if !scratch.same_class(x, y) {
            return false;
        }
    }
    true
}

fn all_disjuncts_conflict(g: &GuardedConstraint, cc: &Cc, binding: &BTreeMap<Var, TermId>) -> bool {
    g.disjuncts.iter().all(|disjunct| {
        let mut scratch = cc.clone();
        for (a, b) in disjunct {
            let (Some(x), Some(y)) = (
                qterm_id(a, &mut scratch, binding),
                qterm_id(b, &mut scratch, binding),
            ) else {
                // An equality over a variable the body did not bind cannot
                // be refuted; the disjunct might hold.
                return false;
            };
            scratch.merge(x, y);
        }
        scratch.conflict().is_some()
    })
}

fn qterm_id(t: &QTerm, cc: &mut Cc, binding: &BTreeMap<Var, TermId>) -> Option<TermId> {
    match t {
        QTerm::Const(c) => Some(cc.constant(c.index() as u64)),
        QTerm::Var(v) => binding.get(v).copied(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clause::STerm;
    use dcds_reldata::Value;

    fn rel(ix: usize) -> RelId {
        RelId::from_index(ix)
    }

    fn val(ix: usize) -> Value {
        Value::from_index(ix)
    }

    #[test]
    fn sentence_extraction_handles_nesting() {
        // ∀S. Status(S) → S = a ∨ S = b
        let s = Formula::forall(
            "S",
            Formula::Atom(rel(0), vec![QTerm::var("S")]).implies(
                Formula::eq(QTerm::var("S"), QTerm::Const(val(0)))
                    .or(Formula::eq(QTerm::var("S"), QTerm::Const(val(1)))),
            ),
        );
        let g = from_sentence(&s).unwrap();
        assert_eq!(g.body_atoms.len(), 1);
        assert_eq!(g.disjuncts.len(), 2);

        // V() → (∀S. Status(S) → S = a): nested implication merges bodies.
        let s2 = Formula::Atom(rel(1), vec![]).implies(Formula::forall(
            "S",
            Formula::Atom(rel(0), vec![QTerm::var("S")])
                .implies(Formula::eq(QTerm::var("S"), QTerm::Const(val(0)))),
        ));
        let g2 = from_sentence(&s2).unwrap();
        assert_eq!(g2.body_atoms.len(), 2);
        assert_eq!(g2.disjuncts.len(), 1);
    }

    #[test]
    fn violating_clause_is_pruned() {
        // Constraint: ∀S. Status(S) → S = a.  Clause: ∃S. Status(S) ∧ S ≠ a.
        let g = GuardedConstraint {
            body_atoms: vec![(rel(0), vec![QTerm::var("S")])],
            body_eqs: vec![],
            disjuncts: vec![vec![(QTerm::var("S"), QTerm::Const(val(0)))]],
        };
        let c = Clause {
            atoms: vec![(rel(0), vec![STerm::Var(0)])],
            eqs: vec![],
            neqs: vec![(STerm::Var(0), STerm::Const(val(0)))],
            level: 0,
        };
        assert!(clause_violates(&c, std::slice::from_ref(&g)));

        // Clause Status(a) is fine.
        let ok = Clause {
            atoms: vec![(rel(0), vec![STerm::Const(val(0))])],
            eqs: vec![],
            neqs: vec![],
            level: 0,
        };
        assert!(!clause_violates(&ok, &[g]));
    }

    #[test]
    fn unmatched_body_never_prunes() {
        let g = GuardedConstraint {
            body_atoms: vec![(rel(5), vec![QTerm::var("X")])],
            body_eqs: vec![],
            disjuncts: vec![],
        };
        let c = Clause {
            atoms: vec![(rel(0), vec![STerm::Var(0)])],
            eqs: vec![],
            neqs: vec![],
            level: 0,
        };
        assert!(!clause_violates(&c, &[g]));
    }

    #[test]
    fn forbidden_premise_prunes_on_match() {
        // ∀. V() → false, clause contains V().
        let g = GuardedConstraint {
            body_atoms: vec![(rel(1), vec![])],
            body_eqs: vec![],
            disjuncts: vec![],
        };
        let c = Clause {
            atoms: vec![(rel(1), vec![])],
            eqs: vec![],
            neqs: vec![],
            level: 0,
        };
        assert!(clause_violates(&c, &[g]));
    }
}
