//! Clause subsumption: the entailment check behind fixpoint detection.
//!
//! `C` subsumes `D` when every state satisfying `D` satisfies `C` — so `D`
//! adds nothing to the clause set and can be dropped. The check looks for
//! a homomorphism from `C`'s variables into `D`'s terms mapping every atom
//! of `C` onto an atom of `D` (positions compared modulo `D`'s congruence
//! closure), every equality of `C` onto an equality `D` entails, and every
//! disequality of `C` onto a disequality `D` entails.
//!
//! The search is sound but deliberately incomplete (application arguments
//! must be bound before an application position can be checked); a missed
//! subsumption only keeps a redundant clause around, never changes a
//! verdict.

use crate::clause::{Clause, STerm, SVar};
use dcds_analysis::cc::{Cc, TermId};
use dcds_reldata::RelId;
use std::collections::BTreeMap;

/// A kept clause together with its interned congruence closure, built once
/// and cloned per subsumption probe.
pub struct ClauseCtx {
    /// The clause itself.
    pub clause: Clause,
    /// Congruence closure of the clause's equalities and disequalities.
    cc: Cc,
    /// The clause's atoms with positions as closure term ids.
    atom_ids: Vec<(RelId, Vec<TermId>)>,
}

impl ClauseCtx {
    /// Intern a normalised clause.
    pub fn new(clause: Clause) -> ClauseCtx {
        let mut cc = Cc::new();
        let mut atom_ids = Vec::with_capacity(clause.atoms.len());
        for (rel, ts) in &clause.atoms {
            let ids: Vec<TermId> = ts.iter().map(|t| t.intern(&mut cc)).collect();
            atom_ids.push((*rel, ids));
        }
        let eq_ids: Vec<(TermId, TermId)> = clause
            .eqs
            .iter()
            .map(|(a, b)| (a.intern(&mut cc), b.intern(&mut cc)))
            .collect();
        let neq_ids: Vec<(TermId, TermId)> = clause
            .neqs
            .iter()
            .map(|(a, b)| (a.intern(&mut cc), b.intern(&mut cc)))
            .collect();
        for (a, b) in eq_ids {
            cc.merge(a, b);
        }
        for (a, b) in neq_ids {
            cc.add_neq(a, b);
        }
        ClauseCtx {
            clause,
            cc,
            atom_ids,
        }
    }
}

/// Does `c` subsume the clause interned in `d`?
pub fn subsumes(c: &Clause, d: &ClauseCtx) -> bool {
    let mut cc = d.cc.clone();
    let mut binding: BTreeMap<SVar, TermId> = BTreeMap::new();
    match_atoms(c, d, 0, &mut cc, &mut binding)
}

fn match_atoms(
    c: &Clause,
    d: &ClauseCtx,
    ix: usize,
    cc: &mut Cc,
    binding: &mut BTreeMap<SVar, TermId>,
) -> bool {
    if ix == c.atoms.len() {
        return side_conditions(c, cc, binding);
    }
    let (rel, terms) = &c.atoms[ix];
    for (drel, dids) in &d.atom_ids {
        if drel != rel || dids.len() != terms.len() {
            continue;
        }
        let mut added: Vec<SVar> = Vec::new();
        let mut ok = true;
        for (t, &u) in terms.iter().zip(dids.iter()) {
            if !match_term(t, u, cc, binding, &mut added) {
                ok = false;
                break;
            }
        }
        if ok && match_atoms(c, d, ix + 1, cc, binding) {
            return true;
        }
        for v in added {
            binding.remove(&v);
        }
    }
    false
}

/// Match one term of `C` against a term id of `D` (modulo `D`'s closure).
fn match_term(
    t: &STerm,
    u: TermId,
    cc: &mut Cc,
    binding: &mut BTreeMap<SVar, TermId>,
    added: &mut Vec<SVar>,
) -> bool {
    match t {
        STerm::Var(v) => match binding.get(v) {
            Some(&b) => cc.same_class(b, u),
            None => {
                binding.insert(*v, u);
                added.push(*v);
                true
            }
        },
        _ => match resolve(t, cc, binding) {
            Some(id) => cc.same_class(id, u),
            None => false,
        },
    }
}

/// Build the term id of `t` under the current binding; `None` when an
/// unbound variable blocks it (the probe then fails — incompleteness, not
/// unsoundness).
fn resolve(t: &STerm, cc: &mut Cc, binding: &BTreeMap<SVar, TermId>) -> Option<TermId> {
    match t {
        STerm::Const(c) => Some(cc.constant(c.index() as u64)),
        STerm::Var(v) => binding.get(v).copied(),
        STerm::App(f, args) => {
            let mut ids = Vec::with_capacity(args.len());
            for a in args {
                ids.push(resolve(a, cc, binding)?);
            }
            Some(cc.app(f.index() as u64, &ids))
        }
    }
}

fn side_conditions(c: &Clause, cc: &mut Cc, binding: &BTreeMap<SVar, TermId>) -> bool {
    for (a, b) in &c.eqs {
        let (Some(x), Some(y)) = (resolve(a, cc, binding), resolve(b, cc, binding)) else {
            return false;
        };
        if !cc.same_class(x, y) {
            return false;
        }
    }
    for (a, b) in &c.neqs {
        let (Some(x), Some(y)) = (resolve(a, cc, binding), resolve(b, cc, binding)) else {
            return false;
        };
        if !cc.entails_neq(x, y) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcds_core::FuncId;
    use dcds_reldata::Value;

    fn rel(ix: usize) -> RelId {
        RelId::from_index(ix)
    }

    fn val(ix: usize) -> Value {
        Value::from_index(ix)
    }

    fn clause(atoms: Vec<(RelId, Vec<STerm>)>) -> Clause {
        Clause {
            atoms,
            eqs: vec![],
            neqs: vec![],
            level: 0,
        }
    }

    #[test]
    fn more_general_subsumes_more_specific() {
        // ∃x. R(x) subsumes ∃x y. R(x) ∧ S(x, y).
        let c = clause(vec![(rel(0), vec![STerm::Var(0)])]);
        let d = ClauseCtx::new(clause(vec![
            (rel(0), vec![STerm::Var(0)]),
            (rel(1), vec![STerm::Var(0), STerm::Var(1)]),
        ]));
        assert!(subsumes(&c, &d));
        assert!(!subsumes(&d.clause, &ClauseCtx::new(c)));
    }

    #[test]
    fn constants_must_agree_modulo_closure() {
        // ∃x. R(x, a) vs R(y, z) with z = a: subsumed through the closure.
        let c = clause(vec![(rel(0), vec![STerm::Var(0), STerm::Const(val(0))])]);
        let mut dk = clause(vec![(rel(0), vec![STerm::Var(0), STerm::Var(1)])]);
        dk.eqs.push((STerm::Var(1), STerm::Const(val(0))));
        // Note: normalisation would substitute; build the context raw to
        // exercise the closure path.
        let d = ClauseCtx::new(dk);
        assert!(subsumes(&c, &d));

        let d2 = ClauseCtx::new(clause(vec![(
            rel(0),
            vec![STerm::Var(0), STerm::Const(val(1))],
        )]));
        assert!(!subsumes(&c, &d2));
    }

    #[test]
    fn disequalities_need_entailment() {
        // ∃x y. R(x,y) ∧ x ≠ y subsumes R(u,v) ∧ u ≠ v but not plain R(u,v).
        let mut c = clause(vec![(rel(0), vec![STerm::Var(0), STerm::Var(1)])]);
        c.neqs.push((STerm::Var(0), STerm::Var(1)));
        let mut dk = clause(vec![(rel(0), vec![STerm::Var(0), STerm::Var(1)])]);
        dk.neqs.push((STerm::Var(0), STerm::Var(1)));
        assert!(subsumes(&c, &ClauseCtx::new(dk)));
        let plain = ClauseCtx::new(clause(vec![(rel(0), vec![STerm::Var(0), STerm::Var(1)])]));
        assert!(!subsumes(&c, &plain));
        // Distinct constants entail the disequality.
        let consts = ClauseCtx::new(clause(vec![(
            rel(0),
            vec![STerm::Const(val(0)), STerm::Const(val(1))],
        )]));
        assert!(subsumes(&c, &consts));
    }

    #[test]
    fn applications_match_congruently() {
        let f = FuncId::from_index(0);
        // ∃x. R(x, f(x)) subsumes R(a, f(a)).
        let c = clause(vec![(
            rel(0),
            vec![STerm::Var(0), STerm::App(f, vec![STerm::Var(0)])],
        )]);
        let d = ClauseCtx::new(clause(vec![(
            rel(0),
            vec![
                STerm::Const(val(0)),
                STerm::App(f, vec![STerm::Const(val(0))]),
            ],
        )]));
        assert!(subsumes(&c, &d));
        // But not R(a, f(b)).
        let d2 = ClauseCtx::new(clause(vec![(
            rel(0),
            vec![
                STerm::Const(val(0)),
                STerm::App(f, vec![STerm::Const(val(1))]),
            ],
        )]));
        assert!(!subsumes(&c, &d2));
    }

    #[test]
    fn empty_clause_subsumes_everything() {
        let c = clause(vec![]);
        let d = ClauseCtx::new(clause(vec![(rel(0), vec![STerm::Var(0)])]));
        assert!(subsumes(&c, &d));
    }
}
