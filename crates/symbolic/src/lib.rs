//! # dcds-symbolic
//!
//! Symbolic safety verification by **regression-based backward
//! reachability** — deciding AG/EF properties without enumerating states,
//! and therefore without requiring the run-/state-boundedness that the
//! explicit abstraction engines of Theorems 4.3 / 5.4 depend on. The
//! approach follows the static line of work around relational action
//! bases: represent sets of instances as existentially quantified clauses
//! ([`clause`]), regress them through the actions' overwrite semantics
//! ([`mod@regress`]), detect the fixpoint by entailment ([`subsume`]) over the
//! congruence-closure core shared with `dcds-lint` via
//! [`dcds_analysis::cc`], and prune against the data layer's integrity
//! constraints ([`constraints`]).
//!
//! The clause set over-approximates the states that can reach Bad, so:
//!
//! * **fixpoint, initial instance not covered** → definitive SAFE;
//! * **initial instance covered** → a bounded concrete search over the
//!   commitment-representative successors confirms a genuine trace before
//!   UNSAFE is reported ([`engine`]);
//! * otherwise → inconclusive, with budgets and the reason surfaced.
//!
//! The accepted property fragment is `AG φ` / `EF φ` with `φ` a
//! quantifier-guarded FO state property (recognised by
//! [`dcds_mucalc::safety`]); the bad condition must compile to
//! positive-existential clauses.

pub mod clause;
pub mod constraints;
pub mod engine;
pub mod regress;
pub mod subsume;

pub use clause::{Clause, STerm, SVar};
pub use constraints::{guarded_constraints, GuardedConstraint};
pub use engine::{
    check_safety, check_safety_traced, clauses_from_bad, render_trace, SymCounters, SymError,
    SymOptions, SymRun, SymVerdict, Trace,
};
pub use regress::{regress, RegressOut};
pub use subsume::{subsumes, ClauseCtx};
